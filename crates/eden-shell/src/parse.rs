//! Parser: tokens → [`CommandSpec`].
//!
//! Grammar (see the crate docs for the language reference):
//!
//! ```text
//! pipeline   := directive* source stage* sinkspec?
//! directive  := '@' WORD '=' WORD
//! source     := WORD arg*                 (seq / lines / file / unix)
//! stage      := '|' WORD (arg | tap)*
//! tap        := WORD '>' WORD             (channel > window)
//! sinkspec   := '>' ('file' | 'unix') WORD
//! ```

use std::collections::BTreeMap;

use eden_core::{EdenError, Result};

use crate::token::{tokenize, Token};

/// Where the pipeline reads from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSpec {
    /// `lines "a" "b" ...` — inline text records.
    Lines(Vec<String>),
    /// `seq N` — the integers 0..N.
    Seq(i64),
    /// `file NAME` — open the named file (via the environment's directory).
    File(String),
    /// `unix PATH` — `NewStream` on the environment's UnixFs Eject.
    Unix(String),
    /// `merge NAME...` — concatenate several named files (§5 fan-in).
    Merge(Vec<String>),
    /// `zip NAME NAME...` — tuple-merge several named files (comparators).
    Zip(Vec<String>),
    /// `dir` — the attached directory's listing, as a stream (§2).
    Dir,
}

/// A channel tap: read the named channel of this stage into a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapSpec {
    /// The channel name (e.g. `Report`).
    pub channel: String,
    /// The window (named collector) to show it in.
    pub window: String,
}

/// One filter stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpec {
    /// Filter name (resolved by `eden_filters::make_filter`).
    pub name: String,
    /// String arguments.
    pub args: Vec<String>,
    /// Channel taps on this stage.
    pub taps: Vec<TapSpec>,
}

/// Where the primary output goes, besides the shell's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkSpec {
    /// `> file NAME` — WriteFrom into the named file Eject.
    File(String),
    /// `> unix PATH` — UseStream into the host filing system.
    Unix(String),
}

/// A parsed pipeline command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandSpec {
    /// `@key=value` directives (discipline, batch, readahead, ...).
    pub directives: BTreeMap<String, String>,
    /// The source.
    pub source: SourceSpec,
    /// The filter stages, in order.
    pub stages: Vec<StageSpec>,
    /// Optional final redirection.
    pub sink: Option<SinkSpec>,
}

/// Parse a command line.
pub fn parse(input: &str) -> Result<CommandSpec> {
    let tokens = tokenize(input)?;
    Parser { tokens, pos: 0 }.pipeline()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_word(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(EdenError::BadParameter(format!(
                "expected {what}, got {other:?}"
            ))),
        }
    }

    fn pipeline(&mut self) -> Result<CommandSpec> {
        let mut directives = BTreeMap::new();
        while self.peek() == Some(&Token::At) {
            self.next();
            let key = self.expect_word("directive name")?;
            if self.next() != Some(Token::Equals) {
                return Err(EdenError::BadParameter(format!(
                    "directive @{key} needs `=value`"
                )));
            }
            let value = self.expect_word("directive value")?;
            directives.insert(key, value);
        }
        let source = self.source()?;
        let mut stages = Vec::new();
        let mut sink = None;
        loop {
            match self.next() {
                None => break,
                Some(Token::Pipe) => stages.push(self.stage()?),
                Some(Token::Redirect) => {
                    sink = Some(self.sink()?);
                    if self.peek().is_some() {
                        return Err(EdenError::BadParameter(
                            "output redirection must be last".into(),
                        ));
                    }
                    break;
                }
                Some(other) => {
                    return Err(EdenError::BadParameter(format!(
                        "expected `|` or `>`, got {other:?}"
                    )))
                }
            }
        }
        Ok(CommandSpec {
            directives,
            source,
            stages,
            sink,
        })
    }

    fn source(&mut self) -> Result<SourceSpec> {
        let kind = self.expect_word("source kind (lines/seq/file/unix)")?;
        match kind.as_str() {
            "lines" => {
                let mut lines = Vec::new();
                while let Some(Token::Word(_)) = self.peek() {
                    lines.push(self.expect_word("line")?);
                }
                Ok(SourceSpec::Lines(lines))
            }
            "seq" => {
                let n = self.expect_word("count")?;
                let n: i64 = n
                    .parse()
                    .map_err(|_| EdenError::BadParameter(format!("seq: bad count `{n}`")))?;
                Ok(SourceSpec::Seq(n))
            }
            "file" => Ok(SourceSpec::File(self.expect_word("file name")?)),
            "unix" => Ok(SourceSpec::Unix(self.expect_word("path")?)),
            "dir" => Ok(SourceSpec::Dir),
            "merge" | "zip" => {
                let mut names = Vec::new();
                while let Some(Token::Word(_)) = self.peek() {
                    names.push(self.expect_word("file name")?);
                }
                if names.is_empty() {
                    return Err(EdenError::BadParameter(format!(
                        "{kind}: need at least one file name"
                    )));
                }
                Ok(if kind == "merge" {
                    SourceSpec::Merge(names)
                } else {
                    SourceSpec::Zip(names)
                })
            }
            other => Err(EdenError::BadParameter(format!(
                "unknown source kind `{other}` (want lines/seq/file/unix/merge/zip)"
            ))),
        }
    }

    fn stage(&mut self) -> Result<StageSpec> {
        let name = self.expect_word("filter name")?;
        let mut args = Vec::new();
        let mut taps = Vec::new();
        while let Some(Token::Word(_)) = self.peek() {
            let word = self.expect_word("argument")?;
            if self.peek() == Some(&Token::Redirect) {
                self.next();
                let window = self.expect_word("window name")?;
                taps.push(TapSpec {
                    channel: word,
                    window,
                });
            } else {
                args.push(word);
            }
        }
        Ok(StageSpec { name, args, taps })
    }

    fn sink(&mut self) -> Result<SinkSpec> {
        let kind = self.expect_word("sink kind (file/unix)")?;
        match kind.as_str() {
            "file" => Ok(SinkSpec::File(self.expect_word("file name")?)),
            "unix" => Ok(SinkSpec::Unix(self.expect_word("path")?)),
            other => Err(EdenError::BadParameter(format!(
                "unknown sink kind `{other}` (want file/unix)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_pipeline() {
        let spec = parse("seq 10").unwrap();
        assert_eq!(spec.source, SourceSpec::Seq(10));
        assert!(spec.stages.is_empty());
        assert!(spec.sink.is_none());
    }

    #[test]
    fn full_pipeline() {
        let spec =
            parse("@discipline=write-only @batch=4 lines 'a' 'b' | grep a | upcase > unix out.txt")
                .unwrap();
        assert_eq!(spec.directives["discipline"], "write-only");
        assert_eq!(spec.directives["batch"], "4");
        assert_eq!(
            spec.source,
            SourceSpec::Lines(vec!["a".into(), "b".into()])
        );
        assert_eq!(spec.stages.len(), 2);
        assert_eq!(spec.stages[0].name, "grep");
        assert_eq!(spec.stages[0].args, vec!["a"]);
        assert_eq!(spec.sink, Some(SinkSpec::Unix("out.txt".into())));
    }

    #[test]
    fn channel_tap_parses() {
        let spec = parse("seq 5 | spell-check the cat Report>win1").unwrap();
        let stage = &spec.stages[0];
        assert_eq!(stage.args, vec!["the", "cat"]);
        assert_eq!(
            stage.taps,
            vec![TapSpec {
                channel: "Report".into(),
                window: "win1".into()
            }]
        );
    }

    #[test]
    fn file_source() {
        let spec = parse("file notes.txt | line-number").unwrap();
        assert_eq!(spec.source, SourceSpec::File("notes.txt".into()));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("bogus-source x").is_err());
        assert!(parse("seq ten").is_err());
        assert!(parse("seq 1 | ").is_err());
        assert!(parse("seq 1 > nowhere x").is_err());
        assert!(parse("@batch 4 seq 1").is_err());
        assert!(parse("seq 1 > unix a.txt | grep x").is_err());
    }
}
