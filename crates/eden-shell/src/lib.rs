//! A small command language for constructing, redirecting and tapping Eden
//! transput pipelines — the user-facing face of §5's connection protocol.
//!
//! # Language
//!
//! ```text
//! [@key=value ...] SOURCE [| FILTER args... [Chan>window ...]]... [> SINK]
//! ```
//!
//! * **Directives**: `@discipline=read-only|write-only|conventional`
//!   (default read-only), `@batch=N`, `@readahead=N`, `@pushahead=N`,
//!   `@buffer=N`, `@policy=int|cap`, `@nodes=N`.
//! * **Sources**: `lines 'a' 'b' ...`, `seq N`, `file NAME` (via the
//!   attached directory), `unix PATH` (via the attached UnixFs Eject).
//! * **Filters**: anything `eden_filters::make_filter` knows — `grep`,
//!   `strip-comments`, `sort`, `spell-check`, `sed`, ...
//! * **Channel taps**: `Report>win1` after a filter reads that filter's
//!   `Report` channel into the window `win1` — the paper's
//!   `ASSIGN OUTPUT CHANNEL name TO file` / Unix `n>` analogue (§5).
//! * **Sinks**: `> file NAME` (WriteFrom into a file Eject), `> unix PATH`
//!   (UseStream into the host filing system).
//!
//! # Example
//!
//! ```
//! use eden_kernel::Kernel;
//! use eden_shell::ShellEnv;
//!
//! let kernel = Kernel::new();
//! let shell = ShellEnv::new(&kernel);
//! let run = shell
//!     .run("lines 'C comment' 'real line' | strip-comments | upcase")
//!     .unwrap();
//! assert_eq!(run.output_lines(), vec!["REAL LINE"]);
//! kernel.shutdown();
//! ```


pub mod exec;
pub mod parse;
pub mod session;
pub mod token;

pub use exec::{ShellEnv, ShellRun};
pub use parse::{parse, CommandSpec, SinkSpec, SourceSpec, StageSpec, TapSpec};
pub use session::Session;
pub use token::{tokenize, Token};
