//! Tokenizer for the pipeline command language.
//!
//! Token classes: bare words, single- or double-quoted strings (with `\`
//! escapes), and the operators `|` (stage separator), `>` (redirection /
//! channel tap, as in the Unix shell's "n>" syntax that §5 compares the
//! channel-identifier scheme to), `@`, and `=` (directives).

use eden_core::{EdenError, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A bare word or quoted string.
    Word(String),
    /// `|`
    Pipe,
    /// `>`
    Redirect,
    /// `@`
    At,
    /// `=`
    Equals,
}

/// Tokenize a command line.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' => {
                chars.next();
            }
            '|' => {
                chars.next();
                tokens.push(Token::Pipe);
            }
            '>' => {
                chars.next();
                tokens.push(Token::Redirect);
            }
            '@' => {
                chars.next();
                tokens.push(Token::At);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Equals);
            }
            '#' => break, // Comment to end of line.
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut word = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some(escaped) => word.push(escaped),
                            None => {
                                return Err(EdenError::BadParameter(
                                    "dangling escape at end of input".into(),
                                ))
                            }
                        },
                        Some(ch) if ch == quote => break,
                        Some(ch) => word.push(ch),
                        None => {
                            return Err(EdenError::BadParameter(format!(
                                "unterminated {quote}-quoted string"
                            )))
                        }
                    }
                }
                tokens.push(Token::Word(word));
            }
            _ => {
                let mut word = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || matches!(ch, '|' | '>' | '@' | '=' | '#') {
                        break;
                    }
                    word.push(ch);
                    chars.next();
                }
                tokens.push(Token::Word(word));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter_map(|t| match t {
                Token::Word(w) => Some(w.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn splits_words_and_operators() {
        let t = tokenize("seq 5 | grep x").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("seq".into()),
                Token::Word("5".into()),
                Token::Pipe,
                Token::Word("grep".into()),
                Token::Word("x".into()),
            ]
        );
    }

    #[test]
    fn quotes_preserve_spaces_and_operators() {
        let t = tokenize(r#"lines 'a b' "c|d" 'e\'f'"#).unwrap();
        assert_eq!(words(&t), vec!["lines", "a b", "c|d", "e'f"]);
    }

    #[test]
    fn directives_tokenize() {
        let t = tokenize("@batch=4 seq 1").unwrap();
        assert_eq!(t[0], Token::At);
        assert_eq!(t[2], Token::Equals);
    }

    #[test]
    fn redirect_and_comment() {
        let t = tokenize("seq 2 | tee Copy>win # trailing comment").unwrap();
        assert!(t.contains(&Token::Redirect));
        assert!(!words(&t).iter().any(|w| w.contains("comment")));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(tokenize("lines 'oops").is_err());
        assert!(tokenize(r"lines 'oops\").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(tokenize("   # just a comment").unwrap().is_empty());
    }
}
