//! Executor: parsed [`CommandSpec`] → typed [`PipelineSpec`] → wired
//! Ejects → results.
//!
//! This is the Eject the paper says a security-conscious user could write
//! for themselves (§5): "the security of this scheme thus depends on the
//! honesty of the Eject which performs the interconnections; in the last
//! resort, a user can always convince himself of this by writing such an
//! Eject himself." The executor is the only party that learns channel
//! capabilities; the filters it wires never see each other's.

use std::collections::BTreeMap;
use std::time::Duration;

use eden_core::op::ops;
use eden_core::{EdenError, Result, Uid, Value};
use eden_fs::{lookup, new_stream_arg, use_stream_arg};
use eden_kernel::Kernel;
use eden_transput::source::VecSource;
use eden_transput::{ChannelPolicy, Discipline, PipelineRun, PipelineSpec};

use crate::parse::{parse, CommandSpec, SinkSpec, SourceSpec};

/// The Ejects a shell session talks to.
#[derive(Clone)]
#[derive(Debug)]
pub struct ShellEnv {
    kernel: Kernel,
    /// Directory for `file NAME` sources/sinks (any Eject answering
    /// `Lookup` — a plain directory or a concatenator).
    directory: Option<Uid>,
    /// UnixFs Eject for `unix PATH` sources/sinks.
    unixfs: Option<Uid>,
    /// Deadline for pipeline completion.
    deadline: Duration,
}

impl ShellEnv {
    /// An environment with no filing system attached (only `lines` and
    /// `seq` sources work).
    pub fn new(kernel: &Kernel) -> ShellEnv {
        ShellEnv {
            kernel: kernel.clone(),
            directory: None,
            unixfs: None,
            deadline: Duration::from_secs(30),
        }
    }

    /// Attach a directory for `file` sources and sinks.
    pub fn with_directory(mut self, directory: Uid) -> ShellEnv {
        self.directory = Some(directory);
        self
    }

    /// Attach a UnixFs Eject for `unix` sources and sinks.
    pub fn with_unixfs(mut self, unixfs: Uid) -> ShellEnv {
        self.unixfs = Some(unixfs);
        self
    }

    /// Override the completion deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ShellEnv {
        self.deadline = deadline;
        self
    }

    /// Parse and execute a command line.
    pub fn run(&self, command: &str) -> Result<ShellRun> {
        self.execute(parse(command)?)
    }

    /// Execute a parsed pipeline.
    pub fn execute(&self, spec: CommandSpec) -> Result<ShellRun> {
        let discipline = self.discipline(&spec)?;
        let mut builder = PipelineSpec::new(discipline);
        if let Some(batch) = spec.directives.get("batch") {
            builder = builder.batch(parse_num(batch, "@batch")?);
        }
        match spec.directives.get("policy").map(String::as_str) {
            Some("cap") => builder = builder.policy(ChannelPolicy::Capability),
            Some("int") | None => {}
            Some(other) => {
                return Err(EdenError::BadParameter(format!(
                    "@policy must be int or cap, got `{other}`"
                )))
            }
        }
        if let Some(nodes) = spec.directives.get("nodes") {
            builder = builder.over_nodes(parse_num(nodes, "@nodes")? as u16);
        }
        builder = match &spec.source {
            SourceSpec::Lines(lines) => {
                builder.source(Box::new(VecSource::from_lines(lines.clone())))
            }
            SourceSpec::Seq(n) => builder.source_vec((0..*n).map(Value::Int).collect()),
            SourceSpec::File(name) => builder.source_eject(self.open_file(name)?),
            SourceSpec::Unix(path) => builder.source_eject(self.unix_stream(path)?),
            SourceSpec::Merge(names) => builder.source_ejects_merged(
                self.open_ports(names)?,
                eden_transput::read_only::FanInMode::Concatenate,
            ),
            SourceSpec::Zip(names) => builder.source_ejects_merged(
                self.open_ports(names)?,
                eden_transput::read_only::FanInMode::Zip,
            ),
            SourceSpec::Dir => {
                // §2/§4: a directory is a source. Prepare the listing,
                // then read the directory Eject itself.
                let directory = self.directory.ok_or_else(|| {
                    EdenError::BadParameter("no directory attached; `dir` unavailable".into())
                })?;
                self.kernel.invoke(directory, ops::LIST, Value::Unit).wait()?;
                builder.source_eject(directory)
            }
        };
        let mut windows_wanted: Vec<(usize, String, String)> = Vec::new();
        for (idx, stage) in spec.stages.iter().enumerate() {
            let args: Vec<&str> = stage.args.iter().map(String::as_str).collect();
            builder = builder.stage(eden_filters::make_filter(&stage.name, &args)?);
            for tap in &stage.taps {
                builder = builder.tap(idx, &tap.channel);
                windows_wanted.push((idx, tap.channel.clone(), tap.window.clone()));
            }
        }
        let run = builder.build(&self.kernel)?.run(self.deadline)?;
        let mut windows = BTreeMap::new();
        for (idx, channel, window) in windows_wanted {
            let items = run.report(idx, &channel).unwrap_or(&[]).to_vec();
            windows.insert(window, items);
        }
        if let Some(sink) = &spec.sink {
            self.redirect_output(sink, run.output.clone())?;
        }
        Ok(ShellRun {
            output: run.output.clone(),
            windows,
            run,
        })
    }

    fn discipline(&self, spec: &CommandSpec) -> Result<Discipline> {
        let read_ahead = spec
            .directives
            .get("readahead")
            .map(|v| parse_num(v, "@readahead"))
            .transpose()?
            .unwrap_or(0);
        let push_ahead = spec
            .directives
            .get("pushahead")
            .map(|v| parse_num(v, "@pushahead"))
            .transpose()?
            .unwrap_or(0);
        let buffer_capacity = spec
            .directives
            .get("buffer")
            .map(|v| parse_num(v, "@buffer"))
            .transpose()?
            .unwrap_or(64);
        match spec
            .directives
            .get("discipline")
            .map(String::as_str)
            .unwrap_or("read-only")
        {
            "read-only" => Ok(Discipline::ReadOnly { read_ahead }),
            "write-only" => Ok(Discipline::WriteOnly { push_ahead }),
            "conventional" => Ok(Discipline::Conventional { buffer_capacity }),
            other => Err(EdenError::BadParameter(format!(
                "@discipline must be read-only, write-only or conventional, got `{other}`"
            ))),
        }
    }

    fn open_file(&self, name: &str) -> Result<Uid> {
        let directory = self.directory.ok_or_else(|| {
            EdenError::BadParameter("no directory attached; `file` sources unavailable".into())
        })?;
        let file = lookup(&self.kernel, directory, name)?;
        self.kernel
            .invoke(file, ops::OPEN, Value::Unit).wait()?
            .as_uid()
    }

    fn open_ports(
        &self,
        names: &[String],
    ) -> Result<Vec<eden_transput::read_only::InputPort>> {
        names
            .iter()
            .map(|name| {
                self.open_file(name)
                    .map(eden_transput::read_only::InputPort::primary)
            })
            .collect()
    }

    fn unix_stream(&self, path: &str) -> Result<Uid> {
        let unixfs = self.unixfs.ok_or_else(|| {
            EdenError::BadParameter("no UnixFs attached; `unix` sources unavailable".into())
        })?;
        self.kernel
            .invoke(unixfs, ops::NEW_STREAM, new_stream_arg(path)).wait()?
            .as_uid()
    }

    /// Dynamic output redirection (§4: "Redirection of input and output
    /// can be provided very naturally in a system where each entity is
    /// referred to by means of a unique identifier").
    fn redirect_output(&self, sink: &SinkSpec, output: Vec<Value>) -> Result<()> {
        // The output becomes a fresh source Eject that the target pulls
        // from — read-only transput all the way down.
        let source = self.kernel.spawn(Box::new(
            eden_transput::source::SourceEject::new(Box::new(VecSource::new(output))),
        ))?;
        match sink {
            SinkSpec::File(name) => {
                let directory = self.directory.ok_or_else(|| {
                    EdenError::BadParameter("no directory attached for `> file`".into())
                })?;
                let file = lookup(&self.kernel, directory, name)?;
                self.kernel
                    .invoke(
                        file,
                        ops::WRITE_FROM,
                        Value::record([("source", Value::Uid(source))]),
                    ).wait()
                    .map(|_| ())
            }
            SinkSpec::Unix(path) => {
                let unixfs = self.unixfs.ok_or_else(|| {
                    EdenError::BadParameter("no UnixFs attached for `> unix`".into())
                })?;
                self.kernel
                    .invoke(unixfs, ops::USE_STREAM, use_stream_arg(path, source)).wait()
                    .map(|_| ())
            }
        }
    }
}

fn parse_num(s: &str, what: &str) -> Result<usize> {
    s.parse()
        .map_err(|_| EdenError::BadParameter(format!("{what}: bad number `{s}`")))
}

/// The results of one shell command.
#[derive(Debug, Clone)]
pub struct ShellRun {
    /// The primary output records.
    pub output: Vec<Value>,
    /// Window contents, keyed by window name (channel taps).
    pub windows: BTreeMap<String, Vec<Value>>,
    /// Raw pipeline statistics.
    pub run: PipelineRun,
}

impl ShellRun {
    /// Render the primary output as text lines (strings print bare,
    /// structured records in their human form).
    pub fn output_lines(&self) -> Vec<String> {
        self.output.iter().map(Value::to_string).collect()
    }
}
