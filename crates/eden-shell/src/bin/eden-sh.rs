//! `eden-sh` — an interactive shell over a simulated Eden.
//!
//! ```text
//! cargo run -p eden-shell --bin eden-sh [-- --obs]
//! ```
//!
//! `--obs` turns on the observability plane (spans + per-stage
//! histograms) so `trace export` and the stage table in `stats` have
//! data; by default the kernel runs with observability off.
//!
//! Type `help` for the command reference; Ctrl-D or `quit` exits.

use std::io::{BufRead, Write};

use eden_kernel::{Kernel, KernelConfig, ObsConfig};
use eden_shell::session::Session;

fn main() {
    let mut observability = ObsConfig::default();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--obs" => observability = ObsConfig::full(),
            other => {
                eprintln!("unknown argument `{other}` (supported: --obs)");
                std::process::exit(2);
            }
        }
    }
    let kernel = Kernel::with_config(KernelConfig {
        trace_capacity: 256,
        observability,
        ..Default::default()
    });
    let session = match Session::new(&kernel) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start session: {e}");
            std::process::exit(1);
        }
    };
    println!("eden shell — asymmetric stream transput (SOSP 1983). `help` for commands.");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("eden$ ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF.
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        match session.execute(trimmed) {
            Ok(output) => {
                for out_line in output {
                    println!("{out_line}");
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    kernel.shutdown();
}
