//! An interactive shell session: a home directory, a host filing system,
//! and built-in commands on top of the pipeline language.
//!
//! Built-ins:
//!
//! * `mkfile NAME [LINE...]` — create a file Eject and enter it in the
//!   home directory
//! * `ls` — stream the home directory's listing
//! * `cat NAME` — stream a file's contents
//! * `rm NAME` — remove the directory entry (the file Eject survives
//!   until it deactivates; UIDs, not names, own Ejects)
//! * `checkpoint NAME` / `crash NAME` — durability controls
//! * `stats` — kernel metrics snapshot
//! * `trace` — recent kernel events (if tracing is enabled)
//! * `help`
//!
//! Anything else is parsed as a pipeline (see the crate docs).

use eden_core::op::ops;
use eden_core::{EdenError, Result, Uid, Value};
use eden_fs::{add_entry, lookup, register_fs_types, DirectoryEject, FileEject, MemFs, UnixFsEject};
use eden_kernel::Kernel;

use crate::exec::ShellEnv;

/// One interactive session over a kernel.
#[derive(Debug)]
pub struct Session {
    kernel: Kernel,
    home: Uid,
    env: ShellEnv,
}

impl Session {
    /// A fresh session: home directory + hermetic UnixFs, fs types
    /// registered.
    pub fn new(kernel: &Kernel) -> Result<Session> {
        register_fs_types(kernel);
        let home = kernel.spawn(Box::new(DirectoryEject::new()))?;
        let unixfs = kernel.spawn(Box::new(UnixFsEject::new(MemFs::new())))?;
        let env = ShellEnv::new(kernel)
            .with_directory(home)
            .with_unixfs(unixfs);
        Ok(Session {
            kernel: kernel.clone(),
            home,
            env,
        })
    }

    /// The home directory Eject.
    pub fn home(&self) -> Uid {
        self.home
    }

    /// The pipeline environment (for direct pipeline execution).
    pub fn env(&self) -> &ShellEnv {
        &self.env
    }

    /// Execute one command line; returns the printable output lines.
    pub fn execute(&self, line: &str) -> Result<Vec<String>> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(Vec::new());
        }
        // Built-ins get the same quoting rules as pipelines:
        // `mkfile notes 'alpha line'` is one two-word line, not two lines.
        const BUILTINS: [&str; 12] = [
            "mkfile", "ls", "cat", "rm", "checkpoint", "crash", "stats", "trace", "top",
            "ejects", "mv", "help",
        ];
        let tokens = crate::token::tokenize(trimmed)?;
        let is_builtin = matches!(
            tokens.first(),
            Some(crate::token::Token::Word(w)) if BUILTINS.contains(&w.as_str())
        );
        if !is_builtin {
            return self.run_pipeline(trimmed);
        }
        let all_words: Vec<String> = tokens
            .into_iter()
            .map(|t| match t {
                crate::token::Token::Word(w) => Ok(w),
                other => Err(EdenError::BadParameter(format!(
                    "built-in commands take plain (or quoted) words, got {other:?}"
                ))),
            })
            .collect::<Result<Vec<_>>>()?;
        let words: Vec<&str> = all_words.iter().map(String::as_str).collect();
        match words[0] {
            "mkfile" => self.mkfile(&words[1..]),
            "ls" => self.ls(),
            "cat" => self.cat(&words[1..]),
            "rm" => self.rm(&words[1..]),
            "checkpoint" => self.checkpoint(&words[1..]),
            "crash" => self.crash(&words[1..]),
            "stats" => self.stats(&words[1..]),
            "trace" => self.trace(&words[1..]),
            "top" => self.top(&words[1..]),
            "ejects" => self.ejects(),
            "mv" => self.mv(&words[1..]),
            _ => Ok(HELP.lines().map(str::to_owned).collect()),
        }
    }

    /// Execute a pipeline command and render its output and windows.
    fn run_pipeline(&self, command: &str) -> Result<Vec<String>> {
        let run = self.env.run(command)?;
        let mut out = run.output_lines();
        for (window, items) in &run.windows {
            out.push(format!("[window {window}]"));
            for item in items {
                out.push(format!("  {}", render(item)));
            }
        }
        Ok(out)
    }

    fn named_file(&self, args: &[&str], what: &str) -> Result<Uid> {
        let name = args
            .first()
            .ok_or_else(|| EdenError::BadParameter(format!("{what}: need a name")))?;
        lookup(&self.kernel, self.home, name)
    }

    fn mkfile(&self, args: &[&str]) -> Result<Vec<String>> {
        let name = args
            .first()
            .ok_or_else(|| EdenError::BadParameter("mkfile: need a name".into()))?;
        let file = self
            .kernel
            .spawn(Box::new(FileEject::from_lines(args[1..].iter().copied())))?;
        add_entry(&self.kernel, self.home, name, file)?;
        Ok(vec![format!("created {name} ({file})")])
    }

    fn ls(&self) -> Result<Vec<String>> {
        let count = self
            .kernel
            .invoke(self.home, ops::LIST, Value::Unit).wait()?
            .as_int()?;
        let mut lines = Vec::with_capacity(count as usize);
        loop {
            let batch = eden_transput::protocol::Batch::from_value(self.kernel.invoke(
                self.home,
                ops::TRANSFER,
                eden_transput::protocol::TransferRequest::primary(32).to_value(),
            ).wait()?)?;
            for item in batch.items {
                lines.push(render(&item));
            }
            if batch.end {
                break;
            }
        }
        Ok(lines)
    }

    fn cat(&self, args: &[&str]) -> Result<Vec<String>> {
        let file = self.named_file(args, "cat")?;
        let reader = self
            .kernel
            .invoke(file, ops::OPEN, Value::Unit).wait()?
            .as_uid()?;
        let mut lines = Vec::new();
        loop {
            let batch = eden_transput::protocol::Batch::from_value(self.kernel.invoke(
                reader,
                ops::TRANSFER,
                eden_transput::protocol::TransferRequest::primary(32).to_value(),
            ).wait()?)?;
            for item in batch.items {
                lines.push(render(&item));
            }
            if batch.end {
                break;
            }
        }
        Ok(lines)
    }

    fn rm(&self, args: &[&str]) -> Result<Vec<String>> {
        let name = args
            .first()
            .ok_or_else(|| EdenError::BadParameter("rm: need a name".into()))?;
        self.kernel.invoke(
            self.home,
            ops::DELETE_ENTRY,
            Value::record([("name", Value::str(*name))]),
        ).wait()?;
        Ok(vec![format!("removed {name}")])
    }

    fn checkpoint(&self, args: &[&str]) -> Result<Vec<String>> {
        let file = self.named_file(args, "checkpoint")?;
        self.kernel.invoke(file, ops::CHECKPOINT, Value::Unit).wait()?;
        Ok(vec![format!("checkpointed {}", args[0])])
    }

    fn crash(&self, args: &[&str]) -> Result<Vec<String>> {
        let file = self.named_file(args, "crash")?;
        self.kernel.crash(file)?;
        Ok(vec![format!("crashed {} (fail-stop)", args[0])])
    }

    fn stats(&self, args: &[&str]) -> Result<Vec<String>> {
        match args.first() {
            Some(&"--prometheus") => {
                let snap = self.kernel.metrics_snapshot();
                return Ok(eden_kernel::prometheus_text(&snap)
                    .lines()
                    .map(str::to_owned)
                    .collect());
            }
            Some(&"--json") => {
                let snap = self.kernel.metrics_snapshot();
                return Ok(eden_kernel::json_text(&snap)
                    .lines()
                    .map(str::to_owned)
                    .collect());
            }
            Some(other) => {
                return Err(EdenError::BadParameter(format!(
                    "stats: unknown flag `{other}` (try --prometheus or --json)"
                )))
            }
            None => {}
        }
        let s = self.kernel.metrics().snapshot();
        Ok(vec![
            format!(
                "invocations: {} ({} remote), replies: {} ({} deferred)",
                s.invocations, s.remote_invocations, s.replies, s.deferred_replies
            ),
            format!(
                "internal msgs: {}, bytes moved: {}, ejects created: {}",
                s.internal_messages,
                s.bytes_total(),
                s.ejects_created
            ),
            format!(
                "activations: {}, deactivations: {}, checkpoints: {}, crashes: {}",
                s.activations, s.deactivations, s.checkpoints, s.crashes
            ),
            format!(
                "faults injected: {}, retries: {}, reactivations: {}, recovered streams: {}",
                s.faults_injected, s.retries, s.reactivations, s.recovered_streams
            ),
            {
                let p = eden_core::payload::snapshot();
                format!(
                    "payload_bytes_moved: {}, payload_copies: {}, cow_breaks: {}, payload_shares: {}",
                    p.payload_bytes_moved, p.payload_copies, p.cow_breaks, p.payload_shares
                )
            },
            {
                let st = eden_core::stream::snapshot();
                format!(
                    "records emitted: {}, collected: {}, in flight: {}, streams active: {}",
                    st.records_emitted,
                    st.records_collected,
                    st.records_in_flight(),
                    st.streams_active()
                )
            },
            {
                let snap = self.kernel.metrics_snapshot();
                let m = &snap.metrics;
                format!(
                    "sheds: {} (newest {}, oldest {}, expired {}, park-timeout {}), \
                     mailboxes: {} queued {} (deepest {})",
                    m.sheds_newest + m.sheds_oldest + m.sheds_expired + m.sheds_park_timeout,
                    m.sheds_newest,
                    m.sheds_oldest,
                    m.sheds_expired,
                    m.sheds_park_timeout,
                    snap.mailbox.mailboxes,
                    snap.mailbox.queued_total,
                    snap.mailbox.queued_max,
                )
            },
        ])
    }

    fn ejects(&self) -> Result<Vec<String>> {
        Ok(self
            .kernel
            .list_ejects()
            .into_iter()
            .map(|info| {
                format!(
                    "{:<24} {:<8} node {}  {}",
                    info.uid,
                    match info.state {
                        eden_kernel::EjectState::Active => "active",
                        eden_kernel::EjectState::Passive => "passive",
                    },
                    info.node.0,
                    info.type_name
                )
            })
            .collect())
    }

    fn mv(&self, args: &[&str]) -> Result<Vec<String>> {
        let (from, to) = match args {
            [from, to] => (*from, *to),
            _ => {
                return Err(EdenError::BadParameter(
                    "mv: need OLD-NAME NEW-NAME".into(),
                ))
            }
        };
        eden_fs::rename_entry(&self.kernel, self.home, from, to)?;
        Ok(vec![format!("renamed {from} -> {to}")])
    }

    fn top(&self, args: &[&str]) -> Result<Vec<String>> {
        let frames = match args {
            [] => 1,
            ["--watch"] => 5,
            ["--watch", n] => n.parse::<usize>().map_err(|_| {
                EdenError::BadParameter(format!("top: bad frame count `{n}`"))
            })?,
            _ => {
                return Err(EdenError::BadParameter(format!(
                    "top: unknown arguments {args:?} (try --watch [FRAMES])"
                )))
            }
        };
        let mut out = Vec::new();
        let mut prev = eden_core::stream::snapshot();
        let mut prev_at = std::time::Instant::now();
        for frame in 0..frames.max(1) {
            if frame > 0 {
                // The watch cadence: long enough for the rates to mean
                // something, short enough to feel live.
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            let now = eden_core::stream::snapshot();
            let elapsed = prev_at.elapsed().as_secs_f64();
            let rate = |n: u64| {
                if frame == 0 || elapsed <= 0.0 {
                    "-".to_owned()
                } else {
                    format!("{:.0}/s", n as f64 / elapsed)
                }
            };
            let delta = now.since(&prev);
            out.push(format!(
                "[{frame}] streams active: {}, records in flight: {}, emit {} collect {}",
                now.streams_active(),
                now.records_in_flight(),
                rate(delta.records_emitted),
                rate(delta.records_collected),
            ));
            for (uid, count) in self.kernel.invocations_by_target().into_iter().take(10) {
                out.push(format!("{count:>8}  {uid}"));
            }
            prev = now;
            prev_at = std::time::Instant::now();
        }
        if out.len() == frames.max(1) && self.kernel.invocations_by_target().is_empty() {
            out.push("no per-Eject data (tracing disabled, or nothing invoked yet)".to_owned());
        }
        Ok(out)
    }

    fn trace(&self, args: &[&str]) -> Result<Vec<String>> {
        match args.first() {
            Some(&"export") => {
                let spans = self.kernel.spans();
                if !self.kernel.spans_enabled() {
                    return Ok(vec![
                        "span recording disabled (enable KernelConfig.observability.spans)"
                            .to_owned(),
                    ]);
                }
                // Chrome trace_event JSON: load into chrome://tracing or
                // Perfetto. One line so callers can redirect it to a file.
                return Ok(vec![eden_kernel::chrome_trace_json(&spans)]);
            }
            Some(other) => {
                return Err(EdenError::BadParameter(format!(
                    "trace: unknown subcommand `{other}` (try `trace` or `trace export`)"
                )))
            }
            None => {}
        }
        let dump = self.kernel.trace_events();
        if dump.is_empty() && dump.dropped == 0 {
            return Ok(vec![
                "tracing disabled (start the kernel with trace_capacity > 0)".to_owned(),
            ]);
        }
        let mut out: Vec<String> = dump.iter().map(|e| e.to_string()).collect();
        if dump.dropped > 0 {
            out.push(format!(
                "({} earlier event(s) evicted from the ring)",
                dump.dropped
            ));
        }
        Ok(out)
    }
}

fn render(v: &Value) -> String {
    v.to_string()
}

/// The help text.
pub const HELP: &str = "\
built-ins:
  mkfile NAME [LINE...]   create a file Eject in the home directory
  ls                      list the home directory (streamed)
  cat NAME                stream a file's contents
  rm NAME                 remove a directory entry
  mv OLD NEW              rename a directory entry (atomic)
  ejects                  list every Eject the kernel knows
  checkpoint NAME         write the file's passive representation
  crash NAME              fail-stop the file Eject (recovers on next use)
  stats [--prometheus|--json]
                          kernel metrics snapshot (optionally rendered as
                          Prometheus exposition text or JSON)
  trace                   recent kernel events (needs tracing enabled)
  trace export            spans as Chrome trace_event JSON (Perfetto)
  top [--watch [FRAMES]]  stream gauges + busiest Ejects; --watch repeats
  help                    this text
pipelines:
  [@key=value ...] SOURCE [| FILTER args... [Chan>window]]... [> SINK]
  sources: lines 'a' 'b' | seq N | file NAME | unix PATH
           merge NAME... (cat-style fan-in) | zip NAME NAME (tuples)
  e.g.: file notes | grep eden | upcase > file shouted
        zip old new | compare";

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> (Kernel, Session) {
        let kernel = Kernel::new();
        let session = Session::new(&kernel).unwrap();
        (kernel, session)
    }

    #[test]
    fn mkfile_ls_cat_rm_cycle() {
        let (kernel, s) = session();
        s.execute("mkfile notes hello world").unwrap();
        let ls = s.execute("ls").unwrap();
        assert_eq!(ls.len(), 1);
        assert!(ls[0].starts_with("notes"));
        assert_eq!(s.execute("cat notes").unwrap(), vec!["hello", "world"]);
        s.execute("rm notes").unwrap();
        assert!(s.execute("cat notes").is_err());
        kernel.shutdown();
    }

    #[test]
    fn builtins_honor_quoting() {
        let (kernel, s) = session();
        s.execute("mkfile notes 'alpha line' beta").unwrap();
        assert_eq!(s.execute("cat notes").unwrap(), vec!["alpha line", "beta"]);
        kernel.shutdown();
    }

    #[test]
    fn pipelines_on_session_files() {
        let (kernel, s) = session();
        s.execute("mkfile data 'ignored-quoting' C-comment keep").unwrap();
        let out = s.execute("file data | grep keep").unwrap();
        assert_eq!(out, vec!["keep"]);
        kernel.shutdown();
    }

    #[test]
    fn checkpoint_and_crash_roundtrip() {
        let (kernel, s) = session();
        s.execute("mkfile precious gold").unwrap();
        s.execute("checkpoint precious").unwrap();
        s.execute("crash precious").unwrap();
        // Reactivates on the next use, contents intact.
        assert_eq!(s.execute("cat precious").unwrap(), vec!["gold"]);
        kernel.shutdown();
    }

    #[test]
    fn stats_and_help_and_comments() {
        let (kernel, s) = session();
        assert!(s.execute("# a comment").unwrap().is_empty());
        assert!(s.execute("").unwrap().is_empty());
        assert!(!s.execute("help").unwrap().is_empty());
        let stats = s.execute("stats").unwrap();
        assert!(stats[0].contains("invocations"));
        assert!(stats
            .iter()
            .any(|l| l.contains("payload_bytes_moved") && l.contains("cow_breaks")));
        assert!(stats
            .iter()
            .any(|l| l.contains("sheds:") && l.contains("park-timeout") && l.contains("mailboxes:")));
        kernel.shutdown();
    }

    #[test]
    fn trace_command_reports_state() {
        let kernel = Kernel::with_config(eden_kernel::KernelConfig {
            trace_capacity: 64,
            ..Default::default()
        });
        let s = Session::new(&kernel).unwrap();
        s.execute("mkfile t a").unwrap();
        let trace = s.execute("trace").unwrap();
        assert!(trace.iter().any(|l| l.contains("invoke")));
        let top = s.execute("top").unwrap();
        assert!(top[0].contains("streams active"));
        assert!(top[1].trim().chars().next().unwrap().is_ascii_digit());
        kernel.shutdown();
    }

    #[test]
    fn stats_render_prometheus_and_json() {
        let (kernel, s) = session();
        s.execute("mkfile notes x").unwrap();
        let prom = s.execute("stats --prometheus").unwrap();
        assert!(prom.iter().any(|l| l.starts_with("# HELP eden_invocations_total")));
        assert!(prom
            .iter()
            .any(|l| l.starts_with("eden_invocations_total ")));
        let json = s.execute("stats --json").unwrap().join("\n");
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"eden_invocations_total\""));
        assert!(s.execute("stats --bogus").is_err());
        kernel.shutdown();
    }

    #[test]
    fn trace_reports_ring_eviction() {
        let kernel = Kernel::with_config(eden_kernel::KernelConfig {
            trace_capacity: 4,
            ..Default::default()
        });
        let s = Session::new(&kernel).unwrap();
        for i in 0..4 {
            s.execute(&format!("mkfile f{i} x")).unwrap();
        }
        let trace = s.execute("trace").unwrap();
        assert!(
            trace.last().unwrap().contains("evicted from the ring"),
            "{trace:?}"
        );
        kernel.shutdown();
    }

    #[test]
    fn trace_export_emits_chrome_json() {
        let kernel = Kernel::with_config(eden_kernel::KernelConfig {
            observability: eden_kernel::ObsConfig::full(),
            ..Default::default()
        });
        let s = Session::new(&kernel).unwrap();
        s.execute("mkfile notes hello").unwrap();
        s.execute("cat notes").unwrap();
        let exported = s.execute("trace export").unwrap().join("");
        assert!(exported.starts_with("{\"traceEvents\":["));
        assert!(exported.contains("\"ph\":\"X\""));
        kernel.shutdown();

        // Spans off: the subcommand says so instead of emitting an empty file.
        let plain = Kernel::new();
        let s = Session::new(&plain).unwrap();
        let out = s.execute("trace export").unwrap();
        assert!(out[0].contains("span recording disabled"));
        plain.shutdown();
    }

    #[test]
    fn top_watch_renders_frames() {
        let (kernel, s) = session();
        s.execute("mkfile notes x").unwrap();
        let out = s.execute("top --watch 2").unwrap();
        let frames = out.iter().filter(|l| l.contains("records in flight")).count();
        assert_eq!(frames, 2);
        assert!(s.execute("top --watch zap").is_err());
        kernel.shutdown();
    }

    #[test]
    fn dir_source_pipes_the_listing() {
        let (kernel, s) = session();
        s.execute("mkfile alpha x").unwrap();
        s.execute("mkfile beta y").unwrap();
        let out = s.execute("dir | grep alpha").unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("alpha"));
        kernel.shutdown();
    }

    #[test]
    fn errors_are_clean() {
        let (kernel, s) = session();
        assert!(s.execute("mkfile").is_err());
        assert!(s.execute("rm ghost").is_err());
        assert!(s.execute("bogus | pipeline").is_err());
        kernel.shutdown();
    }
}
