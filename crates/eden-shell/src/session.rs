//! An interactive shell session: a home directory, a host filing system,
//! and built-in commands on top of the pipeline language.
//!
//! Built-ins:
//!
//! * `mkfile NAME [LINE...]` — create a file Eject and enter it in the
//!   home directory
//! * `ls` — stream the home directory's listing
//! * `cat NAME` — stream a file's contents
//! * `rm NAME` — remove the directory entry (the file Eject survives
//!   until it deactivates; UIDs, not names, own Ejects)
//! * `checkpoint NAME` / `crash NAME` — durability controls
//! * `stats` — kernel metrics snapshot
//! * `trace` — recent kernel events (if tracing is enabled)
//! * `help`
//!
//! Anything else is parsed as a pipeline (see the crate docs).

use eden_core::op::ops;
use eden_core::{EdenError, Result, Uid, Value};
use eden_fs::{add_entry, lookup, register_fs_types, DirectoryEject, FileEject, MemFs, UnixFsEject};
use eden_kernel::Kernel;

use crate::exec::ShellEnv;

/// One interactive session over a kernel.
#[derive(Debug)]
pub struct Session {
    kernel: Kernel,
    home: Uid,
    env: ShellEnv,
}

impl Session {
    /// A fresh session: home directory + hermetic UnixFs, fs types
    /// registered.
    pub fn new(kernel: &Kernel) -> Result<Session> {
        register_fs_types(kernel);
        let home = kernel.spawn(Box::new(DirectoryEject::new()))?;
        let unixfs = kernel.spawn(Box::new(UnixFsEject::new(MemFs::new())))?;
        let env = ShellEnv::new(kernel)
            .with_directory(home)
            .with_unixfs(unixfs);
        Ok(Session {
            kernel: kernel.clone(),
            home,
            env,
        })
    }

    /// The home directory Eject.
    pub fn home(&self) -> Uid {
        self.home
    }

    /// The pipeline environment (for direct pipeline execution).
    pub fn env(&self) -> &ShellEnv {
        &self.env
    }

    /// Execute one command line; returns the printable output lines.
    pub fn execute(&self, line: &str) -> Result<Vec<String>> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(Vec::new());
        }
        // Built-ins get the same quoting rules as pipelines:
        // `mkfile notes 'alpha line'` is one two-word line, not two lines.
        const BUILTINS: [&str; 12] = [
            "mkfile", "ls", "cat", "rm", "checkpoint", "crash", "stats", "trace", "top",
            "ejects", "mv", "help",
        ];
        let tokens = crate::token::tokenize(trimmed)?;
        let is_builtin = matches!(
            tokens.first(),
            Some(crate::token::Token::Word(w)) if BUILTINS.contains(&w.as_str())
        );
        if !is_builtin {
            return self.run_pipeline(trimmed);
        }
        let all_words: Vec<String> = tokens
            .into_iter()
            .map(|t| match t {
                crate::token::Token::Word(w) => Ok(w),
                other => Err(EdenError::BadParameter(format!(
                    "built-in commands take plain (or quoted) words, got {other:?}"
                ))),
            })
            .collect::<Result<Vec<_>>>()?;
        let words: Vec<&str> = all_words.iter().map(String::as_str).collect();
        match words[0] {
            "mkfile" => self.mkfile(&words[1..]),
            "ls" => self.ls(),
            "cat" => self.cat(&words[1..]),
            "rm" => self.rm(&words[1..]),
            "checkpoint" => self.checkpoint(&words[1..]),
            "crash" => self.crash(&words[1..]),
            "stats" => self.stats(),
            "trace" => self.trace(),
            "top" => self.top(),
            "ejects" => self.ejects(),
            "mv" => self.mv(&words[1..]),
            _ => Ok(HELP.lines().map(str::to_owned).collect()),
        }
    }

    /// Execute a pipeline command and render its output and windows.
    fn run_pipeline(&self, command: &str) -> Result<Vec<String>> {
        let run = self.env.run(command)?;
        let mut out = run.output_lines();
        for (window, items) in &run.windows {
            out.push(format!("[window {window}]"));
            for item in items {
                out.push(format!("  {}", render(item)));
            }
        }
        Ok(out)
    }

    fn named_file(&self, args: &[&str], what: &str) -> Result<Uid> {
        let name = args
            .first()
            .ok_or_else(|| EdenError::BadParameter(format!("{what}: need a name")))?;
        lookup(&self.kernel, self.home, name)
    }

    fn mkfile(&self, args: &[&str]) -> Result<Vec<String>> {
        let name = args
            .first()
            .ok_or_else(|| EdenError::BadParameter("mkfile: need a name".into()))?;
        let file = self
            .kernel
            .spawn(Box::new(FileEject::from_lines(args[1..].iter().copied())))?;
        add_entry(&self.kernel, self.home, name, file)?;
        Ok(vec![format!("created {name} ({file})")])
    }

    fn ls(&self) -> Result<Vec<String>> {
        let count = self
            .kernel
            .invoke(self.home, ops::LIST, Value::Unit).wait()?
            .as_int()?;
        let mut lines = Vec::with_capacity(count as usize);
        loop {
            let batch = eden_transput::protocol::Batch::from_value(self.kernel.invoke(
                self.home,
                ops::TRANSFER,
                eden_transput::protocol::TransferRequest::primary(32).to_value(),
            ).wait()?)?;
            for item in batch.items {
                lines.push(render(&item));
            }
            if batch.end {
                break;
            }
        }
        Ok(lines)
    }

    fn cat(&self, args: &[&str]) -> Result<Vec<String>> {
        let file = self.named_file(args, "cat")?;
        let reader = self
            .kernel
            .invoke(file, ops::OPEN, Value::Unit).wait()?
            .as_uid()?;
        let mut lines = Vec::new();
        loop {
            let batch = eden_transput::protocol::Batch::from_value(self.kernel.invoke(
                reader,
                ops::TRANSFER,
                eden_transput::protocol::TransferRequest::primary(32).to_value(),
            ).wait()?)?;
            for item in batch.items {
                lines.push(render(&item));
            }
            if batch.end {
                break;
            }
        }
        Ok(lines)
    }

    fn rm(&self, args: &[&str]) -> Result<Vec<String>> {
        let name = args
            .first()
            .ok_or_else(|| EdenError::BadParameter("rm: need a name".into()))?;
        self.kernel.invoke(
            self.home,
            ops::DELETE_ENTRY,
            Value::record([("name", Value::str(*name))]),
        ).wait()?;
        Ok(vec![format!("removed {name}")])
    }

    fn checkpoint(&self, args: &[&str]) -> Result<Vec<String>> {
        let file = self.named_file(args, "checkpoint")?;
        self.kernel.invoke(file, ops::CHECKPOINT, Value::Unit).wait()?;
        Ok(vec![format!("checkpointed {}", args[0])])
    }

    fn crash(&self, args: &[&str]) -> Result<Vec<String>> {
        let file = self.named_file(args, "crash")?;
        self.kernel.crash(file)?;
        Ok(vec![format!("crashed {} (fail-stop)", args[0])])
    }

    fn stats(&self) -> Result<Vec<String>> {
        let s = self.kernel.metrics().snapshot();
        Ok(vec![
            format!(
                "invocations: {} ({} remote), replies: {} ({} deferred)",
                s.invocations, s.remote_invocations, s.replies, s.deferred_replies
            ),
            format!(
                "internal msgs: {}, bytes moved: {}, ejects created: {}",
                s.internal_messages,
                s.bytes_total(),
                s.ejects_created
            ),
            format!(
                "activations: {}, deactivations: {}, checkpoints: {}, crashes: {}",
                s.activations, s.deactivations, s.checkpoints, s.crashes
            ),
            format!(
                "faults injected: {}, retries: {}, reactivations: {}, recovered streams: {}",
                s.faults_injected, s.retries, s.reactivations, s.recovered_streams
            ),
            {
                let p = eden_core::payload::snapshot();
                format!(
                    "payload_bytes_moved: {}, payload_copies: {}, cow_breaks: {}, payload_shares: {}",
                    p.payload_bytes_moved, p.payload_copies, p.cow_breaks, p.payload_shares
                )
            },
        ])
    }

    fn ejects(&self) -> Result<Vec<String>> {
        Ok(self
            .kernel
            .list_ejects()
            .into_iter()
            .map(|info| {
                format!(
                    "{:<24} {:<8} node {}  {}",
                    info.uid,
                    match info.state {
                        eden_kernel::EjectState::Active => "active",
                        eden_kernel::EjectState::Passive => "passive",
                    },
                    info.node.0,
                    info.type_name
                )
            })
            .collect())
    }

    fn mv(&self, args: &[&str]) -> Result<Vec<String>> {
        let (from, to) = match args {
            [from, to] => (*from, *to),
            _ => {
                return Err(EdenError::BadParameter(
                    "mv: need OLD-NAME NEW-NAME".into(),
                ))
            }
        };
        eden_fs::rename_entry(&self.kernel, self.home, from, to)?;
        Ok(vec![format!("renamed {from} -> {to}")])
    }

    fn top(&self) -> Result<Vec<String>> {
        let tallies = self.kernel.invocations_by_target();
        if tallies.is_empty() {
            return Ok(vec![
                "no data (tracing disabled, or nothing invoked yet)".to_owned(),
            ]);
        }
        Ok(tallies
            .into_iter()
            .take(10)
            .map(|(uid, count)| format!("{count:>8}  {uid}"))
            .collect())
    }

    fn trace(&self) -> Result<Vec<String>> {
        let events = self.kernel.trace_events();
        if events.is_empty() {
            return Ok(vec![
                "tracing disabled (start the kernel with trace_capacity > 0)".to_owned(),
            ]);
        }
        Ok(events.iter().map(|e| e.to_string()).collect())
    }
}

fn render(v: &Value) -> String {
    v.to_string()
}

/// The help text.
pub const HELP: &str = "\
built-ins:
  mkfile NAME [LINE...]   create a file Eject in the home directory
  ls                      list the home directory (streamed)
  cat NAME                stream a file's contents
  rm NAME                 remove a directory entry
  mv OLD NEW              rename a directory entry (atomic)
  ejects                  list every Eject the kernel knows
  checkpoint NAME         write the file's passive representation
  crash NAME              fail-stop the file Eject (recovers on next use)
  stats                   kernel metrics snapshot
  trace                   recent kernel events (needs tracing enabled)
  top                     busiest Ejects by invocation count (needs tracing)
  help                    this text
pipelines:
  [@key=value ...] SOURCE [| FILTER args... [Chan>window]]... [> SINK]
  sources: lines 'a' 'b' | seq N | file NAME | unix PATH
           merge NAME... (cat-style fan-in) | zip NAME NAME (tuples)
  e.g.: file notes | grep eden | upcase > file shouted
        zip old new | compare";

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> (Kernel, Session) {
        let kernel = Kernel::new();
        let session = Session::new(&kernel).unwrap();
        (kernel, session)
    }

    #[test]
    fn mkfile_ls_cat_rm_cycle() {
        let (kernel, s) = session();
        s.execute("mkfile notes hello world").unwrap();
        let ls = s.execute("ls").unwrap();
        assert_eq!(ls.len(), 1);
        assert!(ls[0].starts_with("notes"));
        assert_eq!(s.execute("cat notes").unwrap(), vec!["hello", "world"]);
        s.execute("rm notes").unwrap();
        assert!(s.execute("cat notes").is_err());
        kernel.shutdown();
    }

    #[test]
    fn builtins_honor_quoting() {
        let (kernel, s) = session();
        s.execute("mkfile notes 'alpha line' beta").unwrap();
        assert_eq!(s.execute("cat notes").unwrap(), vec!["alpha line", "beta"]);
        kernel.shutdown();
    }

    #[test]
    fn pipelines_on_session_files() {
        let (kernel, s) = session();
        s.execute("mkfile data 'ignored-quoting' C-comment keep").unwrap();
        let out = s.execute("file data | grep keep").unwrap();
        assert_eq!(out, vec!["keep"]);
        kernel.shutdown();
    }

    #[test]
    fn checkpoint_and_crash_roundtrip() {
        let (kernel, s) = session();
        s.execute("mkfile precious gold").unwrap();
        s.execute("checkpoint precious").unwrap();
        s.execute("crash precious").unwrap();
        // Reactivates on the next use, contents intact.
        assert_eq!(s.execute("cat precious").unwrap(), vec!["gold"]);
        kernel.shutdown();
    }

    #[test]
    fn stats_and_help_and_comments() {
        let (kernel, s) = session();
        assert!(s.execute("# a comment").unwrap().is_empty());
        assert!(s.execute("").unwrap().is_empty());
        assert!(!s.execute("help").unwrap().is_empty());
        let stats = s.execute("stats").unwrap();
        assert!(stats[0].contains("invocations"));
        assert!(stats
            .iter()
            .any(|l| l.contains("payload_bytes_moved") && l.contains("cow_breaks")));
        kernel.shutdown();
    }

    #[test]
    fn trace_command_reports_state() {
        let kernel = Kernel::with_config(eden_kernel::KernelConfig {
            trace_capacity: 64,
            ..Default::default()
        });
        let s = Session::new(&kernel).unwrap();
        s.execute("mkfile t a").unwrap();
        let trace = s.execute("trace").unwrap();
        assert!(trace.iter().any(|l| l.contains("invoke")));
        let top = s.execute("top").unwrap();
        assert!(top[0].trim().chars().next().unwrap().is_ascii_digit());
        kernel.shutdown();
    }

    #[test]
    fn dir_source_pipes_the_listing() {
        let (kernel, s) = session();
        s.execute("mkfile alpha x").unwrap();
        s.execute("mkfile beta y").unwrap();
        let out = s.execute("dir | grep alpha").unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("alpha"));
        kernel.shutdown();
    }

    #[test]
    fn errors_are_clean() {
        let (kernel, s) = session();
        assert!(s.execute("mkfile").is_err());
        assert!(s.execute("rm ghost").is_err());
        assert!(s.execute("bogus | pipeline").is_err());
        kernel.shutdown();
    }
}
