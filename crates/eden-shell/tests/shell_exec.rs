//! End-to-end shell execution: language → Ejects → output.

use eden_core::op::ops;
use eden_core::Value;
use eden_fs::{add_entry, register_fs_types, DirectoryEject, FileEject, MemFs, UnixFsEject};
use eden_kernel::Kernel;
use eden_shell::ShellEnv;

fn plain_env(kernel: &Kernel) -> ShellEnv {
    ShellEnv::new(kernel)
}

#[test]
fn seq_source_counts() {
    let kernel = Kernel::new();
    let run = plain_env(&kernel).run("seq 5").unwrap();
    assert_eq!(run.output, (0..5).map(Value::Int).collect::<Vec<_>>());
    kernel.shutdown();
}

#[test]
fn filters_compose() {
    let kernel = Kernel::new();
    let run = plain_env(&kernel)
        .run("lines 'the cat' 'a dog' 'the bird' | grep the | upcase | line-number")
        .unwrap();
    assert_eq!(
        run.output_lines(),
        vec!["     1  THE CAT", "     2  THE BIRD"]
    );
    kernel.shutdown();
}

#[test]
fn all_disciplines_produce_same_output() {
    let kernel = Kernel::new();
    let env = plain_env(&kernel);
    let base = "lines 'b' 'a' 'b' | sort | uniq";
    let ro = env.run(base).unwrap();
    let wo = env
        .run(&format!("@discipline=write-only {base}"))
        .unwrap();
    let conv = env
        .run(&format!("@discipline=conventional {base}"))
        .unwrap();
    assert_eq!(ro.output_lines(), vec!["a", "b"]);
    assert_eq!(ro.output, wo.output);
    assert_eq!(wo.output, conv.output);
    kernel.shutdown();
}

#[test]
fn channel_tap_fills_window() {
    let kernel = Kernel::new();
    let run = plain_env(&kernel)
        .run("lines 'the cat zat' | spell-check the cat Report>spelling")
        .unwrap();
    assert_eq!(run.output_lines(), vec!["the cat zat"]);
    let window = &run.windows["spelling"];
    assert!(window[0].as_str().unwrap().contains("zat"));
    kernel.shutdown();
}

#[test]
fn capability_policy_directive_works() {
    let kernel = Kernel::new();
    let run = plain_env(&kernel)
        .run("@policy=cap lines 'x y' | spell-check x Report>w")
        .unwrap();
    assert_eq!(run.output_lines(), vec!["x y"]);
    assert!(!run.windows["w"].is_empty());
    kernel.shutdown();
}

#[test]
fn file_source_and_sink() {
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    let dir = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let input = kernel
        .spawn(Box::new(FileEject::from_lines(["C strip me", "keep me"])))
        .unwrap();
    let output = kernel.spawn(Box::new(FileEject::new())).unwrap();
    add_entry(&kernel, dir, "in.f", input).unwrap();
    add_entry(&kernel, dir, "out.f", output).unwrap();
    let env = plain_env(&kernel).with_directory(dir);
    let run = env
        .run("file in.f | strip-comments > file out.f")
        .unwrap();
    assert_eq!(run.output_lines(), vec!["keep me"]);
    // The target file received the stream.
    let len = kernel.invoke(output, "Length", Value::Unit).wait().unwrap();
    assert_eq!(len, Value::Int(1));
    kernel.shutdown();
}

#[test]
fn unix_source_and_sink() {
    let fs = MemFs::with_files([("in.txt", "alpha\nbeta\n")]);
    let kernel = Kernel::new();
    let ufs = kernel
        .spawn(Box::new(UnixFsEject::new(fs.clone())))
        .unwrap();
    let env = plain_env(&kernel).with_unixfs(ufs);
    let run = env.run("unix in.txt | upcase > unix out.txt").unwrap();
    assert_eq!(run.output_lines(), vec!["ALPHA", "BETA"]);
    assert_eq!(
        String::from_utf8(fs.read("out.txt").unwrap()).unwrap(),
        "ALPHA\nBETA\n"
    );
    kernel.shutdown();
}

#[test]
fn merge_and_zip_sources() {
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    let dir = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    for (name, lines) in [("a", vec!["a1", "a2"]), ("b", vec!["b1", "a2"])] {
        let file = kernel
            .spawn(Box::new(FileEject::from_lines(lines)))
            .unwrap();
        add_entry(&kernel, dir, name, file).unwrap();
    }
    let env = plain_env(&kernel).with_directory(dir);
    // merge = cat a b.
    let run = env.run("merge a b | sort").unwrap();
    assert_eq!(run.output_lines(), vec!["a1", "a2", "a2", "b1"]);
    // zip + compare = §5's file comparison program.
    let run = env.run("zip a b | compare").unwrap();
    let lines = run.output_lines();
    assert!(lines[0].starts_with("1c1"), "{lines:?}");
    assert!(lines.last().unwrap().contains("1 difference(s)"));
    // Parse errors are clean.
    assert!(env.run("merge").is_err());
    kernel.shutdown();
}

#[test]
fn file_source_without_directory_fails() {
    let kernel = Kernel::new();
    let err = plain_env(&kernel).run("file nope.txt").unwrap_err();
    assert!(err.to_string().contains("no directory"));
    kernel.shutdown();
}

#[test]
fn unknown_filter_reports_name() {
    let kernel = Kernel::new();
    let err = plain_env(&kernel).run("seq 1 | frobnicate").unwrap_err();
    assert!(err.to_string().contains("frobnicate"));
    kernel.shutdown();
}

#[test]
fn sed_via_shell() {
    let kernel = Kernel::new();
    let run = plain_env(&kernel)
        .run("lines 'the cat' 'a bird' | sed 's/cat/dog/' 'd/bird/'")
        .unwrap();
    assert_eq!(run.output_lines(), vec!["the dog"]);
    kernel.shutdown();
}

#[test]
fn wc_summary_record() {
    let kernel = Kernel::new();
    let run = plain_env(&kernel)
        .run("lines 'one two' 'three' | wc")
        .unwrap();
    assert_eq!(run.output.len(), 1);
    assert_eq!(run.output[0].field("words").unwrap().as_int().unwrap(), 3);
    kernel.shutdown();
}

#[test]
fn shell_pipeline_tears_down_ejects() {
    let kernel = Kernel::new();
    plain_env(&kernel).run("seq 10 | upcase | sort").unwrap();
    assert_eq!(kernel.eject_count(), 0);
    kernel.shutdown();
}

#[test]
fn directives_tune_disciplines() {
    let kernel = Kernel::new();
    let env = plain_env(&kernel);
    for cmd in [
        "@readahead=8 seq 20 | copy",
        "@discipline=write-only @pushahead=4 seq 20 | copy",
        "@discipline=conventional @buffer=2 @batch=2 seq 20 | copy",
        "@nodes=3 seq 20 | copy",
    ] {
        let run = env.run(cmd).unwrap();
        assert_eq!(run.output.len(), 20, "failed: {cmd}");
    }
    kernel.shutdown();
}

#[test]
fn listing_a_directory_through_the_shell() {
    // Directories are sources (§2): pipe a listing through a filter.
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    let dir = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let home = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    add_entry(&kernel, dir, "home", home).unwrap();
    add_entry(&kernel, dir, "zoo", eden_core::Uid::fresh()).unwrap();
    // Prepare the listing, then read the directory itself as a source.
    kernel.invoke(dir, ops::LIST, Value::Unit).wait().unwrap();
    let env = plain_env(&kernel);
    // There is no `dir` source kind; use the builder path via `file`-less
    // eject reading — covered by the transput tests. Here we check the
    // listing contents arrived via a plain read.
    let collector = eden_transput::Collector::new();
    kernel
        .spawn(Box::new(eden_transput::sink::SinkEject::new(
            dir,
            8,
            collector.clone(),
        )))
        .unwrap();
    let lines = collector
        .wait_done(std::time::Duration::from_secs(5))
        .unwrap();
    assert_eq!(lines.len(), 2);
    drop(env);
    kernel.shutdown();
}
