//! Directories as Ejects.
//!
//! "In Eden directories are also Ejects; they respond to invocations like
//! *Lookup*, *DeleteEntry*, *AddEntry* and *List*. Each entry in a
//! directory Eject is in principle a pair consisting of a mnemonic lookup
//! string and the Unique Identifier of the Eject" (§2).
//!
//! Directories also behave as stream *sources* (§4): "The effect of a
//! *List* invocation is to prepare the directory to receive a number of
//! *Read* invocations, which transfer a printable representation of the
//! directory's contents to the reader."
//!
//! "It is, of course, possible to enter the UID of any Eject in a
//! directory, so arbitrary networks of directories can be constructed."

use std::collections::BTreeMap;

use eden_core::op::ops;
use eden_core::{EdenError, Result, Uid, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, ReplyHandle};
use eden_transput::protocol::{Batch, TransferRequest};

/// The Eden type name of [`DirectoryEject`] (used for reactivation).
pub const DIRECTORY_TYPE: &str = "EdenDirectory";

/// A directory: a checkpointable map from names to UIDs, which doubles as
/// a stream source of its own printable listing.
#[derive(Debug)]
pub struct DirectoryEject {
    entries: BTreeMap<String, Uid>,
    /// The listing being streamed out, prepared by `List`.
    listing: Vec<Value>,
}

impl DirectoryEject {
    /// An empty directory.
    pub fn new() -> DirectoryEject {
        DirectoryEject {
            entries: BTreeMap::new(),
            listing: Vec::new(),
        }
    }

    /// Reconstruct from a passive representation.
    pub fn from_passive(rep: Option<Value>) -> Result<Box<dyn EjectBehavior>> {
        let mut dir = DirectoryEject::new();
        if let Some(v) = rep {
            for pair in v.field("entries")?.as_list()? {
                let name = pair.field("name")?.as_str()?.to_owned();
                let uid = pair.field("uid")?.as_uid()?;
                dir.entries.insert(name, uid);
            }
        }
        Ok(Box::new(dir))
    }

    /// Register the directory type's reactivation constructor on a kernel.
    pub fn register(kernel: &eden_kernel::Kernel) {
        kernel.register_type(DIRECTORY_TYPE, DirectoryEject::from_passive);
    }

    /// Number of entries (for tests).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lookup(&self, arg: &Value) -> Result<Value> {
        let name = arg.field("name")?.as_str()?;
        self.entries
            .get(name)
            .map(|uid| Value::Uid(*uid))
            .ok_or_else(|| EdenError::Application(format!("no entry named `{name}`")))
    }

    fn add_entry(&mut self, arg: &Value) -> Result<Value> {
        let name = arg.field("name")?.as_str()?.to_owned();
        let uid = arg.field("uid")?.as_uid()?;
        if name.is_empty() {
            return Err(EdenError::BadParameter("entry name may not be empty".into()));
        }
        if self.entries.contains_key(&name) {
            return Err(EdenError::Application(format!(
                "entry `{name}` already exists"
            )));
        }
        self.entries.insert(name, uid);
        Ok(Value::Unit)
    }

    fn delete_entry(&mut self, arg: &Value) -> Result<Value> {
        let name = arg.field("name")?.as_str()?;
        self.entries
            .remove(name)
            .map(|_| Value::Unit)
            .ok_or_else(|| EdenError::Application(format!("no entry named `{name}`")))
    }

    /// Rename an entry atomically. §7 notes the full Eden file system was
    /// to get "nested transactions and atomic updates"; within a single
    /// directory Eject atomicity is free — the coordinator dispatches one
    /// invocation at a time, so no observer can see the intermediate
    /// state.
    fn rename(&mut self, arg: &Value) -> Result<Value> {
        let from = arg.field("from")?.as_str()?.to_owned();
        let to = arg.field("to")?.as_str()?.to_owned();
        if to.is_empty() {
            return Err(EdenError::BadParameter("entry name may not be empty".into()));
        }
        if !self.entries.contains_key(&from) {
            return Err(EdenError::Application(format!("no entry named `{from}`")));
        }
        if from != to && self.entries.contains_key(&to) {
            return Err(EdenError::Application(format!("entry `{to}` already exists")));
        }
        let uid = self.entries.remove(&from).expect("presence checked");
        self.entries.insert(to, uid);
        Ok(Value::Unit)
    }

    /// Prepare the printable listing for streaming.
    fn prepare_listing(&mut self) -> Value {
        self.listing = self
            .entries
            .iter()
            .map(|(name, uid)| Value::str(format!("{name:<24} {uid}")))
            .collect();
        Value::Int(self.listing.len() as i64)
    }

    fn serve_transfer(&mut self, req: &TransferRequest) -> Batch {
        let n = req.max.min(self.listing.len());
        let items: Vec<Value> = self.listing.drain(..n).collect();
        let end = self.listing.is_empty();
        Batch { items, end }
    }
}

impl Default for DirectoryEject {
    fn default() -> Self {
        DirectoryEject::new()
    }
}

impl EjectBehavior for DirectoryEject {
    fn type_name(&self) -> &'static str {
        DIRECTORY_TYPE
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::LOOKUP => reply.reply(self.lookup(&inv.arg)),
            ops::ADD_ENTRY => reply.reply(self.add_entry(&inv.arg)),
            ops::DELETE_ENTRY => reply.reply(self.delete_entry(&inv.arg)),
            "Rename" => reply.reply(self.rename(&inv.arg)),
            ops::LIST => reply.reply(Ok(self.prepare_listing())),
            ops::TRANSFER => match TransferRequest::from_value(&inv.arg) {
                Ok(req) => reply.reply(Ok(self.serve_transfer(&req).to_value())),
                Err(e) => reply.reply(Err(e)),
            },
            "Count" => reply.reply(Ok(Value::Int(self.entries.len() as i64))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }

    fn passive_representation(&self) -> Option<Value> {
        Some(Value::record([(
            "entries",
            Value::List(
                self.entries
                    .iter()
                    .map(|(name, uid)| {
                        Value::record([
                            ("name", Value::str(name.clone())),
                            ("uid", Value::Uid(*uid)),
                        ])
                    })
                    .collect(),
            ),
        )]))
    }
}

/// A directory concatenator (§2): "initialised with a list of directories
/// \[it\] yields the same result as would be obtained from performing the
/// lookup on all of the directories in turn until the name is found... a
/// facility rather like that offered by the Unix shell and the PATH
/// environment variable."
///
/// Because the concatenator answers `Lookup` like any directory, clients
/// cannot tell it from a plain one — the behavioural-compatibility point
/// of §2.
#[derive(Debug)]
pub struct DirConcatenatorEject {
    directories: Vec<Uid>,
}

impl DirConcatenatorEject {
    /// Search `directories` in order.
    pub fn new(directories: Vec<Uid>) -> DirConcatenatorEject {
        DirConcatenatorEject { directories }
    }
}

impl EjectBehavior for DirConcatenatorEject {
    fn type_name(&self) -> &'static str {
        "DirConcatenator"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::LOOKUP => {
                // "It may be implemented either by actually performing the
                // multiple lookups, or by maintaining some sort of table";
                // we do the honest multiple lookups.
                let mut last_err =
                    EdenError::Application("concatenator has no directories".into());
                for &dir in &self.directories {
                    match ctx.invoke(dir, ops::LOOKUP, inv.arg.clone()).wait() {
                        Ok(found) => {
                            reply.reply(Ok(found));
                            return;
                        }
                        Err(e) => last_err = e,
                    }
                }
                reply.reply(Err(last_err));
            }
            "Count" => reply.reply(Ok(Value::Int(self.directories.len() as i64))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_arg(name: &str) -> Value {
        Value::record([("name", Value::str(name))])
    }

    fn entry_arg(name: &str, uid: Uid) -> Value {
        Value::record([("name", Value::str(name)), ("uid", Value::Uid(uid))])
    }

    #[test]
    fn add_lookup_delete() {
        let mut dir = DirectoryEject::new();
        let uid = Uid::fresh();
        dir.add_entry(&entry_arg("readme", uid)).unwrap();
        assert_eq!(dir.lookup(&lookup_arg("readme")).unwrap(), Value::Uid(uid));
        assert!(dir.lookup(&lookup_arg("missing")).is_err());
        dir.delete_entry(&lookup_arg("readme")).unwrap();
        assert!(dir.lookup(&lookup_arg("readme")).is_err());
        assert!(dir.is_empty());
    }

    #[test]
    fn duplicate_entry_rejected() {
        let mut dir = DirectoryEject::new();
        dir.add_entry(&entry_arg("x", Uid::fresh())).unwrap();
        assert!(dir.add_entry(&entry_arg("x", Uid::fresh())).is_err());
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn empty_name_rejected() {
        let mut dir = DirectoryEject::new();
        assert!(dir.add_entry(&entry_arg("", Uid::fresh())).is_err());
    }

    #[test]
    fn listing_streams_sorted_lines() {
        let mut dir = DirectoryEject::new();
        dir.add_entry(&entry_arg("beta", Uid::fresh())).unwrap();
        dir.add_entry(&entry_arg("alpha", Uid::fresh())).unwrap();
        let count = dir.prepare_listing();
        assert_eq!(count, Value::Int(2));
        let batch = dir.serve_transfer(&TransferRequest::primary(10));
        assert_eq!(batch.len(), 2);
        assert!(batch.end);
        let first = batch.items[0].as_str().unwrap();
        assert!(first.starts_with("alpha"), "listing must be sorted: {first}");
    }

    #[test]
    fn passive_representation_roundtrips() {
        let mut dir = DirectoryEject::new();
        let uid = Uid::fresh();
        dir.add_entry(&entry_arg("kept", uid)).unwrap();
        let rep = dir.passive_representation().unwrap();
        let rebuilt = DirectoryEject::from_passive(Some(rep)).unwrap();
        // The rebuilt behaviour must answer the same lookup.
        let mut rebuilt = rebuilt;
        let _ = &mut rebuilt;
        // (Behavioural check happens in the kernel-level tests; here we
        // check the decode path itself produced a directory.)
        assert_eq!(rebuilt.type_name(), DIRECTORY_TYPE);
    }
}
