//! The bootstrap "Unix File System" Ejects of §7, verbatim:
//!
//! "This consists of a 'Unix File System' Eject for each physical machine,
//! which responds to two invocations, *NewStream* and *UseStream*. ...
//! *NewStream* takes as input a Unix path name, and returns as its result
//! an Eden stream, i.e. a Capability. The Capability is actually the UID of
//! a newly created Eject (of type UnixFile), whose purpose is to respond to
//! Transfer invocations with the contents of the appropriate Unix file.
//! When the user closes the stream, the UnixFile Eject deactivates itself
//! and, since it has never Checkpointed, disappears. *UseStream* does the
//! opposite; it takes as input a Unix path name and a Capability for a
//! stream, and creates a UnixFile Eject which repeatedly invokes Transfer
//! on the capability and records the data it receives. When an end of
//! stream status is returned by Transfer, the appropriate Unix file is
//! opened, written and closed."

use eden_core::op::ops;
use eden_core::{EdenError, Uid, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, ReplyHandle};
use eden_transput::protocol::{Batch, TransferRequest};

use crate::hostfs::{bytes_to_lines, lines_to_bytes, HostFsHandle};

/// The per-machine bootstrap Eject.
#[derive(Debug)]
pub struct UnixFsEject {
    fs: HostFsHandle,
}

impl UnixFsEject {
    /// Serve the given host filing system.
    pub fn new(fs: HostFsHandle) -> UnixFsEject {
        UnixFsEject { fs }
    }
}

impl EjectBehavior for UnixFsEject {
    fn type_name(&self) -> &'static str {
        "UnixFileSystem"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::NEW_STREAM => {
                let path = match inv.arg.field("path").and_then(|v| v.as_str()) {
                    Ok(p) => p.to_owned(),
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                let lines = match self.fs.read(&path).map(|b| bytes_to_lines(&b)) {
                    Ok(lines) => lines,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                let reader = UnixFileReader::new(lines);
                let kernel = match ctx.kernel() {
                    Some(k) => k,
                    None => {
                        reply.reply(Err(EdenError::KernelShutdown));
                        return;
                    }
                };
                match kernel.spawn_on(ctx.node(), Box::new(reader)) {
                    // "returns as its result an Eden stream, i.e. a
                    // Capability" — the reader's UID.
                    Ok(uid) => reply.reply(Ok(Value::Uid(uid))),
                    Err(e) => reply.reply(Err(e)),
                }
            }
            ops::USE_STREAM => {
                let path = match inv.arg.field("path").and_then(|v| v.as_str()) {
                    Ok(p) => p.to_owned(),
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                let stream = match inv.arg.field("stream").and_then(Value::as_uid) {
                    Ok(u) => u,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                let fs = self.fs.clone();
                // The copier is a worker of the UnixFs Eject; the reply to
                // UseStream is deferred until the file is durably written.
                reply.mark_deferred();
                ctx.spawn_process("use-stream", move |pctx| {
                    let mut lines: Vec<String> = Vec::new();
                    loop {
                        let req = TransferRequest::primary(64);
                        let pending = pctx.invoke(stream, ops::TRANSFER, req.to_value());
                        match pctx.wait_or_stop(pending).and_then(Batch::from_value) {
                            Ok(batch) => {
                                for item in batch.items {
                                    match item {
                                        Value::Str(s) => lines.push(s.to_string_owned()),
                                        other => lines.push(format!("{other:?}")),
                                    }
                                }
                                if batch.end {
                                    break;
                                }
                            }
                            Err(e) => {
                                reply.reply(Err(e));
                                return;
                            }
                        }
                    }
                    let result = fs
                        .write(&path, &lines_to_bytes(&lines))
                        .map(|()| Value::Int(lines.len() as i64));
                    reply.reply(result);
                });
            }
            "ListFiles" => {
                let files = self
                    .fs
                    .list()
                    .into_iter()
                    .map(Value::from)
                    .collect::<Vec<_>>();
                reply.reply(Ok(Value::list(files)));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// The disposable stream Eject minted by `NewStream`.
struct UnixFileReader {
    lines: std::collections::VecDeque<Value>,
}

impl UnixFileReader {
    fn new(lines: Vec<String>) -> UnixFileReader {
        UnixFileReader {
            lines: lines.into_iter().map(Value::from).collect(),
        }
    }
}

impl EjectBehavior for UnixFileReader {
    fn type_name(&self) -> &'static str {
        "UnixFile"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::TRANSFER => {
                let req = match TransferRequest::from_value(&inv.arg) {
                    Ok(r) => r,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                let n = req.max.min(self.lines.len());
                let items: Vec<Value> = self.lines.drain(..n).collect();
                let end = self.lines.is_empty();
                reply.reply(Ok(Batch { items, end }.to_value()));
                if end {
                    // Never checkpointed: deactivating destroys it (§7).
                    ctx.request_deactivate();
                }
            }
            ops::CLOSE => {
                reply.reply(Ok(Value::Unit));
                ctx.request_deactivate();
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// Build the `NewStream` argument.
pub fn new_stream_arg(path: &str) -> Value {
    Value::record([("path", Value::str(path))])
}

/// Build the `UseStream` argument.
pub fn use_stream_arg(path: &str, stream: Uid) -> Value {
    Value::record([("path", Value::str(path)), ("stream", Value::Uid(stream))])
}
