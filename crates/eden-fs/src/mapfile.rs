//! The Map abstraction of §6.
//!
//! "The Transput protocol does not support random access; a disk file
//! Eject (or an Eject with a large main store at its disposal) may wish to
//! define a protocol which supports the abstraction of a Map. Such an
//! Eject may not support the transput protocol at all, or it may support
//! both protocols."
//!
//! [`MapFileEject`] supports **both**: the Map operations `ReadAt` /
//! `WriteAt` / `Size`, and the stream protocol (`Open` mints a reader
//! exactly like [`FileEject`](crate::FileEject)). This demonstrates the
//! §2 point that protocols are behaviours, not types: any client written
//! against the stream protocol is satisfied by a map file, and map-aware
//! clients get more.

use eden_core::op::ops;
use eden_core::{EdenError, Result, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, ReplyHandle};

use crate::file::FileReaderEject;

/// The Eden type name of [`MapFileEject`] (used for reactivation).
pub const MAP_FILE_TYPE: &str = "EdenMapFile";

/// A random-access record file that also speaks the stream protocol.
#[derive(Debug)]
pub struct MapFileEject {
    records: Vec<Value>,
}

impl MapFileEject {
    /// An empty map file.
    pub fn new() -> MapFileEject {
        MapFileEject::with_records(Vec::new())
    }

    /// A map file with initial contents.
    pub fn with_records(records: Vec<Value>) -> MapFileEject {
        MapFileEject { records }
    }

    /// Reconstruct from a passive representation.
    pub fn from_passive(rep: Option<Value>) -> Result<Box<dyn EjectBehavior>> {
        let records = match rep {
            Some(v) => v.field("records")?.as_list()?.to_vec(),
            None => Vec::new(),
        };
        Ok(Box::new(MapFileEject::with_records(records)))
    }

    /// Register the reactivation constructor on a kernel.
    pub fn register(kernel: &eden_kernel::Kernel) {
        kernel.register_type(MAP_FILE_TYPE, MapFileEject::from_passive);
    }

    fn read_at(&self, arg: &Value) -> Result<Value> {
        let index = arg.field("index")?.as_int()?;
        let count = arg.field_opt("count").map(|c| c.as_int()).transpose()?.unwrap_or(1);
        if index < 0 || count < 0 {
            return Err(EdenError::BadParameter(
                "index and count must be non-negative".into(),
            ));
        }
        let start = index as usize;
        if start > self.records.len() {
            return Err(EdenError::BadParameter(format!(
                "index {start} beyond size {}",
                self.records.len()
            )));
        }
        let end = (start + count as usize).min(self.records.len());
        Ok(Value::list(self.records[start..end].to_vec()))
    }

    fn write_at(&mut self, arg: &Value) -> Result<Value> {
        let index = arg.field("index")?.as_int()?;
        let items = arg.field("items")?.as_list()?.to_vec();
        if index < 0 {
            return Err(EdenError::BadParameter("index must be non-negative".into()));
        }
        let start = index as usize;
        if start > self.records.len() {
            return Err(EdenError::BadParameter(format!(
                "sparse writes unsupported: index {start} beyond size {}",
                self.records.len()
            )));
        }
        // Overwrite in place, extending at the tail.
        let end = start + items.len();
        if end > self.records.len() {
            self.records.resize(end, Value::Unit);
        }
        for (offset, item) in items.into_iter().enumerate() {
            self.records[start + offset] = item;
        }
        Ok(Value::Int(self.records.len() as i64))
    }
}

impl Default for MapFileEject {
    fn default() -> Self {
        MapFileEject::new()
    }
}

impl EjectBehavior for MapFileEject {
    fn type_name(&self) -> &'static str {
        MAP_FILE_TYPE
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            // The Map protocol.
            "ReadAt" => reply.reply(self.read_at(&inv.arg)),
            "WriteAt" => reply.reply(self.write_at(&inv.arg)),
            "Size" => reply.reply(Ok(Value::Int(self.records.len() as i64))),
            // The stream protocol, via a disposable reader (as FileEject).
            ops::OPEN => {
                let reader = FileReaderEject::new(self.records.clone());
                let result = match ctx.kernel() {
                    Some(kernel) => kernel
                        .spawn_on(ctx.node(), Box::new(reader))
                        .map(Value::Uid),
                    None => Err(EdenError::KernelShutdown),
                };
                reply.reply(result);
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }

    fn passive_representation(&self) -> Option<Value> {
        Some(Value::record([(
            "records",
            Value::list(self.records.clone()),
        )]))
    }
}

/// Build a `ReadAt` argument.
pub fn read_at_arg(index: i64, count: i64) -> Value {
    Value::record([("index", Value::Int(index)), ("count", Value::Int(count))])
}

/// Build a `WriteAt` argument.
pub fn write_at_arg(index: i64, items: Vec<Value>) -> Value {
    Value::record([("index", Value::Int(index)), ("items", Value::list(items))])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> MapFileEject {
        MapFileEject::with_records((0..5).map(Value::Int).collect())
    }

    #[test]
    fn read_at_slices() {
        let f = seeded();
        let got = f.read_at(&read_at_arg(1, 2)).unwrap();
        assert_eq!(
            got,
            Value::list(vec![Value::Int(1), Value::Int(2)])
        );
        // Reads past the end are truncated, not errors.
        let tail = f.read_at(&read_at_arg(4, 10)).unwrap();
        assert_eq!(tail.as_list().unwrap().len(), 1);
    }

    #[test]
    fn read_at_rejects_bad_indices() {
        let f = seeded();
        assert!(f.read_at(&read_at_arg(-1, 1)).is_err());
        assert!(f.read_at(&read_at_arg(6, 1)).is_err());
    }

    #[test]
    fn write_at_overwrites_and_extends() {
        let mut f = seeded();
        f.write_at(&write_at_arg(3, vec![Value::Int(30), Value::Int(40), Value::Int(50)]))
            .unwrap();
        assert_eq!(f.records.len(), 6);
        assert_eq!(f.records[3], Value::Int(30));
        assert_eq!(f.records[5], Value::Int(50));
        assert!(f.write_at(&write_at_arg(100, vec![Value::Int(0)])).is_err());
    }

    #[test]
    fn passive_roundtrip() {
        let f = seeded();
        let rep = f.passive_representation().unwrap();
        let rebuilt = MapFileEject::from_passive(Some(rep)).unwrap();
        assert_eq!(rebuilt.type_name(), MAP_FILE_TYPE);
    }
}
