//! Files as Ejects.
//!
//! "In Eden, files are Ejects: they are active rather than passive
//! entities. An Eden file would itself be able to respond to open, close,
//! read and write invocations rather than being a mere data structure acted
//! upon by operating system primitives. Once a file has been written, the
//! data is committed to stable storage by Checkpointing" (§2).
//!
//! A [`FileEject`] holds a sequence of records. Reading follows the Eden
//! pattern: `Open` mints a fresh [`FileReaderEject`] — a private stream
//! over a snapshot of the contents — and returns its UID (a capability, as
//! in §7's `NewStream`). Writing follows §4's read-only idiom: the
//! `WriteFrom` invocation hands the file a *source* UID, and "a file opened
//! for output would immediately issue a Read invocation, and would continue
//! reading until it received an end of file indicator."

use eden_core::op::ops;
use eden_core::{EdenError, Result, Uid, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, ReplyHandle};
use eden_transput::protocol::{Batch, GetChannelRequest, TransferRequest};
use eden_transput::ChannelTable;

/// The Eden type name of [`FileEject`] (used for reactivation).
pub const FILE_TYPE: &str = "EdenFile";

/// How `WriteFrom` combines new data with existing contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Replace the contents.
    #[default]
    Replace,
    /// Append to the contents.
    Append,
}

/// A file: a checkpointable sequence of records.
#[derive(Debug)]
pub struct FileEject {
    records: Vec<Value>,
    /// Bumped on every successful `WriteFrom`.
    generation: i64,
    /// The parked reply of an in-progress `WriteFrom`.
    pending_write: Option<ReplyHandle>,
}

impl FileEject {
    /// An empty file.
    pub fn new() -> FileEject {
        FileEject::with_records(Vec::new())
    }

    /// A file with initial contents.
    pub fn with_records(records: Vec<Value>) -> FileEject {
        FileEject {
            records,
            generation: 0,
            pending_write: None,
        }
    }

    /// A text file from lines.
    pub fn from_lines<I, S>(lines: I) -> FileEject
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FileEject::with_records(lines.into_iter().map(|l| Value::from(l.into())).collect())
    }

    /// Reconstruct from a passive representation (the reactivation
    /// constructor registered under [`FILE_TYPE`]).
    pub fn from_passive(rep: Option<Value>) -> Result<Box<dyn EjectBehavior>> {
        let file = match rep {
            None => FileEject::new(),
            Some(v) => FileEject {
                records: v.field("records")?.as_list()?.to_vec(),
                generation: v.field("generation")?.as_int()?,
                pending_write: None,
            },
        };
        Ok(Box::new(file))
    }

    /// Register the file type's reactivation constructor on a kernel.
    pub fn register(kernel: &eden_kernel::Kernel) {
        kernel.register_type(FILE_TYPE, FileEject::from_passive);
    }
}

impl Default for FileEject {
    fn default() -> Self {
        FileEject::new()
    }
}

impl EjectBehavior for FileEject {
    fn type_name(&self) -> &'static str {
        FILE_TYPE
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            // Open for reading: mint a private reader Eject over a
            // snapshot and return its UID (a stream capability).
            ops::OPEN => {
                let reader = FileReaderEject::new(self.records.clone());
                match spawn_sibling(ctx, Box::new(reader)) {
                    Ok(uid) => reply.reply(Ok(Value::Uid(uid))),
                    Err(e) => reply.reply(Err(e)),
                }
            }
            // Open a *durable* read cursor: the reader checkpoints its
            // position on every Transfer, so a crash (or whole-system
            // restart) resumes the stream where it left off instead of
            // disappearing like the plain reader.
            "OpenDurable" => {
                let reader = DurableReaderEject::new(self.records.clone(), 0);
                match spawn_sibling(ctx, Box::new(reader)) {
                    Ok(uid) => reply.reply(Ok(Value::Uid(uid))),
                    Err(e) => reply.reply(Err(e)),
                }
            }
            // Open for writing, read-only style: pull everything from the
            // given source, then commit by checkpointing. The reply to
            // WriteFrom is deferred until the data is durable.
            ops::WRITE_FROM => {
                if self.pending_write.is_some() {
                    reply.reply(Err(EdenError::Application(
                        "a WriteFrom is already in progress".into(),
                    )));
                    return;
                }
                let source = match inv.arg.field("source").and_then(Value::as_uid) {
                    Ok(u) => u,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                let mode = match inv.arg.field_opt("mode").map(Value::as_str) {
                    Some(Ok("append")) => WriteMode::Append,
                    Some(Ok("replace")) | None => WriteMode::Replace,
                    _ => {
                        reply.reply(Err(EdenError::BadParameter(
                            "mode must be \"replace\" or \"append\"".into(),
                        )));
                        return;
                    }
                };
                reply.mark_deferred();
                // "A file opened for output would immediately issue a Read
                // invocation": the pull loop runs in a worker; the records
                // come back as one internal event.
                ctx.spawn_process("write-from", move |pctx| {
                    let mut gathered = Vec::new();
                    let mut failure: Option<EdenError> = None;
                    loop {
                        let req = TransferRequest::primary(64);
                        let pending = pctx.invoke(source, ops::TRANSFER, req.to_value());
                        match pctx.wait_or_stop(pending).and_then(Batch::from_value) {
                            Ok(batch) => {
                                gathered.extend(batch.items);
                                if batch.end {
                                    break;
                                }
                            }
                            Err(e) => {
                                failure = Some(e);
                                break;
                            }
                        }
                    }
                    let event = Value::record([
                        (
                            "kind",
                            Value::str(if failure.is_some() { "failed" } else { "written" }),
                        ),
                        (
                            "mode",
                            Value::str(match mode {
                                WriteMode::Replace => "replace",
                                WriteMode::Append => "append",
                            }),
                        ),
                        ("items", Value::list(gathered)),
                        (
                            "error",
                            Value::str(failure.map(|e| e.to_string()).unwrap_or_default()),
                        ),
                    ]);
                    let _ = pctx.post_internal(event);
                });
                // The parked reply is stored by pushing it into pending
                // writes; see `internal`.
                self.pending_write = Some(reply);
            }
            "Length" => reply.reply(Ok(Value::Int(self.records.len() as i64))),
            "Generation" => reply.reply(Ok(Value::Int(self.generation))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }

    fn internal(&mut self, ctx: &EjectContext, event: Value) {
        let kind = match event.field("kind").and_then(|v| v.as_str().map(str::to_owned)) {
            Ok(k) => k,
            Err(_) => return,
        };
        let reply = self.pending_write.take();
        if kind == "failed" {
            let msg = event
                .field("error")
                .and_then(|v| v.as_str().map(str::to_owned))
                .unwrap_or_default();
            if let Some(reply) = reply {
                reply.reply(Err(EdenError::Application(format!(
                    "WriteFrom source failed: {msg}"
                ))));
            }
            return;
        }
        let items = match event.field("items").cloned().and_then(Value::into_list) {
            Ok(items) => items,
            Err(_) => return,
        };
        let append = matches!(event.field_opt("mode").and_then(|m| m.as_str().ok()), Some("append"));
        if append {
            self.records.extend(items);
        } else {
            self.records = items;
        }
        self.generation += 1;
        // "Once a file has been written, the data is committed to stable
        // storage by Checkpointing" (§2).
        let result = match self.passive_representation() {
            Some(rep) => ctx.checkpoint(&rep).map(|()| Value::Int(self.records.len() as i64)),
            None => Err(EdenError::Application("no representation".into())),
        };
        if let Some(reply) = reply {
            reply.reply(result);
        }
    }

    fn passive_representation(&self) -> Option<Value> {
        Some(Value::record([
            ("records", Value::list(self.records.clone())),
            ("generation", Value::Int(self.generation)),
        ]))
    }
}

/// A private, disposable stream over a snapshot of a file's contents.
///
/// Like §7's `UnixFile` Eject it deactivates itself when closed — or when
/// its data is exhausted — "and, since it has never Checkpointed,
/// disappears."
#[derive(Debug)]
pub struct FileReaderEject {
    records: std::collections::VecDeque<Value>,
    channels: ChannelTable,
}

impl FileReaderEject {
    /// A reader over `records`.
    pub fn new(records: Vec<Value>) -> FileReaderEject {
        FileReaderEject {
            records: records.into(),
            channels: ChannelTable::single_output(),
        }
    }
}

impl EjectBehavior for FileReaderEject {
    fn type_name(&self) -> &'static str {
        "FileReader"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::TRANSFER => {
                let req = match TransferRequest::from_value(&inv.arg) {
                    Ok(r) => r,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                if let Err(e) = self.channels.index_of(req.channel) {
                    reply.reply(Err(e));
                    return;
                }
                let n = req.max.min(self.records.len());
                let items: Vec<Value> = self.records.drain(..n).collect();
                let end = self.records.is_empty();
                reply.reply(Ok(Batch { items, end }.to_value()));
                if end {
                    // Exhausted: vanish quietly.
                    ctx.request_deactivate();
                }
            }
            ops::GET_CHANNEL => {
                let result = GetChannelRequest::from_value(&inv.arg)
                    .and_then(|req| self.channels.id_of(&req.name))
                    .map(Value::from);
                reply.reply(result);
            }
            ops::CLOSE => {
                reply.reply(Ok(Value::Unit));
                ctx.request_deactivate();
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// The Eden type name of [`DurableReaderEject`].
pub const DURABLE_READER_TYPE: &str = "DurableReader";

/// A read cursor that survives crashes: its passive representation is the
/// remaining records and position, checkpointed after every `Transfer`.
/// The durable counterpart of [`FileReaderEject`].
#[derive(Debug)]
pub struct DurableReaderEject {
    records: Vec<Value>,
    pos: usize,
}

impl DurableReaderEject {
    /// A durable cursor over `records`, starting at `pos`.
    pub fn new(records: Vec<Value>, pos: usize) -> DurableReaderEject {
        DurableReaderEject { records, pos }
    }

    /// Reactivation constructor.
    pub fn from_passive(rep: Option<Value>) -> Result<Box<dyn EjectBehavior>> {
        let rep = rep.ok_or_else(|| {
            EdenError::CorruptCheckpoint("durable reader needs a representation".into())
        })?;
        Ok(Box::new(DurableReaderEject {
            records: rep.field("records")?.as_list()?.to_vec(),
            pos: rep.field("pos")?.as_int()?.max(0) as usize,
        }))
    }

    /// Register the reactivation constructor on a kernel.
    pub fn register(kernel: &eden_kernel::Kernel) {
        kernel.register_type(DURABLE_READER_TYPE, DurableReaderEject::from_passive);
    }
}

impl EjectBehavior for DurableReaderEject {
    fn type_name(&self) -> &'static str {
        DURABLE_READER_TYPE
    }

    fn activate(&mut self, ctx: &EjectContext) {
        // Establish durability from birth: without this first checkpoint a
        // crash before the first Transfer would destroy the cursor.
        if let Some(rep) = self.passive_representation() {
            let _ = ctx.checkpoint(&rep);
        }
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::TRANSFER => {
                let req = match TransferRequest::from_value(&inv.arg) {
                    Ok(r) => r,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                let end_pos = (self.pos + req.max).min(self.records.len());
                let items = self.records[self.pos..end_pos].to_vec();
                self.pos = end_pos;
                let end = self.pos >= self.records.len();
                // Persist the advanced cursor before replying: a crash
                // after the reply cannot re-serve these records.
                if let Some(rep) = self.passive_representation() {
                    let _ = ctx.checkpoint(&rep);
                }
                reply.reply(Ok(Batch { items, end }.to_value()));
            }
            "Position" => reply.reply(Ok(Value::Int(self.pos as i64))),
            ops::CLOSE => {
                reply.reply(Ok(Value::Unit));
                ctx.request_deactivate();
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }

    fn passive_representation(&self) -> Option<Value> {
        Some(Value::record([
            ("records", Value::list(self.records.clone())),
            ("pos", Value::Int(self.pos as i64)),
        ]))
    }
}

/// Spawn a sibling Eject on the same node as `ctx` (readers live with
/// their file).
fn spawn_sibling(ctx: &EjectContext, behavior: Box<dyn EjectBehavior>) -> Result<Uid> {
    match ctx.kernel() {
        Some(kernel) => kernel.spawn_on(ctx.node(), behavior),
        None => Err(EdenError::KernelShutdown),
    }
}
