//! The Eden filing system of §2 and §7: files, directories and the
//! bootstrap Unix-file-system Ejects — all active entities speaking the
//! stream protocol, not passive data structures.
//!
//! * [`FileEject`] — a checkpointable sequence of records; `Open` mints a
//!   disposable [`FileReaderEject`] stream, `WriteFrom` pulls new contents
//!   from any source Eject and commits them by checkpointing.
//! * [`DirectoryEject`] — `Lookup` / `AddEntry` / `DeleteEntry` / `List`;
//!   listing output is streamed via `Transfer`, so a directory *is* a
//!   source (§4).
//! * [`DirConcatenatorEject`] — PATH-style lookup across directories,
//!   indistinguishable from a plain directory (behavioural typing, §2).
//! * [`UnixFsEject`] — §7's bootstrap: `NewStream` and `UseStream` over a
//!   pluggable [`HostFs`] (hermetic [`MemFs`], or [`RealFs`] on disk).
//!
//! Because files and filters are both just Ejects answering `Transfer`,
//! "there is no distinction between input redirection from a file and from
//! a program" (§4) — the integration tests pipe files through filters and
//! filters into files with the same builder calls.


pub mod directory;
pub mod file;
pub mod hostfs;
pub mod mapfile;
pub mod unixfs;

pub use directory::{DirConcatenatorEject, DirectoryEject, DIRECTORY_TYPE};
pub use file::{
    DurableReaderEject, FileEject, FileReaderEject, WriteMode, DURABLE_READER_TYPE, FILE_TYPE,
};
pub use hostfs::{HostFs, HostFsHandle, MemFs, RealFs};
pub use mapfile::{read_at_arg, write_at_arg, MapFileEject, MAP_FILE_TYPE};
pub use unixfs::{new_stream_arg, use_stream_arg, UnixFsEject};

use eden_core::{Result, Uid, Value};
use eden_kernel::Kernel;

/// Register every checkpointable filing-system type on a kernel. Call this
/// on any kernel that must reactivate files or directories from passive
/// representations (including after a simulated whole-system restart).
pub fn register_fs_types(kernel: &Kernel) {
    FileEject::register(kernel);
    DirectoryEject::register(kernel);
    MapFileEject::register(kernel);
    DurableReaderEject::register(kernel);
}

/// Convenience: look `name` up in a directory Eject.
pub fn lookup(kernel: &Kernel, directory: Uid, name: &str) -> Result<Uid> {
    kernel
        .invoke(
            directory,
            eden_core::op::ops::LOOKUP,
            Value::record([("name", Value::str(name))]),
        ).wait()?
        .as_uid()
}

/// Convenience: add a `(name, uid)` entry to a directory Eject.
pub fn add_entry(kernel: &Kernel, directory: Uid, name: &str, uid: Uid) -> Result<()> {
    kernel
        .invoke(
            directory,
            eden_core::op::ops::ADD_ENTRY,
            Value::record([("name", Value::str(name)), ("uid", Value::Uid(uid))]),
        ).wait()
        .map(|_| ())
}

/// Rename an entry within one directory (atomic — single-Eject dispatch).
pub fn rename_entry(kernel: &Kernel, directory: Uid, from: &str, to: &str) -> Result<()> {
    kernel
        .invoke(
            directory,
            "Rename",
            Value::record([("from", Value::str(from)), ("to", Value::str(to))]),
        ).wait()
        .map(|_| ())
}

/// Move an entry from one directory Eject to another.
///
/// This is the §7 "atomic updates" subset across *two* Ejects, done the
/// only way two independent Ejects allow without a transaction protocol:
/// optimistically, with compensation. The entry is inserted at the
/// destination first, then removed from the source; a failure at the
/// second step compensates by removing the fresh destination entry. The
/// non-atomic window is therefore *duplication* (visible in both),
/// never *loss* — the safe side for a filing system.
pub fn move_entry(
    kernel: &Kernel,
    from_dir: Uid,
    name: &str,
    to_dir: Uid,
    new_name: &str,
) -> Result<()> {
    if from_dir == to_dir {
        return rename_entry(kernel, from_dir, name, new_name);
    }
    let uid = lookup(kernel, from_dir, name)?;
    add_entry(kernel, to_dir, new_name, uid)?;
    let removed = kernel.invoke(
        from_dir,
        eden_core::op::ops::DELETE_ENTRY,
        Value::record([("name", Value::str(name))]),
    ).wait();
    match removed {
        Ok(_) => Ok(()),
        Err(e) => {
            // Compensate: undo the destination insert so the move either
            // happened or it did not.
            let _ = kernel.invoke(
                to_dir,
                eden_core::op::ops::DELETE_ENTRY,
                Value::record([("name", Value::str(new_name))]),
            ).wait();
            Err(e)
        }
    }
}
