//! The host filing system under the bootstrap Ejects of §7.
//!
//! "Currently most data of interest is in the Unix file system, so a
//! bootstrap Eden transput system has been constructed." The paper's
//! substrate was a real Unix; ours is the [`HostFs`] trait with two
//! implementations: a hermetic in-memory [`MemFs`] (the default everywhere
//! in tests and benchmarks) and [`RealFs`] over `std::fs`, rooted in a
//! directory, for users who want actual files.

use std::collections::BTreeMap;
use std::path::{Component, Path, PathBuf};
use std::sync::Arc;

use eden_core::{EdenError, Result};
use parking_lot::Mutex;

/// A minimal byte-file interface: exactly what the bootstrap Ejects need.
pub trait HostFs: Send + Sync + 'static {
    /// Read the whole file at `path`.
    fn read(&self, path: &str) -> Result<Vec<u8>>;
    /// Create or replace the file at `path`.
    fn write(&self, path: &str, bytes: &[u8]) -> Result<()>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &str) -> bool;
    /// Paths of every file, sorted (diagnostics and tests).
    fn list(&self) -> Vec<String>;
    /// Remove the file at `path` (missing files are an error).
    fn remove(&self, path: &str) -> Result<()>;
}

/// A shared handle to a host filing system.
pub type HostFsHandle = Arc<dyn HostFs>;

/// An in-memory filing system.
#[derive(Default)]
#[derive(Debug)]
pub struct MemFs {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemFs {
    /// An empty in-memory filing system, ready to share.
    #[allow(clippy::new_ret_no_self)] // Deliberately returns the shared handle.
    pub fn new() -> HostFsHandle {
        Arc::new(MemFs::default())
    }

    /// A filing system pre-populated with text files.
    pub fn with_files<I, P, C>(files: I) -> HostFsHandle
    where
        I: IntoIterator<Item = (P, C)>,
        P: Into<String>,
        C: Into<Vec<u8>>,
    {
        let fs = MemFs::default();
        {
            let mut map = fs.files.lock();
            for (path, contents) in files {
                map.insert(path.into(), contents.into());
            }
        }
        Arc::new(fs)
    }
}

impl HostFs for MemFs {
    fn read(&self, path: &str) -> Result<Vec<u8>> {
        self.files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| EdenError::HostFs(format!("no such file: {path}")))
    }

    fn write(&self, path: &str, bytes: &[u8]) -> Result<()> {
        self.files.lock().insert(path.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.files.lock().contains_key(path)
    }

    fn list(&self) -> Vec<String> {
        self.files.lock().keys().cloned().collect()
    }

    fn remove(&self, path: &str) -> Result<()> {
        self.files
            .lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| EdenError::HostFs(format!("no such file: {path}")))
    }
}

/// A filing system over `std::fs`, confined to a root directory.
#[derive(Debug)]
pub struct RealFs {
    root: PathBuf,
}

impl RealFs {
    /// Use `root` as the filing-system root. The directory must exist.
    #[allow(clippy::new_ret_no_self)] // Deliberately returns the shared handle.
    pub fn new(root: impl Into<PathBuf>) -> Result<HostFsHandle> {
        let root = root.into();
        if !root.is_dir() {
            return Err(EdenError::HostFs(format!(
                "root is not a directory: {}",
                root.display()
            )));
        }
        Ok(Arc::new(RealFs { root }))
    }

    /// Resolve a relative path, rejecting traversal outside the root.
    fn resolve(&self, path: &str) -> Result<PathBuf> {
        let rel = Path::new(path);
        if rel.is_absolute()
            || rel
                .components()
                .any(|c| matches!(c, Component::ParentDir | Component::Prefix(_)))
        {
            return Err(EdenError::HostFs(format!(
                "path must be relative and traversal-free: {path}"
            )));
        }
        Ok(self.root.join(rel))
    }
}

impl HostFs for RealFs {
    fn read(&self, path: &str) -> Result<Vec<u8>> {
        let full = self.resolve(path)?;
        std::fs::read(&full).map_err(|e| EdenError::HostFs(format!("read {path}: {e}")))
    }

    fn write(&self, path: &str, bytes: &[u8]) -> Result<()> {
        let full = self.resolve(path)?;
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| EdenError::HostFs(format!("mkdir for {path}: {e}")))?;
        }
        std::fs::write(&full, bytes).map_err(|e| EdenError::HostFs(format!("write {path}: {e}")))
    }

    fn exists(&self, path: &str) -> bool {
        self.resolve(path).map(|p| p.is_file()).unwrap_or(false)
    }

    fn list(&self) -> Vec<String> {
        fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
            let entries = match std::fs::read_dir(dir) {
                Ok(e) => e,
                Err(_) => return,
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    walk(&path, root, out);
                } else if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().into_owned());
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out);
        out.sort();
        out
    }

    fn remove(&self, path: &str) -> Result<()> {
        let full = self.resolve(path)?;
        std::fs::remove_file(&full).map_err(|e| EdenError::HostFs(format!("remove {path}: {e}")))
    }
}

/// Split file bytes into text lines (used by the line-oriented Ejects).
pub fn bytes_to_lines(bytes: &[u8]) -> Vec<String> {
    if bytes.is_empty() {
        return Vec::new();
    }
    String::from_utf8_lossy(bytes)
        .lines()
        .map(str::to_owned)
        .collect()
}

/// Join text lines back into file bytes (trailing newline included).
pub fn lines_to_bytes<S: AsRef<str>>(lines: &[S]) -> Vec<u8> {
    let mut out = Vec::new();
    for line in lines {
        out.extend_from_slice(line.as_ref().as_bytes());
        out.push(b'\n');
    }
    out
}


impl std::fmt::Debug for dyn HostFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HostFs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_roundtrip() {
        let fs = MemFs::new();
        assert!(!fs.exists("a.txt"));
        fs.write("a.txt", b"hello").unwrap();
        assert!(fs.exists("a.txt"));
        assert_eq!(fs.read("a.txt").unwrap(), b"hello");
        assert_eq!(fs.list(), vec!["a.txt"]);
        fs.remove("a.txt").unwrap();
        assert!(!fs.exists("a.txt"));
    }

    #[test]
    fn memfs_missing_file_errors() {
        let fs = MemFs::new();
        assert!(matches!(fs.read("nope"), Err(EdenError::HostFs(_))));
        assert!(fs.remove("nope").is_err());
    }

    #[test]
    fn memfs_prepopulated() {
        let fs = MemFs::with_files([("x/y.txt", "line1\nline2\n")]);
        assert_eq!(bytes_to_lines(&fs.read("x/y.txt").unwrap()), vec!["line1", "line2"]);
    }

    #[test]
    fn realfs_confined_roundtrip() {
        let dir = std::env::temp_dir().join(format!("eden-fs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = RealFs::new(&dir).unwrap();
        fs.write("sub/file.txt", b"data").unwrap();
        assert_eq!(fs.read("sub/file.txt").unwrap(), b"data");
        assert!(fs.exists("sub/file.txt"));
        assert_eq!(fs.list(), vec!["sub/file.txt".to_owned()]);
        fs.remove("sub/file.txt").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn realfs_rejects_traversal() {
        let dir = std::env::temp_dir().join(format!("eden-fs-esc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = RealFs::new(&dir).unwrap();
        assert!(fs.read("../etc/passwd").is_err());
        assert!(fs.write("/abs.txt", b"x").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn line_helpers_roundtrip() {
        let lines = vec!["a", "b", "c"];
        assert_eq!(bytes_to_lines(&lines_to_bytes(&lines)), lines);
        assert!(bytes_to_lines(b"").is_empty());
    }
}
