//! The host filing system under the bootstrap Ejects of §7.
//!
//! The [`HostFs`] trait and its two implementations ([`MemFs`] in memory,
//! [`RealFs`] over `std::fs`) moved to `eden-core::hostfs` when the
//! durability plane made the kernel's stable store a second consumer of
//! the same I/O path; this module re-exports them so `eden_fs::hostfs`
//! callers keep working, and keeps the line-file helpers the bootstrap
//! Ejects use.

pub use eden_core::hostfs::{HostFs, HostFsHandle, MemFs, RealFs};

/// Split file bytes into text lines (used by the line-oriented Ejects).
pub fn bytes_to_lines(bytes: &[u8]) -> Vec<String> {
    if bytes.is_empty() {
        return Vec::new();
    }
    String::from_utf8_lossy(bytes)
        .lines()
        .map(str::to_owned)
        .collect()
}

/// Join text lines back into file bytes (trailing newline included).
pub fn lines_to_bytes<S: AsRef<str>>(lines: &[S]) -> Vec<u8> {
    let mut out = Vec::new();
    for line in lines {
        out.extend_from_slice(line.as_ref().as_bytes());
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_helpers_roundtrip() {
        let lines = vec!["a", "b", "c"];
        assert_eq!(bytes_to_lines(&lines_to_bytes(&lines)), lines);
        assert!(bytes_to_lines(b"").is_empty());
    }

    #[test]
    fn reexported_memfs_still_constructs() {
        let fs = MemFs::new();
        fs.write("a", b"1").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"1");
    }
}
