//! Filing-system behaviour across the kernel: files as streams, WriteFrom,
//! checkpoint durability, directories, concatenators, and the §7 bootstrap.

use std::time::Duration;

use eden_core::op::ops;
use eden_core::{EdenError, Value};
use eden_fs::{
    add_entry, lookup, new_stream_arg, register_fs_types, use_stream_arg, DirConcatenatorEject,
    DirectoryEject, FileEject, MemFs, UnixFsEject,
};
use eden_kernel::{EjectState, Kernel, KernelConfig, StableStore};
use eden_transput::collector::Collector;
use eden_transput::protocol::{Batch, TransferRequest};
use eden_transput::sink::SinkEject;
use eden_transput::source::{SourceEject, VecSource};

fn read_stream_fully(kernel: &Kernel, stream: eden_core::Uid) -> Vec<Value> {
    let collector = Collector::new();
    kernel
        .spawn(Box::new(SinkEject::new(stream, 8, collector.clone())))
        .unwrap();
    collector.wait_done(Duration::from_secs(10)).unwrap()
}

#[test]
fn open_mints_private_reader_streams() {
    let kernel = Kernel::new();
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(["one", "two", "three"])))
        .unwrap();
    // Two independent opens read the full contents independently.
    let r1 = kernel
        .invoke(file, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    let r2 = kernel
        .invoke(file, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    assert_ne!(r1, r2, "each Open mints a fresh stream capability");
    let a = read_stream_fully(&kernel, r1);
    let b = read_stream_fully(&kernel, r2);
    assert_eq!(a, b);
    assert_eq!(a.len(), 3);
    kernel.shutdown();
}

#[test]
fn exhausted_reader_disappears() {
    let kernel = Kernel::new();
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(["only"])))
        .unwrap();
    let reader = kernel
        .invoke(file, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    let batch = Batch::from_value(
        kernel
            .invoke(reader, ops::TRANSFER, TransferRequest::primary(8).to_value()).wait()
            .unwrap(),
    )
    .unwrap();
    assert!(batch.end);
    // The reader deactivates itself and, never having checkpointed,
    // disappears (§7 pattern).
    for _ in 0..200 {
        if kernel.eject_state(reader).is_none() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(kernel.eject_state(reader), None);
    kernel.shutdown();
}

#[test]
fn close_destroys_reader_early() {
    let kernel = Kernel::new();
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(["a", "b"])))
        .unwrap();
    let reader = kernel
        .invoke(file, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    kernel.invoke(reader, ops::CLOSE, Value::Unit).wait().unwrap();
    for _ in 0..200 {
        if kernel.eject_state(reader).is_none() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(kernel.eject_state(reader), None);
    kernel.shutdown();
}

#[test]
fn write_from_pulls_source_and_checkpoints() {
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    let file = kernel.spawn(Box::new(FileEject::new())).unwrap();
    let source = kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::from_lines([
            "alpha", "beta",
        ])))))
        .unwrap();
    let written = kernel
        .invoke(
            file,
            ops::WRITE_FROM,
            Value::record([("source", Value::Uid(source))]),
        ).wait()
        .unwrap();
    assert_eq!(written, Value::Int(2));
    // The write checkpointed: crash the file and read it back.
    kernel.crash(file).unwrap();
    assert_eq!(kernel.eject_state(file), Some(EjectState::Passive));
    let reader = kernel
        .invoke(file, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    let contents = read_stream_fully(&kernel, reader);
    assert_eq!(contents, vec![Value::str("alpha"), Value::str("beta")]);
    kernel.shutdown();
}

#[test]
fn write_from_append_mode() {
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(["first"])))
        .unwrap();
    let source = kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::from_lines([
            "second",
        ])))))
        .unwrap();
    kernel
        .invoke(
            file,
            ops::WRITE_FROM,
            Value::record([
                ("source", Value::Uid(source)),
                ("mode", Value::str("append")),
            ]),
        ).wait()
        .unwrap();
    let len = kernel.invoke(file, "Length", Value::Unit).wait().unwrap();
    assert_eq!(len, Value::Int(2));
    let generation = kernel.invoke(file, "Generation", Value::Unit).wait().unwrap();
    assert_eq!(generation, Value::Int(1));
    kernel.shutdown();
}

#[test]
fn file_survives_whole_system_restart() {
    let store = StableStore::new();
    let file;
    {
        let kernel = Kernel::with_stable_store(KernelConfig::default(), store.clone());
        register_fs_types(&kernel);
        file = kernel
            .spawn(Box::new(FileEject::from_lines(["durable"])))
            .unwrap();
        kernel.invoke(file, ops::CHECKPOINT, Value::Unit).wait().unwrap();
        kernel.shutdown();
    }
    let kernel2 = Kernel::with_stable_store(KernelConfig::default(), store);
    register_fs_types(&kernel2);
    let reader = kernel2
        .invoke(file, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    let contents = read_stream_fully(&kernel2, reader);
    assert_eq!(contents, vec![Value::str("durable")]);
    kernel2.shutdown();
}

#[test]
fn directory_crud_via_invocation() {
    let kernel = Kernel::new();
    let dir = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(["x"])))
        .unwrap();
    add_entry(&kernel, dir, "notes.txt", file).unwrap();
    assert_eq!(lookup(&kernel, dir, "notes.txt").unwrap(), file);
    assert!(matches!(
        lookup(&kernel, dir, "nope").unwrap_err(),
        EdenError::Application(_)
    ));
    kernel
        .invoke(
            dir,
            ops::DELETE_ENTRY,
            Value::record([("name", Value::str("notes.txt"))]),
        ).wait()
        .unwrap();
    assert!(lookup(&kernel, dir, "notes.txt").is_err());
    kernel.shutdown();
}

#[test]
fn directory_listing_is_a_stream() {
    // §2/§4: directories support the stream protocol; a sink can read a
    // directory listing exactly as it reads a file.
    let kernel = Kernel::new();
    let dir = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    for name in ["zulu", "alpha", "mike"] {
        add_entry(&kernel, dir, name, eden_core::Uid::fresh()).unwrap();
    }
    let count = kernel.invoke(dir, ops::LIST, Value::Unit).wait().unwrap();
    assert_eq!(count, Value::Int(3));
    let lines = read_stream_fully(&kernel, dir);
    assert_eq!(lines.len(), 3);
    let names: Vec<String> = lines
        .iter()
        .map(|l| l.as_str().unwrap().split_whitespace().next().unwrap().to_owned())
        .collect();
    assert_eq!(names, vec!["alpha", "mike", "zulu"]);
    kernel.shutdown();
}

#[test]
fn directory_survives_restart() {
    let store = StableStore::new();
    let dir;
    let file;
    {
        let kernel = Kernel::with_stable_store(KernelConfig::default(), store.clone());
        register_fs_types(&kernel);
        dir = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
        file = eden_core::Uid::fresh();
        add_entry(&kernel, dir, "kept", file).unwrap();
        kernel.invoke(dir, ops::CHECKPOINT, Value::Unit).wait().unwrap();
        kernel.shutdown();
    }
    let kernel2 = Kernel::with_stable_store(KernelConfig::default(), store);
    register_fs_types(&kernel2);
    assert_eq!(lookup(&kernel2, dir, "kept").unwrap(), file);
    kernel2.shutdown();
}

#[test]
fn rename_within_a_directory_is_atomic() {
    let kernel = Kernel::new();
    let dir = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let uid = eden_core::Uid::fresh();
    add_entry(&kernel, dir, "old", uid).unwrap();
    eden_fs::rename_entry(&kernel, dir, "old", "new").unwrap();
    assert!(lookup(&kernel, dir, "old").is_err());
    assert_eq!(lookup(&kernel, dir, "new").unwrap(), uid);
    // Collisions and missing sources fail cleanly.
    add_entry(&kernel, dir, "other", eden_core::Uid::fresh()).unwrap();
    assert!(eden_fs::rename_entry(&kernel, dir, "new", "other").is_err());
    assert!(eden_fs::rename_entry(&kernel, dir, "ghost", "x").is_err());
    // Self-rename is a no-op success.
    eden_fs::rename_entry(&kernel, dir, "new", "new").unwrap();
    assert_eq!(lookup(&kernel, dir, "new").unwrap(), uid);
    kernel.shutdown();
}

#[test]
fn move_entry_across_directories() {
    let kernel = Kernel::new();
    let a = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let b = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let uid = eden_core::Uid::fresh();
    add_entry(&kernel, a, "doc", uid).unwrap();
    eden_fs::move_entry(&kernel, a, "doc", b, "doc-v2").unwrap();
    assert!(lookup(&kernel, a, "doc").is_err());
    assert_eq!(lookup(&kernel, b, "doc-v2").unwrap(), uid);
    kernel.shutdown();
}

#[test]
fn move_entry_compensates_on_failure() {
    // Crash the source directory between the destination insert and the
    // source delete: the move must compensate, leaving the destination
    // clean (the entry is never lost, and after compensation never
    // duplicated).
    let kernel = Kernel::new();
    let a = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let b = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let uid = eden_core::Uid::fresh();
    add_entry(&kernel, a, "doc", uid).unwrap();
    // Simulate the window: insert at the destination, then kill A before
    // the delete (directories don't checkpoint here, so A's delete fails
    // with NoSuchEject). We reproduce move_entry's steps directly since
    // the fault window is internal to it.
    add_entry(&kernel, b, "doc", uid).unwrap();
    kernel.crash(a).unwrap();
    let removed = kernel.invoke(
        a,
        ops::DELETE_ENTRY,
        Value::record([("name", Value::str("doc"))]),
    ).wait();
    assert!(removed.is_err());
    // Compensation path: remove from B again.
    kernel
        .invoke(
            b,
            ops::DELETE_ENTRY,
            Value::record([("name", Value::str("doc"))]),
        ).wait()
        .unwrap();
    assert!(lookup(&kernel, b, "doc").is_err());
    kernel.shutdown();
}

#[test]
fn kernel_lists_ejects_with_types() {
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    let dir = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(["x"])))
        .unwrap();
    kernel.invoke(file, ops::CHECKPOINT, Value::Unit).wait().unwrap();
    kernel.invoke(file, ops::DEACTIVATE, Value::Unit).wait().unwrap();
    for _ in 0..200 {
        if kernel.eject_state(file) == Some(EjectState::Passive) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let rows = kernel.list_ejects();
    assert_eq!(rows.len(), 2);
    let dir_row = rows.iter().find(|r| r.uid == dir).unwrap();
    assert_eq!(dir_row.state, EjectState::Active);
    assert_eq!(dir_row.type_name, "EdenDirectory");
    let file_row = rows.iter().find(|r| r.uid == file).unwrap();
    assert_eq!(file_row.state, EjectState::Passive);
    assert_eq!(file_row.type_name, "EdenFile");
    kernel.shutdown();
}

#[test]
fn concatenator_searches_in_order() {
    let kernel = Kernel::new();
    let d1 = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let d2 = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let only_in_d2 = eden_core::Uid::fresh();
    let in_both_d1 = eden_core::Uid::fresh();
    let in_both_d2 = eden_core::Uid::fresh();
    add_entry(&kernel, d2, "late", only_in_d2).unwrap();
    add_entry(&kernel, d1, "both", in_both_d1).unwrap();
    add_entry(&kernel, d2, "both", in_both_d2).unwrap();
    let path = kernel
        .spawn(Box::new(DirConcatenatorEject::new(vec![d1, d2])))
        .unwrap();
    // Found in the second directory.
    assert_eq!(lookup(&kernel, path, "late").unwrap(), only_in_d2);
    // First directory shadows the second (PATH semantics).
    assert_eq!(lookup(&kernel, path, "both").unwrap(), in_both_d1);
    // Missing everywhere.
    assert!(lookup(&kernel, path, "nowhere").is_err());
    kernel.shutdown();
}

#[test]
fn concatenator_is_behaviourally_a_directory() {
    // §2: any Eject answering Lookup correctly *is* a directory to its
    // clients. The same helper works on both.
    let kernel = Kernel::new();
    let real = kernel.spawn(Box::new(DirectoryEject::new())).unwrap();
    let uid = eden_core::Uid::fresh();
    add_entry(&kernel, real, "entry", uid).unwrap();
    let concat = kernel
        .spawn(Box::new(DirConcatenatorEject::new(vec![real])))
        .unwrap();
    assert_eq!(lookup(&kernel, concat, "entry").unwrap(), uid);
    kernel.shutdown();
}

#[test]
fn unixfs_new_stream_reads_host_file() {
    let fs = MemFs::with_files([("motd", "welcome\nto eden\n")]);
    let kernel = Kernel::new();
    let ufs = kernel.spawn(Box::new(UnixFsEject::new(fs))).unwrap();
    let stream = kernel
        .invoke(ufs, ops::NEW_STREAM, new_stream_arg("motd")).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    let lines = read_stream_fully(&kernel, stream);
    assert_eq!(lines, vec![Value::str("welcome"), Value::str("to eden")]);
    kernel.shutdown();
}

#[test]
fn unixfs_new_stream_missing_file_errors() {
    let kernel = Kernel::new();
    let ufs = kernel.spawn(Box::new(UnixFsEject::new(MemFs::new()))).unwrap();
    let err = kernel
        .invoke(ufs, ops::NEW_STREAM, new_stream_arg("ghost")).wait()
        .unwrap_err();
    assert!(matches!(err, EdenError::HostFs(_)));
    kernel.shutdown();
}

#[test]
fn unixfs_use_stream_writes_host_file() {
    let fs = MemFs::new();
    let kernel = Kernel::new();
    let ufs = kernel
        .spawn(Box::new(UnixFsEject::new(fs.clone())))
        .unwrap();
    let source = kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::from_lines([
            "out line 1",
            "out line 2",
        ])))))
        .unwrap();
    let written = kernel
        .invoke(ufs, ops::USE_STREAM, use_stream_arg("result.txt", source)).wait()
        .unwrap();
    assert_eq!(written, Value::Int(2));
    assert_eq!(
        String::from_utf8(fs.read("result.txt").unwrap()).unwrap(),
        "out line 1\nout line 2\n"
    );
    kernel.shutdown();
}

#[test]
fn unixfs_roundtrip_copy() {
    // cp via Eden: NewStream("a") piped into UseStream("b").
    let fs = MemFs::with_files([("a", "copy me\nexactly\n")]);
    let kernel = Kernel::new();
    let ufs = kernel
        .spawn(Box::new(UnixFsEject::new(fs.clone())))
        .unwrap();
    let stream = kernel
        .invoke(ufs, ops::NEW_STREAM, new_stream_arg("a")).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    kernel
        .invoke(ufs, ops::USE_STREAM, use_stream_arg("b", stream)).wait()
        .unwrap();
    assert_eq!(fs.read("a").unwrap(), fs.read("b").unwrap());
    kernel.shutdown();
}

#[test]
fn file_and_program_are_interchangeable_sources() {
    // §4: "Since files are active entities, there is no distinction
    // between input redirection from a file and from a program."
    let kernel = Kernel::new();
    let file = kernel
        .spawn(Box::new(FileEject::from_lines(["same", "stream"])))
        .unwrap();
    let file_reader = kernel
        .invoke(file, ops::OPEN, Value::Unit).wait()
        .unwrap()
        .as_uid()
        .unwrap();
    let program = kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::from_lines([
            "same", "stream",
        ])))))
        .unwrap();
    let from_file = read_stream_fully(&kernel, file_reader);
    let from_program = read_stream_fully(&kernel, program);
    assert_eq!(from_file, from_program);
    kernel.shutdown();
}
