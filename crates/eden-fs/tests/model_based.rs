//! Model-based tests: the directory Eject against a `BTreeMap`, and the
//! map-file Eject against a `Vec` — random operation sequences must agree
//! with the obvious reference model at every step.

use std::collections::BTreeMap;

use eden_core::op::ops;
use eden_core::{Uid, Value};
use eden_fs::{mapfile, DirectoryEject, MapFileEject};
use eden_kernel::Kernel;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum DirOp {
    Add(u8),
    Delete(u8),
    Lookup(u8),
    Count,
}

fn dir_ops() -> impl Strategy<Value = Vec<DirOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..12).prop_map(DirOp::Add),
            (0u8..12).prop_map(DirOp::Delete),
            (0u8..12).prop_map(DirOp::Lookup),
            Just(DirOp::Count),
        ],
        1..50,
    )
}

fn name_of(k: u8) -> String {
    format!("name-{k}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn directory_agrees_with_btreemap(ops in dir_ops()) {
        let kernel = Kernel::new();
        let dir = kernel.spawn(Box::new(DirectoryEject::new())).expect("spawn");
        let mut model: BTreeMap<String, Uid> = BTreeMap::new();
        for op in ops {
            match op {
                DirOp::Add(k) => {
                    let name = name_of(k);
                    let uid = Uid::fresh();
                    let got = kernel.invoke(
                        dir,
                        ops::ADD_ENTRY,
                        Value::record([("name", Value::str(name.clone())), ("uid", Value::Uid(uid))]),
                    ).wait();
                    if let std::collections::btree_map::Entry::Vacant(slot) = model.entry(name)
                    {
                        prop_assert!(got.is_ok());
                        slot.insert(uid);
                    } else {
                        prop_assert!(got.is_err(), "duplicate add must fail");
                    }
                }
                DirOp::Delete(k) => {
                    let name = name_of(k);
                    let got = kernel.invoke(
                        dir,
                        ops::DELETE_ENTRY,
                        Value::record([("name", Value::str(name.clone()))]),
                    ).wait();
                    prop_assert_eq!(got.is_ok(), model.remove(&name).is_some());
                }
                DirOp::Lookup(k) => {
                    let name = name_of(k);
                    let got = kernel.invoke(
                        dir,
                        ops::LOOKUP,
                        Value::record([("name", Value::str(name.clone()))]),
                    ).wait();
                    match model.get(&name) {
                        Some(uid) => prop_assert_eq!(got.expect("hit").as_uid().expect("uid"), *uid),
                        None => prop_assert!(got.is_err()),
                    }
                }
                DirOp::Count => {
                    let got = kernel.invoke(dir, "Count", Value::Unit).wait().expect("count");
                    prop_assert_eq!(got, Value::Int(model.len() as i64));
                }
            }
        }
        // Final listing matches the model's sorted names.
        let count = kernel.invoke(dir, ops::LIST, Value::Unit).wait().expect("list");
        prop_assert_eq!(count, Value::Int(model.len() as i64));
        kernel.shutdown();
    }
}

#[derive(Debug, Clone)]
enum MapOp {
    ReadAt { index: u8, count: u8 },
    WriteAt { index: u8, len: u8 },
    Size,
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..20, 0u8..6).prop_map(|(index, count)| MapOp::ReadAt { index, count }),
            (0u8..20, 1u8..6).prop_map(|(index, len)| MapOp::WriteAt { index, len }),
            Just(MapOp::Size),
        ],
        1..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mapfile_agrees_with_vec(ops in map_ops()) {
        let kernel = Kernel::new();
        let file = kernel.spawn(Box::new(MapFileEject::new())).expect("spawn");
        let mut model: Vec<Value> = Vec::new();
        let mut next_mark: i64 = 0;
        for op in ops {
            match op {
                MapOp::ReadAt { index, count } => {
                    let got = kernel.invoke(
                        file,
                        "ReadAt",
                        mapfile::read_at_arg(index as i64, count as i64),
                    ).wait();
                    let start = index as usize;
                    if start > model.len() {
                        prop_assert!(got.is_err());
                    } else {
                        let end = (start + count as usize).min(model.len());
                        let read = got.expect("read");
                        prop_assert_eq!(read.as_list().expect("list"), &model[start..end]);
                    }
                }
                MapOp::WriteAt { index, len } => {
                    let items: Vec<Value> = (0..len as i64)
                        .map(|i| Value::Int(next_mark + i))
                        .collect();
                    next_mark += len as i64;
                    let got = kernel.invoke(
                        file,
                        "WriteAt",
                        mapfile::write_at_arg(index as i64, items.clone()),
                    ).wait();
                    let start = index as usize;
                    if start > model.len() {
                        prop_assert!(got.is_err());
                    } else {
                        prop_assert!(got.is_ok());
                        let end = start + items.len();
                        if end > model.len() {
                            model.resize(end, Value::Unit);
                        }
                        model[start..end].clone_from_slice(&items);
                    }
                }
                MapOp::Size => {
                    let got = kernel.invoke(file, "Size", Value::Unit).wait().expect("size");
                    prop_assert_eq!(got, Value::Int(model.len() as i64));
                }
            }
        }
        // And the stream view agrees with the final model state.
        let reader = kernel
            .invoke(file, ops::OPEN, Value::Unit).wait()
            .expect("open")
            .as_uid()
            .expect("uid");
        let mut streamed = Vec::new();
        loop {
            let batch = eden_transput::protocol::Batch::from_value(
                kernel
                    .invoke(
                        reader,
                        ops::TRANSFER,
                        eden_transput::protocol::TransferRequest::primary(7).to_value(),
                    ).wait()
                    .expect("transfer"),
            )
            .expect("batch");
            streamed.extend(batch.items);
            if batch.end {
                break;
            }
        }
        prop_assert_eq!(streamed, model);
        kernel.shutdown();
    }
}
