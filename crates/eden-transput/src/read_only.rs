//! The "read only" discipline: filters that perform **active input** and
//! **passive output** (§4).
//!
//! A [`PullFilterEject`] knows the UID(s) of its input(s) — "one of
//! [the initialisation arguments] is the Unique Identifier of the Eject from
//! which it is to obtain its input" — but *not* where its output goes: "it
//! will be sent to whatever Eject requests it (by performing a Read)."
//!
//! Two execution modes reproduce §4's discussion of laziness:
//!
//! * **Lazy** (`read_ahead == 0`): "no computation need be done until the
//!   result is requested." The filter pulls upstream only while serving a
//!   `Transfer`, synchronously, on its coordinator. No data moves anywhere
//!   until a sink starts reading.
//! * **Read-ahead** (`read_ahead > 0`): "each Eject in a pipeline should
//!   read some input and buffer-up some output, and then suspend processing
//!   pending a request for output. In this way all the Ejects in a pipeline
//!   can run concurrently." A worker process pre-pulls up to `read_ahead`
//!   records under a credit scheme; the coordinator transforms, buffers,
//!   and answers parked `Transfer`s (passive output via deferred replies).
//!
//! Fan-in is natural here (§5): the filter simply holds several input UIDs.
//! Fan-out requires the channel identifiers of §5, provided by the
//! [`ChannelTable`].

use std::collections::VecDeque;

use eden_core::op::ops;
use eden_core::{EdenError, Result, Uid, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, ReplyHandle, RouteCache};

use crate::batching::AdaptiveBatch;
use crate::channels::{ChannelPolicy, ChannelTable};
use crate::protocol::{Batch, ChannelId, GetChannelRequest, TransferRequest, OUTPUT_NAME};
use crate::transform::{Emitter, Transform};

/// How a multi-input filter interleaves its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanInMode {
    /// Read input 0 to its end, then input 1, and so on (like `cat a b`).
    #[default]
    Concatenate,
    /// Alternate batches across the inputs that have not yet ended.
    RoundRobin,
    /// Take one record from every input and emit the tuple
    /// `Value::List([r0, r1, ...])`; the stream ends when any input ends.
    /// This is the shape file-comparison filters consume.
    Zip,
}

/// One upstream connection: which Eject, which of its channels.
#[derive(Debug, Clone, Copy)]
pub struct InputPort {
    /// The source Eject.
    pub uid: Uid,
    /// Which of its output channels to read.
    pub channel: ChannelId,
}

impl InputPort {
    /// The common case: a source's primary channel.
    pub fn primary(uid: Uid) -> InputPort {
        InputPort {
            uid,
            channel: ChannelId::output(),
        }
    }
}

/// Tuning for a [`PullFilterEject`].
#[derive(Debug, Clone)]
pub struct PullFilterConfig {
    /// Records requested per upstream `Transfer`. With `batch_max == 0`
    /// this is the fixed batch size; otherwise it is the floor of an
    /// adaptive range.
    pub batch: usize,
    /// Target number of pre-pulled records (0 = lazy).
    pub read_ahead: usize,
    /// Input interleaving for multi-input filters.
    pub fan_in: FanInMode,
    /// How output channel identifiers are minted.
    pub policy: ChannelPolicy,
    /// Upper bound for adaptive batch sizing (see [`AdaptiveBatch`]).
    /// `0` (the default) keeps the batch fixed at `batch`.
    pub batch_max: usize,
}

impl Default for PullFilterConfig {
    fn default() -> Self {
        PullFilterConfig {
            batch: 16,
            read_ahead: 0,
            fan_in: FanInMode::Concatenate,
            policy: ChannelPolicy::Integer,
            batch_max: 0,
        }
    }
}

impl PullFilterConfig {
    /// The batch dial this configuration describes.
    pub(crate) fn adaptive_batch(&self) -> AdaptiveBatch {
        if self.batch_max > self.batch {
            AdaptiveBatch::new(self.batch, self.batch_max)
        } else {
            AdaptiveBatch::fixed(self.batch)
        }
    }
}

/// Pulls records from a set of input ports according to a [`FanInMode`].
#[derive(Debug)]
struct InputPuller {
    ports: Vec<InputPort>,
    ended: Vec<bool>,
    mode: FanInMode,
    next: usize,
    done: bool,
}

/// One step of input: records pulled, and whether the input is exhausted.
struct PullStep {
    items: Vec<Value>,
    done: bool,
}

impl InputPuller {
    fn new(ports: Vec<InputPort>, mode: FanInMode) -> InputPuller {
        let n = ports.len();
        InputPuller {
            ports,
            ended: vec![false; n],
            mode,
            next: 0,
            done: n == 0,
        }
    }

    /// Pull the next step of input. `transfer` performs one Transfer
    /// invocation and returns the decoded batch.
    fn pull_next<F>(&mut self, batch: usize, transfer: &mut F) -> Result<PullStep>
    where
        F: FnMut(Uid, TransferRequest) -> Result<Batch>,
    {
        if self.done {
            return Ok(PullStep {
                items: Vec::new(),
                done: true,
            });
        }
        match self.mode {
            FanInMode::Concatenate | FanInMode::RoundRobin => {
                // Find the next port that has not ended.
                let mut probed = 0;
                while self.ended[self.next % self.ports.len()] {
                    self.next += 1;
                    probed += 1;
                    debug_assert!(probed <= self.ports.len(), "done flag out of sync");
                }
                let idx = self.next % self.ports.len();
                let port = self.ports[idx];
                let b = transfer(
                    port.uid,
                    TransferRequest {
                        channel: port.channel,
                        max: batch,
                        pos: None,
                    },
                )?;
                if b.end {
                    self.ended[idx] = true;
                }
                if self.mode == FanInMode::RoundRobin {
                    self.next += 1;
                }
                self.done = self.ended.iter().all(|&e| e);
                Ok(PullStep {
                    items: b.items,
                    done: self.done,
                })
            }
            FanInMode::Zip => {
                let mut tuple = Vec::with_capacity(self.ports.len());
                let mut any_short = false;
                for port in &self.ports {
                    let b = transfer(
                        port.uid,
                        TransferRequest {
                            channel: port.channel,
                            max: 1,
                            pos: None,
                        },
                    )?;
                    if b.items.is_empty() {
                        any_short = true;
                    } else {
                        tuple.extend(b.items);
                    }
                    if b.end {
                        any_short = true;
                    }
                }
                if any_short {
                    self.done = true;
                    // A partial tuple (some input ended mid-row) is
                    // discarded: zip semantics.
                    let items = if tuple.len() == self.ports.len() {
                        vec![Value::list(tuple)]
                    } else {
                        Vec::new()
                    };
                    Ok(PullStep { items, done: true })
                } else {
                    Ok(PullStep {
                        items: vec![Value::list(tuple)],
                        done: false,
                    })
                }
            }
        }
    }
}

/// A parked `Transfer` awaiting data: passive output in flight.
#[derive(Debug)]
struct Waiter {
    max: usize,
    reply: ReplyHandle,
}

/// Per-output-channel buffering.
#[derive(Debug, Default)]
struct OutChannel {
    buffer: VecDeque<Value>,
    waiters: VecDeque<Waiter>,
}

/// A filter Eject of the read-only discipline. See the module docs.
#[derive(Debug)]
pub struct PullFilterEject {
    transform: Box<dyn Transform>,
    channels: ChannelTable,
    out: Vec<OutChannel>,
    config: PullFilterConfig,
    /// Present in lazy mode; moved into the worker in read-ahead mode.
    puller: Option<InputPuller>,
    /// Worker-mode credit: records requested from the worker but not yet
    /// delivered.
    outstanding: usize,
    credit_tx: Option<crossbeam::channel::Sender<usize>>,
    input_done: bool,
    flushed: bool,
    /// Upstream routes, learned on first use. In read-ahead mode the
    /// worker keeps its own cache (it does the pulling).
    route_cache: RouteCache,
    /// The records-per-Transfer dial; shared with the read-ahead worker.
    batch: AdaptiveBatch,
}

impl PullFilterEject {
    /// A single-input filter with default configuration.
    pub fn new(transform: Box<dyn Transform>, input: InputPort) -> PullFilterEject {
        PullFilterEject::with_config(transform, vec![input], PullFilterConfig::default())
    }

    /// A filter with explicit inputs and configuration.
    pub fn with_config(
        transform: Box<dyn Transform>,
        inputs: Vec<InputPort>,
        config: PullFilterConfig,
    ) -> PullFilterEject {
        let mut names = vec![OUTPUT_NAME.to_owned()];
        names.extend(transform.secondary_channels().iter().map(|s| s.to_string()));
        let channels = ChannelTable::new(config.policy, names);
        let out = (0..channels.len()).map(|_| OutChannel::default()).collect();
        let puller = InputPuller::new(inputs, config.fan_in);
        let batch = config.adaptive_batch();
        PullFilterEject {
            transform,
            channels,
            out,
            config,
            puller: Some(puller),
            outstanding: 0,
            credit_tx: None,
            input_done: false,
            flushed: false,
            route_cache: RouteCache::new(),
            batch,
        }
    }

    /// The channel table (for tests; peers use `GetChannel`).
    pub fn channel_table(&self) -> &ChannelTable {
        &self.channels
    }

    /// Feed raw input records through the transform into the out-buffers.
    fn ingest(&mut self, items: Vec<Value>) {
        let mut emitter = Emitter::new();
        for item in items {
            self.transform.push(item, &mut emitter);
        }
        self.drain_emitter(emitter);
    }

    /// Input exhausted: flush the transform.
    fn finish_input(&mut self) {
        if self.flushed {
            return;
        }
        self.input_done = true;
        let mut emitter = Emitter::new();
        self.transform.flush(&mut emitter);
        self.drain_emitter(emitter);
        self.flushed = true;
    }

    fn drain_emitter(&mut self, mut emitter: Emitter) {
        for item in emitter.take_primary() {
            self.out[0].buffer.push_back(item);
        }
        for (name, items) in emitter.take_secondary() {
            // A transform emitting on an undeclared channel is a bug in the
            // transform; drop the records rather than poison the stream.
            if let Ok(idx) = self
                .channels
                .id_of(&name)
                .and_then(|id| self.channels.index_of(id))
            {
                self.out[idx].buffer.extend(items);
            }
        }
    }

    /// Answer as many parked Transfers as the buffers now allow.
    fn serve_waiters(&mut self) {
        let cap = self.batch.bounds().1;
        let read_ahead = self.config.read_ahead > 0;
        for (idx, ch) in self.out.iter_mut().enumerate() {
            while let Some(front) = ch.waiters.front() {
                if ch.buffer.is_empty() && !self.flushed {
                    break;
                }
                // Primary read-ahead serves whole batches: answering a
                // 64-record ask with the 4 records that happen to be
                // buffered would turn one invocation into many.
                if read_ahead && idx == 0 && !self.flushed && ch.buffer.len() < front.max.min(cap)
                {
                    break;
                }
                let max = front.max;
                let waiter = ch.waiters.pop_front().expect("front checked");
                let n = max.min(ch.buffer.len());
                let items: Vec<Value> = ch.buffer.drain(..n).collect();
                let end = self.flushed && ch.buffer.is_empty();
                waiter.reply.reply(Ok(Batch { items, end }.to_value()));
            }
        }
    }

    /// Lazy mode: synchronously pull and transform until `channel_idx` has
    /// `want` records buffered (or input ends).
    fn fill_lazily(&mut self, ctx: &EjectContext, channel_idx: usize, want: usize) {
        let mut pulls = 0usize;
        while self.out[channel_idx].buffer.len() < want && !self.flushed {
            let step = {
                let puller = match self.puller.as_mut() {
                    Some(p) => p,
                    None => break,
                };
                let batch = self.batch.current();
                let cache = &mut self.route_cache;
                let mut transfer = |uid: Uid, req: TransferRequest| -> Result<Batch> {
                    ctx.invoke_routed(cache, uid, ops::TRANSFER, req.to_value())
                        .wait()
                        .and_then(Batch::from_value)
                };
                puller.pull_next(batch, &mut transfer)
            };
            pulls += 1;
            match step {
                Ok(step) => {
                    self.ingest(step.items);
                    if step.done {
                        self.finish_input();
                    }
                }
                Err(_e) => {
                    // Upstream failure: end the stream here. Readers see a
                    // short stream; the error also surfaced in metrics.
                    self.finish_input();
                }
            }
        }
        // Adapt: a serve needing several upstream pulls is invocation-bound;
        // a single pull that left more than a demand's worth buffered
        // overshot. (No-ops when the batch is fixed.)
        if pulls >= 2 {
            self.batch.grow();
        } else if pulls == 1 && self.out[channel_idx].buffer.len() > want {
            self.batch.shrink();
        }
    }

    /// Worker mode: top up the credit so the worker keeps `read_ahead`
    /// records in flight or buffered.
    fn grant_credit(&mut self) {
        if self.input_done {
            return;
        }
        let buffered = self.out[0].buffer.len();
        // The window deepens with the batch dial: pre-pulling less than
        // one batch's worth would starve the very batches we grew.
        let target = self.config.read_ahead.max(self.batch.current());
        let in_flight = buffered + self.outstanding;
        if in_flight < target {
            let want = target - in_flight;
            if let Some(tx) = &self.credit_tx {
                if tx.try_send(want).is_ok() {
                    self.outstanding += want;
                }
            }
        }
    }

    fn serve_transfer(&mut self, ctx: &EjectContext, req: TransferRequest, reply: ReplyHandle) {
        let idx = match self.channels.index_of(req.channel) {
            Ok(idx) => idx,
            Err(e) => {
                reply.reply(Err(e));
                return;
            }
        };
        // Demand propagation: a downstream asking for more per Transfer
        // than we pull per Transfer cascades the batch dial up the
        // pipeline — open it until it covers the observed demand (the
        // dial's own max still caps it).
        if idx == 0 {
            let mut cur = self.batch.current();
            while req.max > cur {
                self.batch.grow();
                let next = self.batch.current();
                if next == cur {
                    break;
                }
                cur = next;
            }
        }
        if self.config.read_ahead == 0 {
            // Lazy: do the work now, on demand.
            if idx == 0 {
                self.fill_lazily(ctx, 0, req.max);
            }
            // Secondary channels fill only as a by-product of primary
            // demand — §4's laziness means reports trail the main stream.
            let ch = &mut self.out[idx];
            if ch.buffer.is_empty() && !self.flushed && idx != 0 {
                reply.mark_deferred();
                ch.waiters.push_back(Waiter {
                    max: req.max,
                    reply,
                });
                return;
            }
            let n = req.max.min(ch.buffer.len());
            let items: Vec<Value> = ch.buffer.drain(..n).collect();
            let end = self.flushed && ch.buffer.is_empty();
            reply.reply(Ok(Batch { items, end }.to_value()));
            // Primary demand may have produced secondary-channel data (or
            // flushed the stream); wake any parked report readers.
            self.serve_waiters();
        } else {
            // Read-ahead: serve from the buffer or park. The primary
            // channel parks until it can answer the whole ask (capped by
            // the dial's own bound) — see `serve_waiters`.
            let fill = if idx == 0 {
                req.max.min(self.batch.bounds().1)
            } else {
                1
            };
            let ch = &mut self.out[idx];
            if ch.buffer.len() < fill && !self.flushed {
                reply.mark_deferred();
                ch.waiters.push_back(Waiter {
                    max: req.max,
                    reply,
                });
                // A parked reader means the prefetch is not keeping up:
                // move more records per invocation.
                if idx == 0 {
                    self.batch.grow();
                }
            } else {
                let n = req.max.min(ch.buffer.len());
                let items: Vec<Value> = ch.buffer.drain(..n).collect();
                let end = self.flushed && ch.buffer.is_empty();
                reply.reply(Ok(Batch { items, end }.to_value()));
            }
            self.grant_credit();
        }
    }
}

impl EjectBehavior for PullFilterEject {
    fn type_name(&self) -> &'static str {
        "PullFilter"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        if self.config.read_ahead == 0 {
            return;
        }
        // Read-ahead mode: move the puller into a worker process that
        // fetches input under credit control and posts it back as internal
        // events (language-level IPC, metered separately from invocation).
        let mut puller = match self.puller.take() {
            Some(p) => p,
            None => return,
        };
        let (credit_tx, credit_rx) = crossbeam::channel::bounded::<usize>(64);
        self.credit_tx = Some(credit_tx);
        let batch = self.batch.clone();
        ctx.spawn_process("read-ahead", move |pctx| {
            // The worker does all the pulling in this mode, so it owns the
            // route cache; the coordinator adjusts the shared batch dial.
            let mut cache = RouteCache::new();
            loop {
                // eden-lint: nonblocking(spawn_process worker thread, not a pool worker)
                let credit = match credit_rx.recv() {
                    Ok(c) => c,
                    Err(_) => return, // Coordinator gone.
                };
                let mut fetched = 0;
                while fetched < credit {
                    if pctx.should_stop() {
                        return;
                    }
                    let mut transfer = |uid: Uid, req: TransferRequest| -> Result<Batch> {
                        let pending =
                            pctx.invoke_routed(&mut cache, uid, ops::TRANSFER, req.to_value());
                        pctx.wait_or_stop(pending).and_then(Batch::from_value)
                    };
                    let step = match puller
                        .pull_next(batch.current().min(credit - fetched), &mut transfer)
                    {
                        Ok(s) => s,
                        Err(_) => PullStep {
                            items: Vec::new(),
                            done: true,
                        },
                    };
                    fetched += step.items.len();
                    let done = step.done;
                    let event = Value::record([
                        ("kind", Value::str(if done { "last" } else { "data" })),
                        ("items", Value::list(step.items)),
                    ]);
                    if pctx.post_internal(event).is_err() {
                        return;
                    }
                    if done {
                        return;
                    }
                }
            }
        });
        // Prime the pump: pre-fetch in anticipation of demand (§4).
        self.grant_credit();
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::TRANSFER => match TransferRequest::from_value(&inv.arg) {
                Ok(req) => self.serve_transfer(ctx, req, reply),
                Err(e) => reply.reply(Err(e)),
            },
            ops::GET_CHANNEL => {
                let result = GetChannelRequest::from_value(&inv.arg)
                    .and_then(|req| self.channels.id_of(&req.name))
                    .map(Value::from);
                reply.reply(result);
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }

    fn internal(&mut self, _ctx: &EjectContext, event: Value) {
        // Data (or end) arriving from the read-ahead worker.
        let kind = match event.field("kind").and_then(|k| Ok(k.as_str()?.to_owned())) {
            Ok(k) => k,
            Err(_) => return,
        };
        let items = match event.field("items").cloned().and_then(Value::into_list) {
            Ok(items) => items,
            Err(_) => return,
        };
        self.outstanding = self.outstanding.saturating_sub(items.len());
        self.ingest(items);
        if kind == "last" {
            // The worker may have delivered less than it was credited for.
            self.outstanding = 0;
            self.finish_input();
        }
        self.serve_waiters();
        // An amplifying transform can pile output far past the read-ahead
        // target with nobody reading: batching overshot demand.
        // Only a backlog far past the window means batching overshot
        // demand; a transient pile-up right after a fat delivery is
        // normal and must not collapse the dial.
        let window = self.config.read_ahead.max(self.batch.current()).max(1);
        if !self.flushed && self.out[0].waiters.is_empty() && self.out[0].buffer.len() >= 4 * window
        {
            self.batch.shrink();
        }
        self.grant_credit();
    }

    fn deactivating(&mut self, _ctx: &EjectContext) {
        // Closing the credit channel unblocks the worker's recv.
        self.credit_tx = None;
        // Parked replies drop with `self`, failing their waiters fast.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::sink::SinkEject;
    use crate::source::{SourceEject, VecSource};
    use crate::transform::{filter_fn, map_fn, Identity};
    use eden_kernel::Kernel;
    use std::time::Duration;

    fn int_source(kernel: &Kernel, n: i64) -> Uid {
        kernel
            .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
                (0..n).map(Value::Int).collect(),
            )))))
            .unwrap()
    }

    #[test]
    fn lazy_filter_end_to_end() {
        let kernel = Kernel::new();
        let src = int_source(&kernel, 10);
        let filter = kernel
            .spawn(Box::new(PullFilterEject::new(
                Box::new(map_fn("double", |v| Value::Int(v.as_int().unwrap() * 2))),
                InputPort::primary(src),
            )))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(filter, 4, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items, (0..10).map(|i| Value::Int(i * 2)).collect::<Vec<_>>());
        kernel.shutdown();
    }

    #[test]
    fn read_ahead_filter_end_to_end() {
        let kernel = Kernel::new();
        let src = int_source(&kernel, 50);
        let filter = kernel
            .spawn(Box::new(PullFilterEject::with_config(
                Box::new(filter_fn("evens", |v| v.as_int().map(|i| i % 2 == 0).unwrap_or(false))),
                vec![InputPort::primary(src)],
                PullFilterConfig {
                    read_ahead: 8,
                    batch: 4,
                    ..Default::default()
                },
            )))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(filter, 4, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items.len(), 25);
        assert_eq!(items[0], Value::Int(0));
        assert_eq!(items[24], Value::Int(48));
        kernel.shutdown();
    }

    #[test]
    fn fan_in_concatenate() {
        let kernel = Kernel::new();
        let a = int_source(&kernel, 3);
        let b = int_source(&kernel, 2);
        let filter = kernel
            .spawn(Box::new(PullFilterEject::with_config(
                Box::new(Identity),
                vec![InputPort::primary(a), InputPort::primary(b)],
                PullFilterConfig::default(),
            )))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(filter, 8, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(
            items,
            vec![Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(0), Value::Int(1)]
        );
        kernel.shutdown();
    }

    #[test]
    fn fan_in_zip_pairs_until_shorter_ends() {
        let kernel = Kernel::new();
        let a = int_source(&kernel, 4);
        let b = int_source(&kernel, 2);
        let filter = kernel
            .spawn(Box::new(PullFilterEject::with_config(
                Box::new(Identity),
                vec![InputPort::primary(a), InputPort::primary(b)],
                PullFilterConfig {
                    fan_in: FanInMode::Zip,
                    ..Default::default()
                },
            )))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(filter, 8, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(
            items,
            vec![
                Value::list(vec![Value::Int(0), Value::Int(0)]),
                Value::list(vec![Value::Int(1), Value::Int(1)]),
            ]
        );
        kernel.shutdown();
    }

    #[test]
    fn read_ahead_with_fan_in() {
        // The prefetch worker owns the multi-port puller: fan-in and
        // read-ahead must compose.
        let kernel = Kernel::new();
        let a = int_source(&kernel, 10);
        let b = int_source(&kernel, 10);
        let filter = kernel
            .spawn(Box::new(PullFilterEject::with_config(
                Box::new(Identity),
                vec![InputPort::primary(a), InputPort::primary(b)],
                PullFilterConfig {
                    read_ahead: 8,
                    batch: 4,
                    fan_in: FanInMode::RoundRobin,
                    ..Default::default()
                },
            )))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(filter, 4, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items.len(), 20);
        // The merge delivers each source's full stream exactly once.
        let mut values: Vec<i64> = items.iter().map(|v| v.as_int().unwrap()).collect();
        values.sort_unstable();
        let expected: Vec<i64> = (0..10).flat_map(|i| [i, i]).collect();
        assert_eq!(values, expected);
        kernel.shutdown();
    }

    #[test]
    fn transfer_on_undeclared_channel_fails() {
        let kernel = Kernel::new();
        let src = int_source(&kernel, 1);
        let filter = kernel
            .spawn(Box::new(PullFilterEject::new(
                Box::new(Identity),
                InputPort::primary(src),
            )))
            .unwrap();
        let err = kernel
            .invoke(
                filter,
                ops::TRANSFER,
                TransferRequest {
                    channel: ChannelId::Number(5),
                    max: 1,
                    pos: None,
                }
                .to_value(),
            ).wait()
            .unwrap_err();
        assert!(matches!(err, EdenError::NoSuchChannel(_)));
        kernel.shutdown();
    }

    #[test]
    fn empty_source_yields_empty_end() {
        let kernel = Kernel::new();
        let src = int_source(&kernel, 0);
        let filter = kernel
            .spawn(Box::new(PullFilterEject::new(
                Box::new(Identity),
                InputPort::primary(src),
            )))
            .unwrap();
        let got = kernel
            .invoke(filter, ops::TRANSFER, TransferRequest::primary(4).to_value()).wait()
            .unwrap();
        let batch = Batch::from_value(got).unwrap();
        assert!(batch.is_empty() && batch.end);
        kernel.shutdown();
    }
}
