//! Data sources.
//!
//! "Any Eject which responds to *Read* invocations is by definition a
//! source" (§4). [`PullSource`] is the local supply of records; a
//! [`SourceEject`] mounts one behind the stream protocol, performing
//! passive output only. The paper's examples — a file opened for input, a
//! date/time server, a directory listing — are all `SourceEject`s over
//! different `PullSource`s.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eden_core::op::ops;
use eden_core::{EdenError, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, ReplyHandle};

use crate::channels::ChannelTable;
use crate::protocol::{Batch, GetChannelRequest, TransferRequest};

/// A local, in-process supply of stream records.
pub trait PullSource: Send + 'static {
    /// Produce up to `max` records. Setting [`Batch::end`] means no more
    /// records will ever be produced; `pull` will not be called again.
    fn pull(&mut self, max: usize) -> Batch;
}

/// A source over a vector of records.
#[derive(Debug)]
pub struct VecSource {
    items: std::vec::IntoIter<Value>,
}

impl VecSource {
    /// Build from any collection of records.
    pub fn new(items: Vec<Value>) -> VecSource {
        VecSource {
            items: items.into_iter(),
        }
    }

    /// Build from string lines (the common text-stream case).
    pub fn from_lines<I, S>(lines: I) -> VecSource
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        VecSource::new(lines.into_iter().map(|l| Value::from(l.into())).collect())
    }
}

impl PullSource for VecSource {
    fn pull(&mut self, max: usize) -> Batch {
        let mut items = Vec::with_capacity(max.min(64));
        for _ in 0..max {
            match self.items.next() {
                Some(v) => items.push(v),
                None => return Batch::last(items),
            }
        }
        // Peek-free end detection: if nothing remains, say so now to keep
        // the invocation counts exact.
        if self.items.len() == 0 {
            Batch::last(items)
        } else {
            Batch::more(items)
        }
    }
}

/// A generator source from a closure producing one record per call, with a
/// record budget. Useful for synthetic workloads.
#[derive(Debug)]
pub struct FnSource<F> {
    f: F,
    next: u64,
    total: u64,
}

impl<F> FnSource<F>
where
    F: FnMut(u64) -> Value + Send + 'static,
{
    /// `f(i)` produces the i-th record; `count` records total.
    pub fn new(count: u64, f: F) -> FnSource<F> {
        FnSource {
            f,
            next: 0,
            total: count,
        }
    }
}

impl<F> PullSource for FnSource<F>
where
    F: FnMut(u64) -> Value + Send + 'static,
{
    fn pull(&mut self, max: usize) -> Batch {
        let n = (max as u64).min(self.total - self.next);
        let items = (self.next..self.next + n).map(|i| (self.f)(i)).collect();
        self.next += n;
        if self.next == self.total {
            Batch::last(items)
        } else {
            Batch::more(items)
        }
    }
}

/// Wraps a source and counts how many records have been pulled out of it.
/// Used by the laziness experiment (E3): with no sink connected, the count
/// must stay zero.
#[derive(Debug)]
pub struct CountingSource<S> {
    inner: S,
    pulled: Arc<AtomicU64>,
}

impl<S: PullSource> CountingSource<S> {
    /// Wrap `inner`; the returned counter is shared.
    pub fn new(inner: S) -> (CountingSource<S>, Arc<AtomicU64>) {
        let counter = Arc::new(AtomicU64::new(0));
        (
            CountingSource {
                inner,
                pulled: Arc::clone(&counter),
            },
            counter,
        )
    }
}

impl<S: PullSource> PullSource for CountingSource<S> {
    fn pull(&mut self, max: usize) -> Batch {
        let batch = self.inner.pull(max);
        self.pulled.fetch_add(batch.len() as u64, Ordering::Relaxed);
        batch
    }
}

/// A source Eject: passive output only.
///
/// Responds to `Transfer` with data from its [`PullSource`], and to
/// `GetChannel` with its channel identifiers. After the underlying source
/// ends, further `Transfer`s receive empty end batches (reading past end
/// of file is not an error, just empty).
#[derive(Debug)]
pub struct SourceEject {
    source: Box<dyn PullSource>,
    channels: ChannelTable,
    ended: bool,
    /// Records carried over when a pull returned more than one Transfer
    /// asked for (never happens with well-behaved sources, but be safe).
    leftover: Vec<Value>,
}

impl SourceEject {
    /// Mount `source` behind a single-output channel table.
    pub fn new(source: Box<dyn PullSource>) -> SourceEject {
        SourceEject::with_channels(source, ChannelTable::single_output())
    }

    /// Mount `source` with an explicit channel table (the data is served on
    /// the primary channel; declared secondary channels read as empty).
    pub fn with_channels(source: Box<dyn PullSource>, channels: ChannelTable) -> SourceEject {
        SourceEject {
            source,
            channels,
            ended: false,
            leftover: Vec::new(),
        }
    }

    fn serve_transfer(&mut self, req: TransferRequest) -> eden_core::Result<Batch> {
        let index = self.channels.index_of(req.channel)?;
        if index != 0 {
            // A plain source only ever has primary data; a declared but
            // dataless secondary channel reads as an ended stream.
            return Ok(Batch::end());
        }
        let mut items = Vec::new();
        while items.len() < req.max && !self.leftover.is_empty() {
            items.push(self.leftover.remove(0));
        }
        if items.len() == req.max {
            let end = self.ended && self.leftover.is_empty();
            return Ok(Batch { items, end });
        }
        if self.ended {
            return Ok(Batch::last(items));
        }
        let mut batch = self.source.pull(req.max - items.len());
        self.ended = batch.end;
        if batch.items.len() > req.max - items.len() {
            let excess = batch.items.split_off(req.max - items.len());
            self.leftover = excess;
        }
        items.append(&mut batch.items);
        Ok(Batch {
            items,
            end: self.ended && self.leftover.is_empty(),
        })
    }
}

impl EjectBehavior for SourceEject {
    fn type_name(&self) -> &'static str {
        "StreamSource"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::TRANSFER => {
                let result = TransferRequest::from_value(&inv.arg)
                    .and_then(|req| self.serve_transfer(req))
                    .map(|batch| {
                        eden_core::stream::note_emitted(batch.len());
                        batch.to_value()
                    });
                reply.reply(result);
            }
            ops::GET_CHANNEL => {
                let result = GetChannelRequest::from_value(&inv.arg)
                    .and_then(|req| self.channels.id_of(&req.name))
                    .map(Value::from);
                reply.reply(result);
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}


impl std::fmt::Debug for dyn PullSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PullSource")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ChannelId;

    #[test]
    fn vec_source_batches_and_ends() {
        let mut s = VecSource::new((0..5).map(Value::Int).collect());
        let b = s.pull(2);
        assert_eq!(b.items, vec![Value::Int(0), Value::Int(1)]);
        assert!(!b.end);
        let b = s.pull(3);
        assert_eq!(b.len(), 3);
        assert!(b.end, "final batch must carry the end flag");
    }

    #[test]
    fn vec_source_exact_boundary_sets_end() {
        let mut s = VecSource::new((0..4).map(Value::Int).collect());
        let b = s.pull(4);
        assert_eq!(b.len(), 4);
        assert!(b.end, "a pull that drains the source must say end");
    }

    #[test]
    fn empty_vec_source_is_immediately_ended() {
        let mut s = VecSource::new(vec![]);
        let b = s.pull(8);
        assert!(b.is_empty());
        assert!(b.end);
    }

    #[test]
    fn fn_source_counts_down() {
        let mut s = FnSource::new(3, |_| Value::str("x"));
        assert!(!s.pull(2).end);
        assert!(s.pull(2).end);
    }

    #[test]
    fn counting_source_counts() {
        let (mut s, count) = CountingSource::new(VecSource::new((0..10).map(Value::Int).collect()));
        assert_eq!(count.load(Ordering::Relaxed), 0);
        s.pull(4);
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn serve_transfer_checks_channel() {
        let mut e = SourceEject::new(Box::new(VecSource::new(vec![Value::Int(1)])));
        let bad = TransferRequest {
            channel: ChannelId::Number(3),
            max: 1,
            pos: None,
        };
        assert!(e.serve_transfer(bad).is_err());
    }

    #[test]
    fn serve_transfer_after_end_is_empty_end() {
        let mut e = SourceEject::new(Box::new(VecSource::new(vec![Value::Int(1)])));
        let b = e.serve_transfer(TransferRequest::primary(5)).unwrap();
        assert!(b.end);
        let again = e.serve_transfer(TransferRequest::primary(5)).unwrap();
        assert!(again.end && again.is_empty());
    }

    #[test]
    fn from_lines_builds_strings() {
        let mut s = VecSource::from_lines(["a", "b"]);
        let b = s.pull(10);
        assert_eq!(b.items, vec![Value::str("a"), Value::str("b")]);
    }
}
