//! Checkpoint-driven stream recovery: pipelines that survive fail-stop
//! crashes of any stage without losing or duplicating a record.
//!
//! §7 of the paper observes that an Eject which has checkpointed survives a
//! crash as its passive representation and is "automatically reactivated by
//! the Eden kernel when it is next invoked". This module turns that
//! mechanism into an end-to-end guarantee for streams, in all three
//! disciplines, by combining three ingredients:
//!
//! 1. **Positions on the wire.** Every `Transfer` carries the reader's
//!    absolute stream position ([`TransferRequest::pos`]) and every `Write`
//!    the absolute position of its first record ([`WriteRequest::seq`]).
//!    The position doubles as a cumulative acknowledgement: a producer may
//!    discard records below the highest position it has served, and a
//!    receiver skips the overlap of a re-sent batch.
//! 2. **Checkpoint before reply.** Every recoverable stage writes its
//!    passive representation to the [`StableStore`] *before* acknowledging
//!    an invocation, so the stable state never claims more progress than
//!    the peers have observed.
//! 3. **Retry against a reactivating kernel.** Stream invocations travel
//!    with a [`RetryPolicy`]; a retry of an invocation whose target crashed
//!    reactivates the target from its checkpoint (activation on invocation,
//!    §1), and the re-sent position makes the repeat idempotent.
//!
//! Together these give exactly-once delivery across a fail-stop crash of
//! any single stage — and, because every window between checkpoint and
//! acknowledgement is closed by the position arithmetic, across repeated
//! crashes too, provided the mounted [`Transform`]s are **deterministic
//! and per-record** (a re-run of an unacknowledged input must reproduce
//! byte-identical output; sorters and other whole-stream buffers are out of
//! scope). Secondary emission channels are not forwarded by the recovery
//! adapters.
//!
//! Active stages (the write-only pump, the conventional pumps) receive no
//! stream invocations, so a crashed one would stay passive forever; the
//! driving loop in [`run_recoverable_pipeline`] "nudges" every active stage
//! with a fault-immune `Describe` while it waits, which reactivates any
//! that have crashed.
//!
//! [`StableStore`]: eden_kernel::StableStore

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_core::op::ops;
use eden_core::{EdenError, Result, Uid, Value};
use eden_kernel::{
    EjectBehavior, EjectContext, Invocation, InvokeOptions, Kernel, ReplyHandle, RetryPolicy,
};

use crate::conform::{DisciplineKind, EdgeMode, NodeRole, WiringGraph};
use crate::protocol::{Batch, TransferRequest, WriteRequest};
use crate::transform::{Emitter, Transform};

/// The operation a [`run_recoverable_pipeline`] driver uses to read the
/// terminal acceptor: replies with a [`Batch`] of everything accepted so
/// far, `end` set once the stream has closed. Keeping the output *inside*
/// the acceptor's checkpoint (rather than pushing it to an external
/// collector) is what lets the terminal stage recover exactly: the records
/// and the position that acknowledges them are one atomic state.
pub const READ_ALL: &str = "ReadAll";

/// How often a polling worker re-asks an empty buffer.
const POLL: Duration = Duration::from_millis(1);

/// The retry policy stream invocations travel with: patient enough to ride
/// out a reactivation, fast enough that the chaos benchmarks measure
/// recovery latency rather than backoff pauses.
fn stream_opts() -> InvokeOptions<'static> {
    InvokeOptions::new()
        .retry(
            RetryPolicy::retries(24)
                .base_delay(Duration::from_millis(1))
                .max_delay(Duration::from_millis(25)),
        )
        .deadline(Duration::from_secs(20))
}

/// Options for control-plane traffic (starting pumps, polling the
/// acceptor, nudging crashed stages): immune to the fault plan, so chaos
/// experiments perturb the stream itself, not the experiment's harness.
fn control_opts() -> InvokeOptions<'static> {
    InvokeOptions::new()
        .immune()
        .retry(RetryPolicy::retries(8).base_delay(Duration::from_millis(1)))
}

/// A constructor for one named, deterministic [`Transform`].
pub type TransformFactory = fn() -> Box<dyn Transform>;

/// A named catalogue of transform constructors, used to rebuild a stage's
/// [`Transform`] on reactivation (function state is not checkpointable;
/// determinism makes rebuilding equivalent).
#[derive(Clone, Default)]
#[derive(Debug)]
pub struct TransformRegistry {
    map: Arc<HashMap<String, TransformFactory>>,
}

impl TransformRegistry {
    /// Build a registry from `(name, constructor)` pairs.
    pub fn new(entries: &[(&str, TransformFactory)]) -> TransformRegistry {
        TransformRegistry {
            map: Arc::new(
                entries
                    .iter()
                    .map(|(n, f)| ((*n).to_owned(), *f))
                    .collect(),
            ),
        }
    }

    /// Construct a fresh transform. The empty name is the identity
    /// (pass-through) transform; unknown names are an error.
    fn build(&self, name: &str) -> Result<Option<Box<dyn Transform>>> {
        if name.is_empty() {
            return Ok(None);
        }
        match self.map.get(name) {
            Some(f) => Ok(Some(f())),
            None => Err(EdenError::Application(format!(
                "no transform named `{name}` in the recovery registry"
            ))),
        }
    }
}

/// Feed `items` through an optional transform, collecting primary output.
fn apply(transform: &mut Option<Box<dyn Transform>>, items: Vec<Value>) -> Vec<Value> {
    match transform {
        None => items,
        Some(t) => {
            let mut out = Emitter::new();
            for item in items {
                t.push(item, &mut out);
            }
            out.take_primary()
        }
    }
}

/// Flush an optional transform (input ended), collecting primary output.
fn flush(transform: &mut Option<Box<dyn Transform>>) -> Vec<Value> {
    match transform {
        None => Vec::new(),
        Some(t) => {
            let mut out = Emitter::new();
            t.flush(&mut out);
            out.take_primary()
        }
    }
}

fn items_field(v: &Value, name: &str) -> Result<Vec<Value>> {
    v.field(name)?.as_list().map(<[Value]>::to_vec)
}

fn uint_field(v: &Value, name: &str) -> Result<u64> {
    Ok(v.field(name)?.as_int()?.max(0) as u64)
}

// ---------------------------------------------------------------------------
// RecoverableSource — positional passive output over a fixed record list.
// ---------------------------------------------------------------------------

/// A source whose whole record list lives in its checkpoint. Serving is
/// pure position arithmetic, so a reactivated source re-serves any
/// unacknowledged suffix byte-for-byte.
#[derive(Debug)]
pub struct RecoverableSource {
    items: Vec<Value>,
    /// Fallback cursor for non-positional readers.
    cursor: u64,
    recovered: bool,
}

impl RecoverableSource {
    /// A fresh source over `items`.
    pub fn new(items: Vec<Value>) -> RecoverableSource {
        RecoverableSource {
            items,
            cursor: 0,
            recovered: false,
        }
    }

    fn state(&self) -> Value {
        Value::record([
            ("items", Value::list(self.items.clone())),
            ("cursor", Value::Int(self.cursor as i64)),
        ])
    }

    fn from_state(v: Value) -> Result<RecoverableSource> {
        Ok(RecoverableSource {
            items: items_field(&v, "items")?,
            cursor: uint_field(&v, "cursor")?,
            recovered: true,
        })
    }
}

impl EjectBehavior for RecoverableSource {
    fn type_name(&self) -> &'static str {
        "RecoverableSource"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        if self.recovered {
            ctx.metrics().record_recovered_stream();
        }
        // Durable from birth: a crash before the first Transfer must leave
        // a reactivatable Eject, not a vanished one.
        let _ = ctx.checkpoint(&self.state());
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::TRANSFER => {
                let req = match TransferRequest::from_value(&inv.arg) {
                    Ok(req) => req,
                    Err(e) => return reply.reply(Err(e)),
                };
                let pos = (req.pos.unwrap_or(self.cursor) as usize).min(self.items.len());
                let n = req.max.min(self.items.len() - pos);
                let batch = Batch {
                    items: self.items[pos..pos + n].to_vec(),
                    end: pos + n == self.items.len(),
                };
                self.cursor = (pos + n) as u64;
                if let Err(e) = ctx.checkpoint(&self.state()) {
                    return reply.reply(Err(e));
                }
                reply.reply(Ok(batch.to_value()));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

// ---------------------------------------------------------------------------
// RecoverablePullFilter — read-only discipline (active input, passive
// output), with positional replay.
// ---------------------------------------------------------------------------

/// A read-only filter that checkpoints `{input consumed, output buffer}`
/// before every reply. Its output buffer retains records until the
/// downstream position acknowledges them, so a reader retrying after a
/// crash (its own, or this filter's) re-reads exactly what it missed.
#[derive(Debug)]
pub struct RecoverablePullFilter {
    transform_name: String,
    transform: Option<Box<dyn Transform>>,
    upstream: Uid,
    /// Input records consumed from upstream (doubles as our pull position).
    consumed: u64,
    /// Upstream ended and the transform has flushed.
    in_end: bool,
    /// Stream position of `buf[0]`.
    base: u64,
    /// Produced but not yet acknowledged output.
    buf: Vec<Value>,
    pull_batch: usize,
    recovered: bool,
}

impl RecoverablePullFilter {
    /// A fresh filter running `transform_name` (from `registry`) over
    /// `upstream`, pulling `pull_batch` records per upstream Transfer.
    pub fn new(
        transform_name: &str,
        registry: &TransformRegistry,
        upstream: Uid,
        pull_batch: usize,
    ) -> Result<RecoverablePullFilter> {
        Ok(RecoverablePullFilter {
            transform_name: transform_name.to_owned(),
            transform: registry.build(transform_name)?,
            upstream,
            consumed: 0,
            in_end: false,
            base: 0,
            buf: Vec::new(),
            pull_batch: pull_batch.max(1),
            recovered: false,
        })
    }

    fn state(&self) -> Value {
        Value::record([
            ("transform", Value::str(self.transform_name.clone())),
            ("upstream", Value::Uid(self.upstream)),
            ("consumed", Value::Int(self.consumed as i64)),
            ("in_end", Value::Bool(self.in_end)),
            ("base", Value::Int(self.base as i64)),
            ("buf", Value::list(self.buf.clone())),
            ("batch", Value::Int(self.pull_batch as i64)),
        ])
    }

    fn from_state(v: Value, registry: &TransformRegistry) -> Result<RecoverablePullFilter> {
        let name = v.field("transform")?.as_str()?.to_owned();
        Ok(RecoverablePullFilter {
            transform: registry.build(&name)?,
            transform_name: name,
            upstream: v.field("upstream")?.as_uid()?,
            consumed: uint_field(&v, "consumed")?,
            in_end: v.field("in_end")?.as_bool()?,
            base: uint_field(&v, "base")?,
            buf: items_field(&v, "buf")?,
            pull_batch: uint_field(&v, "batch")?.max(1) as usize,
            recovered: true,
        })
    }

    /// Pull upstream until `want` output records are buffered or the input
    /// ends. Upstream crashes are ridden out by the retry policy; the
    /// retried Transfer carries `consumed`, so the reactivated upstream
    /// re-serves from exactly where this filter left off.
    fn fill(&mut self, ctx: &EjectContext, want: usize) -> Result<()> {
        while !self.in_end && self.buf.len() < want {
            let req = TransferRequest::primary(self.pull_batch).at(self.consumed);
            let reply = ctx
                .invoke_with(self.upstream, ops::TRANSFER, req.to_value(), stream_opts())
                .wait_timeout(Duration::from_secs(20))?;
            let pulled = Batch::from_value(reply)?;
            self.consumed += pulled.items.len() as u64;
            let mut produced = apply(&mut self.transform, pulled.items);
            if pulled.end {
                produced.extend(flush(&mut self.transform));
                self.in_end = true;
            }
            self.buf.extend(produced);
        }
        Ok(())
    }
}

impl EjectBehavior for RecoverablePullFilter {
    fn type_name(&self) -> &'static str {
        "RecoverablePullFilter"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        if self.recovered {
            ctx.metrics().record_recovered_stream();
        }
        let _ = ctx.checkpoint(&self.state());
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::TRANSFER => {
                let req = match TransferRequest::from_value(&inv.arg) {
                    Ok(req) => req,
                    Err(e) => return reply.reply(Err(e)),
                };
                let pos = req.pos.unwrap_or(self.base);
                if pos < self.base {
                    // The acknowledged prefix is gone; a position below it
                    // means the reader rewound further than we retained.
                    return reply.reply(Err(EdenError::BadParameter(format!(
                        "position {pos} below retained base {}",
                        self.base
                    ))));
                }
                // The position acknowledges everything before it.
                let acked = ((pos - self.base) as usize).min(self.buf.len());
                self.buf.drain(..acked);
                self.base = pos;
                if let Err(e) = self.fill(ctx, req.max) {
                    return reply.reply(Err(e));
                }
                let n = req.max.min(self.buf.len());
                let batch = Batch {
                    items: self.buf[..n].to_vec(),
                    end: self.in_end && n == self.buf.len(),
                };
                // Checkpoint before reply: the stable state must not claim
                // more progress than the reader has seen.
                if let Err(e) = ctx.checkpoint(&self.state()) {
                    return reply.reply(Err(e));
                }
                reply.reply(Ok(batch.to_value()));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

// ---------------------------------------------------------------------------
// Write-only discipline: RecoverablePushSource, RecoverablePushFilter,
// RecoverableAcceptor.
// ---------------------------------------------------------------------------

/// The write-only pump with a durable write position: a worker drains the
/// record list into sequenced `Write`s, checkpointing after each
/// acknowledgement. Reactivation resumes the pump from the checkpointed
/// position; the receiver's sequence arithmetic absorbs any overlap.
#[derive(Debug)]
pub struct RecoverablePushSource {
    items: Vec<Value>,
    downstream: Uid,
    w: u64,
    started: bool,
    done: bool,
    batch: usize,
    recovered: bool,
}

impl RecoverablePushSource {
    /// A fresh pump of `items` into `downstream`, `batch` records per
    /// write.
    pub fn new(items: Vec<Value>, downstream: Uid, batch: usize) -> RecoverablePushSource {
        RecoverablePushSource {
            items,
            downstream,
            w: 0,
            started: false,
            done: false,
            batch: batch.max(1),
            recovered: false,
        }
    }

    fn state_value(items: &[Value], downstream: Uid, w: u64, started: bool, done: bool, batch: usize) -> Value {
        Value::record([
            ("items", Value::list(items.to_vec())),
            ("downstream", Value::Uid(downstream)),
            ("w", Value::Int(w as i64)),
            ("started", Value::Bool(started)),
            ("done", Value::Bool(done)),
            ("batch", Value::Int(batch as i64)),
        ])
    }

    fn state(&self) -> Value {
        Self::state_value(&self.items, self.downstream, self.w, self.started, self.done, self.batch)
    }

    fn from_state(v: Value) -> Result<RecoverablePushSource> {
        Ok(RecoverablePushSource {
            items: items_field(&v, "items")?,
            downstream: v.field("downstream")?.as_uid()?,
            w: uint_field(&v, "w")?,
            started: v.field("started")?.as_bool()?,
            done: v.field("done")?.as_bool()?,
            batch: uint_field(&v, "batch")?.max(1) as usize,
            recovered: true,
        })
    }

    fn spawn_pump(&self, ctx: &EjectContext) {
        let items = self.items.clone();
        let downstream = self.downstream;
        let batch = self.batch;
        let mut w = self.w;
        ctx.spawn_process("push-pump", move |pctx| {
            while !pctx.should_stop() {
                let end = w as usize + batch >= items.len();
                let slice = items[(w as usize).min(items.len())..(w as usize + batch).min(items.len())].to_vec();
                let n = slice.len() as u64;
                let req = WriteRequest {
                    channel: Default::default(),
                    items: slice,
                    end,
                    seq: Some(w),
                };
                let pending =
                    pctx.invoke_with(downstream, ops::WRITE, req.to_value(), stream_opts());
                match pctx.wait_or_stop(pending) {
                    Ok(_) => {
                        w += n;
                        let _ = pctx.checkpoint(&RecoverablePushSource::state_value(
                            &items, downstream, w, true, end, batch,
                        ));
                        if end {
                            return;
                        }
                    }
                    Err(EdenError::KernelShutdown) => return,
                    // Retries exhausted under heavy fault load: pause and
                    // keep pumping from the same position rather than
                    // stranding the stream.
                    // eden-lint: nonblocking(spawn_process worker thread, not a pool worker)
                    Err(_) => std::thread::sleep(POLL),
                }
            }
        });
    }
}

impl EjectBehavior for RecoverablePushSource {
    fn type_name(&self) -> &'static str {
        "RecoverablePushSource"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        if self.recovered {
            ctx.metrics().record_recovered_stream();
        }
        let _ = ctx.checkpoint(&self.state());
        if self.started && !self.done {
            self.spawn_pump(ctx);
        }
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Start" => {
                if !self.started {
                    self.started = true;
                    if let Err(e) = ctx.checkpoint(&self.state()) {
                        return reply.reply(Err(e));
                    }
                    self.spawn_pump(ctx);
                }
                reply.reply(Ok(Value::Unit));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// A write-only filter: passive, sequenced input; active, sequenced
/// output. The checkpoint records `{input accepted, output forwarded}`;
/// forwarding happens *before* the checkpoint, and the checkpoint before
/// the acknowledgement, so every crash window resolves to a re-send that
/// the sequence arithmetic deduplicates.
#[derive(Debug)]
pub struct RecoverablePushFilter {
    transform_name: String,
    transform: Option<Box<dyn Transform>>,
    downstream: Uid,
    /// Input records accepted.
    r: u64,
    /// Output records forwarded and acknowledged.
    w: u64,
    ended: bool,
    recovered: bool,
}

impl RecoverablePushFilter {
    /// A fresh filter running `transform_name` over writes, forwarding to
    /// `downstream`.
    pub fn new(
        transform_name: &str,
        registry: &TransformRegistry,
        downstream: Uid,
    ) -> Result<RecoverablePushFilter> {
        Ok(RecoverablePushFilter {
            transform_name: transform_name.to_owned(),
            transform: registry.build(transform_name)?,
            downstream,
            r: 0,
            w: 0,
            ended: false,
            recovered: false,
        })
    }

    fn state(&self) -> Value {
        Value::record([
            ("transform", Value::str(self.transform_name.clone())),
            ("downstream", Value::Uid(self.downstream)),
            ("r", Value::Int(self.r as i64)),
            ("w", Value::Int(self.w as i64)),
            ("ended", Value::Bool(self.ended)),
        ])
    }

    fn from_state(v: Value, registry: &TransformRegistry) -> Result<RecoverablePushFilter> {
        let name = v.field("transform")?.as_str()?.to_owned();
        Ok(RecoverablePushFilter {
            transform: registry.build(&name)?,
            transform_name: name,
            downstream: v.field("downstream")?.as_uid()?,
            r: uint_field(&v, "r")?,
            w: uint_field(&v, "w")?,
            ended: v.field("ended")?.as_bool()?,
            recovered: true,
        })
    }
}

impl EjectBehavior for RecoverablePushFilter {
    fn type_name(&self) -> &'static str {
        "RecoverablePushFilter"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        if self.recovered {
            ctx.metrics().record_recovered_stream();
        }
        let _ = ctx.checkpoint(&self.state());
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::WRITE => {
                let req = match WriteRequest::from_value(inv.arg) {
                    Ok(req) => req,
                    Err(e) => return reply.reply(Err(e)),
                };
                let seq = req.seq.unwrap_or(self.r);
                if seq > self.r {
                    return reply.reply(Err(EdenError::BadParameter(format!(
                        "write at {seq} leaves a gap after {}",
                        self.r
                    ))));
                }
                // Skip the overlap of a re-sent batch (sequence arithmetic
                // is the dedupe).
                let skip = ((self.r - seq) as usize).min(req.items.len());
                let accepted = req.items.len() - skip;
                let fresh: Vec<Value> = req.items[skip..].to_vec();
                let mut out = apply(&mut self.transform, fresh);
                let end_now = req.end && !self.ended;
                if end_now {
                    out.extend(flush(&mut self.transform));
                }
                if !out.is_empty() || req.end {
                    let fwd = WriteRequest {
                        channel: Default::default(),
                        items: out.clone(),
                        end: req.end,
                        seq: Some(self.w),
                    };
                    let forwarded = ctx
                        .invoke_with(self.downstream, ops::WRITE, fwd.to_value(), stream_opts())
                        .wait_timeout(Duration::from_secs(20));
                    if let Err(e) = forwarded {
                        return reply.reply(Err(e));
                    }
                }
                self.r += accepted as u64;
                self.w += out.len() as u64;
                self.ended |= req.end;
                if let Err(e) = ctx.checkpoint(&self.state()) {
                    return reply.reply(Err(e));
                }
                reply.reply(Ok(Value::Unit));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// The terminal stage: accepts sequenced writes, keeps every record inside
/// its checkpoint, and serves the whole stream back via [`READ_ALL`]. The
/// records and the position acknowledging them live in one atomic passive
/// representation, so the output itself survives the acceptor crashing.
#[derive(Debug)]
pub struct RecoverableAcceptor {
    items: Vec<Value>,
    ended: bool,
    recovered: bool,
}

impl RecoverableAcceptor {
    /// A fresh, empty acceptor.
    #[allow(clippy::new_without_default)]
    pub fn new() -> RecoverableAcceptor {
        RecoverableAcceptor {
            items: Vec::new(),
            ended: false,
            recovered: false,
        }
    }

    fn state(&self) -> Value {
        Value::record([
            ("items", Value::list(self.items.clone())),
            ("ended", Value::Bool(self.ended)),
        ])
    }

    fn from_state(v: Value) -> Result<RecoverableAcceptor> {
        Ok(RecoverableAcceptor {
            items: items_field(&v, "items")?,
            ended: v.field("ended")?.as_bool()?,
            recovered: true,
        })
    }
}

impl EjectBehavior for RecoverableAcceptor {
    fn type_name(&self) -> &'static str {
        "RecoverableAcceptor"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        if self.recovered {
            ctx.metrics().record_recovered_stream();
        }
        let _ = ctx.checkpoint(&self.state());
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::WRITE => {
                let req = match WriteRequest::from_value(inv.arg) {
                    Ok(req) => req,
                    Err(e) => return reply.reply(Err(e)),
                };
                let r = self.items.len() as u64;
                let seq = req.seq.unwrap_or(r);
                if seq > r {
                    return reply.reply(Err(EdenError::BadParameter(format!(
                        "write at {seq} leaves a gap after {r}"
                    ))));
                }
                let skip = ((r - seq) as usize).min(req.items.len());
                self.items.extend_from_slice(&req.items[skip..]);
                self.ended |= req.end;
                if let Err(e) = ctx.checkpoint(&self.state()) {
                    return reply.reply(Err(e));
                }
                reply.reply(Ok(Value::Unit));
            }
            READ_ALL => {
                let batch = Batch {
                    items: self.items.clone(),
                    end: self.ended,
                };
                reply.reply(Ok(batch.to_value()));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

// ---------------------------------------------------------------------------
// Conventional discipline: RecoverableBuffer and RecoverablePump.
// ---------------------------------------------------------------------------

/// The conventional discipline's passive buffer, with both faces
/// positional: sequenced `Write`s in, positional `Transfer`s out. Reads
/// never park — an empty buffer replies with an empty non-final batch and
/// the pump polls — because a parked reply would die with a crash anyway;
/// polling against the checkpointed position is what recovery can prove
/// correct.
#[derive(Debug)]
pub struct RecoverableBuffer {
    /// Stream position of `buf[0]`.
    base: u64,
    buf: Vec<Value>,
    /// Input records accepted (`base + buf.len()`).
    r: u64,
    ended: bool,
    recovered: bool,
}

impl RecoverableBuffer {
    /// A fresh, empty buffer.
    #[allow(clippy::new_without_default)]
    pub fn new() -> RecoverableBuffer {
        RecoverableBuffer {
            base: 0,
            buf: Vec::new(),
            r: 0,
            ended: false,
            recovered: false,
        }
    }

    fn state(&self) -> Value {
        Value::record([
            ("base", Value::Int(self.base as i64)),
            ("buf", Value::list(self.buf.clone())),
            ("r", Value::Int(self.r as i64)),
            ("ended", Value::Bool(self.ended)),
        ])
    }

    fn from_state(v: Value) -> Result<RecoverableBuffer> {
        Ok(RecoverableBuffer {
            base: uint_field(&v, "base")?,
            buf: items_field(&v, "buf")?,
            r: uint_field(&v, "r")?,
            ended: v.field("ended")?.as_bool()?,
            recovered: true,
        })
    }
}

impl EjectBehavior for RecoverableBuffer {
    fn type_name(&self) -> &'static str {
        "RecoverableBuffer"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        if self.recovered {
            ctx.metrics().record_recovered_stream();
        }
        let _ = ctx.checkpoint(&self.state());
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::WRITE => {
                let req = match WriteRequest::from_value(inv.arg) {
                    Ok(req) => req,
                    Err(e) => return reply.reply(Err(e)),
                };
                let seq = req.seq.unwrap_or(self.r);
                if seq > self.r {
                    return reply.reply(Err(EdenError::BadParameter(format!(
                        "write at {seq} leaves a gap after {}",
                        self.r
                    ))));
                }
                let skip = ((self.r - seq) as usize).min(req.items.len());
                self.buf.extend_from_slice(&req.items[skip..]);
                self.r += (req.items.len() - skip) as u64;
                self.ended |= req.end;
                if let Err(e) = ctx.checkpoint(&self.state()) {
                    return reply.reply(Err(e));
                }
                reply.reply(Ok(Value::Unit));
            }
            ops::TRANSFER => {
                let req = match TransferRequest::from_value(&inv.arg) {
                    Ok(req) => req,
                    Err(e) => return reply.reply(Err(e)),
                };
                let pos = req.pos.unwrap_or(self.base);
                if pos < self.base {
                    return reply.reply(Err(EdenError::BadParameter(format!(
                        "position {pos} below retained base {}",
                        self.base
                    ))));
                }
                // The position acknowledges everything before it; drop the
                // acknowledged prefix and persist the trim.
                let acked = ((pos - self.base) as usize).min(self.buf.len());
                if acked > 0 {
                    self.buf.drain(..acked);
                    self.base = pos;
                    if let Err(e) = ctx.checkpoint(&self.state()) {
                        return reply.reply(Err(e));
                    }
                }
                let offset = ((pos - self.base) as usize).min(self.buf.len());
                let n = req.max.min(self.buf.len() - offset);
                let batch = Batch {
                    items: self.buf[offset..offset + n].to_vec(),
                    end: self.ended && pos + n as u64 == self.r,
                };
                reply.reply(Ok(batch.to_value()));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// The conventional discipline's pump: a worker actively pulls from one
/// Eject and actively writes to the next, checkpointing its `{consumed,
/// written}` pair (via [`eden_kernel::ProcessContext::checkpoint`]) only
/// after the
/// downstream acknowledgement. A crashed pump resumes from that pair; both
/// neighbours' position arithmetic absorbs the replayed window.
#[derive(Debug)]
pub struct RecoverablePump {
    transform_name: String,
    upstream: Uid,
    downstream: Uid,
    c: u64,
    w: u64,
    started: bool,
    done: bool,
    batch: usize,
    registry: TransformRegistry,
    recovered: bool,
}

impl RecoverablePump {
    /// A fresh pump from `upstream` to `downstream` running
    /// `transform_name` (empty = identity).
    pub fn new(
        transform_name: &str,
        registry: &TransformRegistry,
        upstream: Uid,
        downstream: Uid,
        batch: usize,
    ) -> Result<RecoverablePump> {
        // Validate the name now so a typo fails at build, not mid-stream.
        registry.build(transform_name)?;
        Ok(RecoverablePump {
            transform_name: transform_name.to_owned(),
            upstream,
            downstream,
            c: 0,
            w: 0,
            started: false,
            done: false,
            batch: batch.max(1),
            registry: registry.clone(),
            recovered: false,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn state_value(
        transform: &str,
        upstream: Uid,
        downstream: Uid,
        c: u64,
        w: u64,
        started: bool,
        done: bool,
        batch: usize,
    ) -> Value {
        Value::record([
            ("transform", Value::str(transform.to_owned())),
            ("upstream", Value::Uid(upstream)),
            ("downstream", Value::Uid(downstream)),
            ("c", Value::Int(c as i64)),
            ("w", Value::Int(w as i64)),
            ("started", Value::Bool(started)),
            ("done", Value::Bool(done)),
            ("batch", Value::Int(batch as i64)),
        ])
    }

    fn state(&self) -> Value {
        Self::state_value(
            &self.transform_name,
            self.upstream,
            self.downstream,
            self.c,
            self.w,
            self.started,
            self.done,
            self.batch,
        )
    }

    fn from_state(v: Value, registry: &TransformRegistry) -> Result<RecoverablePump> {
        Ok(RecoverablePump {
            transform_name: v.field("transform")?.as_str()?.to_owned(),
            upstream: v.field("upstream")?.as_uid()?,
            downstream: v.field("downstream")?.as_uid()?,
            c: uint_field(&v, "c")?,
            w: uint_field(&v, "w")?,
            started: v.field("started")?.as_bool()?,
            done: v.field("done")?.as_bool()?,
            batch: uint_field(&v, "batch")?.max(1) as usize,
            registry: registry.clone(),
            recovered: true,
        })
    }

    fn spawn_pump(&self, ctx: &EjectContext) {
        let name = self.transform_name.clone();
        let registry = self.registry.clone();
        let (upstream, downstream, batch) = (self.upstream, self.downstream, self.batch);
        let (mut c, mut w) = (self.c, self.w);
        ctx.spawn_process("pump", move |pctx| {
            // Rebuilt fresh: recovery replays any unacknowledged inputs
            // through it, so a deterministic per-record transform lands in
            // the same state it crashed in.
            let mut transform = registry.build(&name).expect("validated at build");
            // Replay the unacknowledged window [w_in_inputs..c) — for a
            // per-record transform nothing needs replaying; the positions
            // already agree.
            loop {
                if pctx.should_stop() {
                    return;
                }
                let req = TransferRequest::primary(batch).at(c);
                let pending =
                    pctx.invoke_with(upstream, ops::TRANSFER, req.to_value(), stream_opts());
                let pulled = match pctx.wait_or_stop(pending).and_then(Batch::from_value) {
                    Ok(b) => b,
                    Err(EdenError::KernelShutdown) => return,
                    Err(_) => {
                        // eden-lint: nonblocking(spawn_process worker thread, not a pool worker)
                        std::thread::sleep(POLL);
                        continue;
                    }
                };
                if pulled.items.is_empty() && !pulled.end {
                    // Empty non-final read: the upstream buffer is dry but
                    // the stream is still open. Poll.
                    // eden-lint: nonblocking(spawn_process worker thread, not a pool worker)
                    std::thread::sleep(POLL);
                    continue;
                }
                let n = pulled.items.len() as u64;
                let mut out = apply(&mut transform, pulled.items);
                if pulled.end {
                    out.extend(flush(&mut transform));
                }
                let m = out.len() as u64;
                if !out.is_empty() || pulled.end {
                    let fwd = WriteRequest {
                        channel: Default::default(),
                        items: out,
                        end: pulled.end,
                        seq: Some(w),
                    };
                    let pending =
                        pctx.invoke_with(downstream, ops::WRITE, fwd.to_value(), stream_opts());
                    match pctx.wait_or_stop(pending) {
                        Ok(_) => {}
                        Err(EdenError::KernelShutdown) => return,
                        Err(_) => {
                            // The write may or may not have landed; re-pull
                            // from the unadvanced position and re-send with
                            // the same sequence — the receiver deduplicates.
                            // eden-lint: nonblocking(spawn_process worker thread, not a pool worker)
                            std::thread::sleep(POLL);
                            continue;
                        }
                    }
                }
                c += n;
                w += m;
                let _ = pctx.checkpoint(&RecoverablePump::state_value(
                    &name, upstream, downstream, c, w, true, pulled.end, batch,
                ));
                if pulled.end {
                    return;
                }
            }
        });
    }
}

impl EjectBehavior for RecoverablePump {
    fn type_name(&self) -> &'static str {
        "RecoverablePump"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        if self.recovered {
            ctx.metrics().record_recovered_stream();
        }
        let _ = ctx.checkpoint(&self.state());
        if self.started && !self.done {
            self.spawn_pump(ctx);
        }
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Start" => {
                if !self.started {
                    self.started = true;
                    if let Err(e) = ctx.checkpoint(&self.state()) {
                        return reply.reply(Err(e));
                    }
                    self.spawn_pump(ctx);
                }
                reply.reply(Ok(Value::Unit));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

// ---------------------------------------------------------------------------
// Registration and the pipeline driver.
// ---------------------------------------------------------------------------

/// Register the reactivation constructors for every recoverable stage
/// type. Must be called (once per kernel) before any recoverable stage can
/// come back from a crash; `registry` must contain every transform the
/// pipelines will mount.
pub fn install_recovery(kernel: &Kernel, registry: &TransformRegistry) {
    let reg = registry.clone();
    kernel.register_type("RecoverableSource", move |state| {
        let _ = &reg;
        match state {
            Some(v) => Ok(Box::new(RecoverableSource::from_state(v)?)),
            None => Err(EdenError::Application("source needs a checkpoint".into())),
        }
    });
    let reg = registry.clone();
    kernel.register_type("RecoverablePullFilter", move |state| match state {
        Some(v) => Ok(Box::new(RecoverablePullFilter::from_state(v, &reg)?)),
        None => Err(EdenError::Application("filter needs a checkpoint".into())),
    });
    kernel.register_type("RecoverablePushSource", move |state| match state {
        Some(v) => Ok(Box::new(RecoverablePushSource::from_state(v)?)),
        None => Err(EdenError::Application("source needs a checkpoint".into())),
    });
    let reg = registry.clone();
    kernel.register_type("RecoverablePushFilter", move |state| match state {
        Some(v) => Ok(Box::new(RecoverablePushFilter::from_state(v, &reg)?)),
        None => Err(EdenError::Application("filter needs a checkpoint".into())),
    });
    kernel.register_type("RecoverableAcceptor", move |state| match state {
        Some(v) => Ok(Box::new(RecoverableAcceptor::from_state(v)?)),
        None => Err(EdenError::Application("acceptor needs a checkpoint".into())),
    });
    kernel.register_type("RecoverableBuffer", move |state| match state {
        Some(v) => Ok(Box::new(RecoverableBuffer::from_state(v)?)),
        None => Err(EdenError::Application("buffer needs a checkpoint".into())),
    });
    let reg = registry.clone();
    kernel.register_type("RecoverablePump", move |state| match state {
        Some(v) => Ok(Box::new(RecoverablePump::from_state(v, &reg)?)),
        None => Err(EdenError::Application("pump needs a checkpoint".into())),
    });
}

/// Which communication discipline a recoverable pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryDiscipline {
    /// Active input / passive output: the driver pulls the tail filter.
    ReadOnly,
    /// Active output / passive input: a pump pushes through push filters
    /// into the acceptor.
    WriteOnly,
    /// Active input *and* output: pumps move records between passive
    /// buffers (n+1 extra Ejects, 2n+2 invocations per batch — §4's cost).
    Conventional,
}

impl RecoveryDiscipline {
    /// The discipline predicate this wiring is checked against.
    pub fn kind(self) -> DisciplineKind {
        match self {
            RecoveryDiscipline::ReadOnly => DisciplineKind::ReadOnly,
            RecoveryDiscipline::WriteOnly => DisciplineKind::WriteOnly,
            RecoveryDiscipline::Conventional => DisciplineKind::Conventional,
        }
    }
}

/// Render the wiring [`run_recoverable_pipeline`] would spawn for this
/// discipline and transform chain, in the same [`WiringGraph`] form the
/// non-recoverable [`crate::pipeline::PipelineSpec`] uses. The driver
/// checks this graph before spawning anything, so a recoverable pipeline
/// that would violate its discipline's shape rules fails statically.
pub fn recovery_graph(discipline: RecoveryDiscipline, transforms: &[&str]) -> WiringGraph {
    let mut graph = WiringGraph::new(discipline.kind());
    match discipline {
        RecoveryDiscipline::ReadOnly => {
            // Source ← pull filters ← driver: every hop is a positional
            // Transfer issued by the consumer.
            graph.node("source", NodeRole::Source);
            let mut prev = "source".to_owned();
            for (i, name) in transforms.iter().enumerate() {
                let stage = stage_name(i, name);
                graph.node(stage.clone(), NodeRole::Filter);
                graph.edge(prev, "Output", stage.clone());
                prev = stage;
            }
            graph.node("driver", NodeRole::Sink);
            graph.edge(prev, "Output", "driver");
        }
        RecoveryDiscipline::WriteOnly => {
            // Source → push filters → acceptor: every hop is a sequenced
            // Write issued by the producer.
            graph.node("source", NodeRole::Source);
            let mut prev = "source".to_owned();
            for (i, name) in transforms.iter().enumerate() {
                let stage = stage_name(i, name);
                graph.node(stage.clone(), NodeRole::Filter);
                graph.edge(prev, "Output", stage.clone());
                prev = stage;
            }
            graph.node("acceptor", NodeRole::Sink);
            graph.edge(prev, "Output", "acceptor");
        }
        RecoveryDiscipline::Conventional => {
            // Pumps pull from the passive stage behind them and push into
            // the one ahead; a buffer sits between consecutive pumps.
            graph.node("source", NodeRole::Source);
            graph.node("acceptor", NodeRole::Sink);
            let names: Vec<&str> = if transforms.is_empty() {
                vec![""]
            } else {
                transforms.to_vec()
            };
            let mut prev = "source".to_owned();
            for (i, name) in names.iter().enumerate() {
                let pump = format!("pump{i}:{}", if name.is_empty() { "copy" } else { name });
                graph.node(pump.clone(), NodeRole::Filter);
                graph.edge_mode(prev, "Output", pump.clone(), EdgeMode::Pull);
                let next = if i + 1 == names.len() {
                    "acceptor".to_owned()
                } else {
                    let buf = format!("buf{i}");
                    graph.node(buf.clone(), NodeRole::Buffer);
                    buf
                };
                graph.edge_mode(pump, "Output", next.clone(), EdgeMode::Push);
                prev = next;
            }
        }
    }
    graph
}

fn stage_name(i: usize, name: &str) -> String {
    format!("stage{i}:{}", if name.is_empty() { "copy" } else { name })
}

/// The result of a recoverable pipeline run.
#[derive(Debug)]
pub struct RecoveryRun {
    /// The records that reached the end of the pipeline, in order.
    pub output: Vec<Value>,
    /// Every Eject the pipeline spawned (sources, filters, buffers, pumps,
    /// acceptor), head first. Exposed so chaos tests can crash them.
    pub stages: Vec<Uid>,
    /// The trace id the run's spans carry — stable across retries and
    /// checkpoint-driven reactivation, so the recovered replay is part of
    /// the same causal tree as the first attempt.
    pub trace: u64,
}

/// Build and run a recoverable pipeline of `transforms` over `items` and
/// wait (up to `timeout`) for the complete output.
///
/// [`install_recovery`] must have been called on this kernel with a
/// registry containing every named transform. The run rides out injected
/// faults and crashes of any stage; it fails only if the kernel shuts
/// down, a fatal (non-retryable) error surfaces, or `timeout` passes.
pub fn run_recoverable_pipeline(
    kernel: &Kernel,
    discipline: RecoveryDiscipline,
    items: Vec<Value>,
    transforms: &[&str],
    registry: &TransformRegistry,
    batch: usize,
    timeout: Duration,
) -> Result<RecoveryRun> {
    let violations = recovery_graph(discipline, transforms).check();
    if !violations.is_empty() {
        let msgs: Vec<String> = violations.iter().map(ToString::to_string).collect();
        return Err(EdenError::Discipline(msgs.join("; ")));
    }
    let deadline = Instant::now() + timeout;
    let batch = batch.max(1);
    // One trace for the whole recoverable affair. Retries re-send under the
    // span captured at first issue, and a reactivated stage's coordinator
    // inherits the ambient of the invocation that woke it, so the trace id
    // survives crash/reactivate cycles — the recovery replay and the first
    // attempt reconstruct as one tree.
    let root = eden_core::span::SpanContext::root();
    let _ambient = eden_core::span::enter(Some(root));
    let trace = root.trace;
    match discipline {
        RecoveryDiscipline::ReadOnly => {
            let mut stages = vec![kernel.spawn(Box::new(RecoverableSource::new(items)))?];
            let mut upstream = stages[0];
            for name in transforms {
                upstream = kernel.spawn(Box::new(RecoverablePullFilter::new(
                    name, registry, upstream, batch,
                )?))?;
                stages.push(upstream);
            }
            let mut output = Vec::new();
            let mut pos = 0u64;
            loop {
                let remaining = deadline
                    .checked_duration_since(Instant::now())
                    .ok_or(EdenError::Timeout)?;
                let req = TransferRequest::primary(batch).at(pos);
                let reply = kernel
                    .invoke_with(upstream, ops::TRANSFER, req.to_value(), stream_opts())
                    .wait_timeout(remaining)?;
                let b = Batch::from_value(reply)?;
                pos += b.items.len() as u64;
                output.extend(b.items);
                if b.end {
                    return Ok(RecoveryRun {
                        output,
                        stages,
                        trace,
                    });
                }
            }
        }
        RecoveryDiscipline::WriteOnly => {
            let acceptor = kernel.spawn(Box::new(RecoverableAcceptor::new()))?;
            let mut downstream = acceptor;
            let mut stages = vec![acceptor];
            for name in transforms.iter().rev() {
                downstream = kernel.spawn(Box::new(RecoverablePushFilter::new(
                    name, registry, downstream,
                )?))?;
                stages.push(downstream);
            }
            let source = kernel.spawn(Box::new(RecoverablePushSource::new(
                items, downstream, batch,
            )))?;
            stages.push(source);
            stages.reverse(); // head first
            kernel
                .invoke_with(source, "Start", Value::Unit, control_opts())
                .wait()?;
            let active: Vec<Uid> = stages[..stages.len() - 1].to_vec();
            drive_to_end(kernel, acceptor, &active, deadline).map(|output| RecoveryRun {
                output,
                stages,
                trace,
            })
        }
        RecoveryDiscipline::Conventional => {
            let source = kernel.spawn(Box::new(RecoverableSource::new(items)))?;
            let acceptor = kernel.spawn(Box::new(RecoverableAcceptor::new()))?;
            // With no transforms a single identity pump still has to move
            // the records.
            let names: Vec<&str> = if transforms.is_empty() {
                vec![""]
            } else {
                transforms.to_vec()
            };
            let mut stages = vec![source];
            let mut pumps = Vec::new();
            let mut prev = source;
            for (i, name) in names.iter().enumerate() {
                let next = if i + 1 == names.len() {
                    acceptor
                } else {
                    kernel.spawn(Box::new(RecoverableBuffer::new()))?
                };
                let pump = kernel.spawn(Box::new(RecoverablePump::new(
                    name, registry, prev, next, batch,
                )?))?;
                pumps.push(pump);
                stages.push(pump);
                if next != acceptor {
                    stages.push(next);
                }
                prev = next;
            }
            stages.push(acceptor);
            for pump in &pumps {
                kernel
                    .invoke_with(*pump, "Start", Value::Unit, control_opts())
                    .wait()?;
            }
            let nudge: Vec<Uid> = stages[..stages.len() - 1].to_vec();
            drive_to_end(kernel, acceptor, &nudge, deadline).map(|output| RecoveryRun {
                output,
                stages,
                trace,
            })
        }
    }
}

/// Resume a write-only or conventional pipeline on a **rebuilt kernel** —
/// the process-restart shape of recovery. `stages` is the head-first list
/// a previous [`RecoveryRun`] reported (its last element is the acceptor);
/// every one of them now exists only as a passive representation replayed
/// out of the durable store the new kernel was built over.
///
/// Nothing is respawned: the driver simply invokes the old UIDs.
/// Activation-on-invocation rebuilds each stage from its checkpoint, the
/// push source's and pumps' `activate` restart their worker processes from
/// the checkpointed positions, and the sequence arithmetic absorbs the
/// replayed window — the same machinery that rides out a single-stage
/// crash rides out losing the whole kernel.
///
/// [`install_recovery`] must have been called on the new kernel first.
pub fn resume_recoverable_pipeline(
    kernel: &Kernel,
    stages: &[Uid],
    timeout: Duration,
) -> Result<Vec<Value>> {
    let (&acceptor, nudge) = stages
        .split_last()
        .ok_or_else(|| EdenError::Application("no stages to resume".into()))?;
    drive_to_end(kernel, acceptor, nudge, Instant::now() + timeout)
}

/// Poll the acceptor until the stream closes, nudging every other stage
/// with a fault-immune `Describe` each round so a crashed *active* stage
/// (which nobody else invokes) gets reactivated.
fn drive_to_end(
    kernel: &Kernel,
    acceptor: Uid,
    nudge: &[Uid],
    deadline: Instant,
) -> Result<Vec<Value>> {
    loop {
        if Instant::now() >= deadline {
            return Err(EdenError::Timeout);
        }
        let reply = kernel
            .invoke_with(acceptor, READ_ALL, Value::Unit, control_opts())
            .wait_timeout(Duration::from_secs(5))?;
        let b = Batch::from_value(reply)?;
        if b.end {
            return Ok(b.items);
        }
        for stage in nudge {
            // Reactivation-on-invocation is the point; the reply is not.
            let _ = kernel
                .invoke_with(*stage, ops::DESCRIBE, Value::Unit, control_opts())
                .wait_timeout(Duration::from_secs(5));
        }
        eden_kernel::blocking(|| std::thread::sleep(Duration::from_millis(2)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_wiring_conforms_in_every_discipline() {
        for discipline in [
            RecoveryDiscipline::ReadOnly,
            RecoveryDiscipline::WriteOnly,
            RecoveryDiscipline::Conventional,
        ] {
            for chain in [&[][..], &["upcase"][..], &["upcase", "grep"][..]] {
                let violations = recovery_graph(discipline, chain).check();
                assert!(
                    violations.is_empty(),
                    "{discipline:?} over {chain:?}: {violations:?}"
                );
            }
        }
    }

    #[test]
    fn conventional_recovery_graph_pairs_pumps_with_buffers() {
        let graph = recovery_graph(RecoveryDiscipline::Conventional, &["a", "b", "c"]);
        let buffers = graph
            .nodes
            .values()
            .filter(|r| **r == NodeRole::Buffer)
            .count();
        let pumps = graph
            .nodes
            .values()
            .filter(|r| **r == NodeRole::Filter)
            .count();
        assert_eq!(pumps, 3);
        assert_eq!(buffers, 2); // between consecutive pumps only
    }
}
