//! Data sinks.
//!
//! In the read-only discipline the sink is the *pump*: "output devices such
//! as terminals and printers would provide a potentially infinite supply of
//! *Read* invocations. Connecting a terminal to a filter Eject would be
//! rather like starting a pump" (§4). [`SinkEject`] is that device: from the
//! moment it activates, a worker process pulls from the configured source
//! until end-of-stream.
//!
//! In the write-only discipline the sink is passive:
//! [`AcceptorSinkEject`] merely accepts `Write` invocations. Faithfully to
//! §5, it *cannot tell its writers apart* — which is exactly why write-only
//! transput has no controlled fan-in.

use eden_core::op::ops;
use eden_core::{EdenError, Uid, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, ReplyHandle, RouteCache};

use crate::batching::AdaptiveBatch;
use crate::collector::Collector;
use crate::protocol::{Batch, ChannelId, TransferRequest, WriteRequest};

/// An active-input sink: pumps a source dry and lands the records in a
/// [`Collector`].
#[derive(Debug)]
pub struct SinkEject {
    source: Uid,
    channel: ChannelId,
    batch: AdaptiveBatch,
    collector: Collector,
}

impl SinkEject {
    /// Pump `source`'s primary channel in batches of `batch` records.
    pub fn new(source: Uid, batch: usize, collector: Collector) -> SinkEject {
        SinkEject::on_channel(source, ChannelId::output(), batch, collector)
    }

    /// Pump a specific channel of `source` — how report windows read
    /// `Read(ReportStream)` in Figure 4.
    pub fn on_channel(
        source: Uid,
        channel: ChannelId,
        batch: usize,
        collector: Collector,
    ) -> SinkEject {
        SinkEject {
            source,
            channel,
            batch: AdaptiveBatch::fixed(batch.max(1)),
            collector,
        }
    }

    /// Let the pump grow its per-`Transfer` batch up to `max` while the
    /// upstream keeps returning full batches (and fall back when it
    /// starves). `max == 0` keeps the batch fixed.
    pub fn adaptive_batch(mut self, max: usize) -> SinkEject {
        let (min, _) = self.batch.bounds();
        if max > min {
            self.batch = AdaptiveBatch::new(min, max);
        }
        self
    }
}

impl EjectBehavior for SinkEject {
    fn type_name(&self) -> &'static str {
        "StreamSink"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        let source = self.source;
        let channel = self.channel;
        let batch = self.batch.clone();
        let collector = self.collector.clone();
        ctx.spawn_process("pump", move |pctx| {
            // One route, pulled until the stream ends: the textbook case
            // for caching it.
            let mut cache = RouteCache::new();
            loop {
                if pctx.should_stop() {
                    return;
                }
                let max = batch.current();
                let req = TransferRequest { channel, max, pos: None };
                let pending =
                    pctx.invoke_routed(&mut cache, source, ops::TRANSFER, req.to_value());
                match pctx.wait_or_stop(pending).and_then(Batch::from_value) {
                    Ok(b) => {
                        // Saturated upstream → fatter batches; a starved
                        // reply (well under what we asked for) → fall
                        // back towards the floor. The shrink threshold is
                        // deliberately far below the grow threshold:
                        // partial batches are normal under concurrency
                        // and must not collapse the dial.
                        if b.items.len() * 2 >= max {
                            batch.grow();
                        } else if !b.end && b.items.len() * 8 < max {
                            batch.shrink();
                        }
                        if !b.items.is_empty() {
                            collector.append(b.items);
                        }
                        if b.end {
                            collector.finish();
                            return;
                        }
                    }
                    Err(EdenError::KernelShutdown) => return,
                    Err(e) => {
                        collector.fail(e);
                        return;
                    }
                }
            }
        });
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            // How many records this sink has landed so far.
            "Progress" => reply.reply(Ok(Value::Int(self.collector.records_seen() as i64))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// A passive-input sink for the write-only discipline: "sinks would always
/// be ready to accept [write invocations]" (§5).
#[derive(Debug)]
pub struct AcceptorSinkEject {
    collector: Collector,
    ended: bool,
}

impl AcceptorSinkEject {
    /// Accept writes into `collector`; finish it when the end flag arrives.
    pub fn new(collector: Collector) -> AcceptorSinkEject {
        AcceptorSinkEject {
            collector,
            ended: false,
        }
    }
}

impl EjectBehavior for AcceptorSinkEject {
    fn type_name(&self) -> &'static str {
        "AcceptorSink"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::WRITE => match WriteRequest::from_value(inv.arg) {
                Ok(w) => {
                    // Deliberately no check of *who* wrote: the acceptor
                    // cannot distinguish one writer making k writes from k
                    // writers making one write each (§5).
                    if !w.items.is_empty() {
                        self.collector.append(w.items);
                    }
                    if w.end && !self.ended {
                        self.ended = true;
                        self.collector.finish();
                    }
                    reply.reply(Ok(Value::Unit));
                }
                Err(e) => reply.reply(Err(e)),
            },
            "Progress" => reply.reply(Ok(Value::Int(self.collector.records_seen() as i64))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceEject, VecSource};
    use eden_kernel::Kernel;
    use std::time::Duration;

    #[test]
    fn sink_pumps_source_dry() {
        let kernel = Kernel::new();
        let source = kernel
            .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
                (0..20).map(Value::Int).collect(),
            )))))
            .unwrap();
        let collector = Collector::new();
        let _sink = kernel
            .spawn(Box::new(SinkEject::new(source, 4, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items, (0..20).map(Value::Int).collect::<Vec<_>>());
        kernel.shutdown();
    }

    #[test]
    fn sink_reports_progress() {
        let kernel = Kernel::new();
        let source = kernel
            .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
                (0..5).map(Value::Int).collect(),
            )))))
            .unwrap();
        let collector = Collector::new();
        let sink = kernel
            .spawn(Box::new(SinkEject::new(source, 1, collector.clone())))
            .unwrap();
        collector.wait_done(Duration::from_secs(10)).unwrap();
        let got = kernel.invoke(sink, "Progress", Value::Unit).wait().unwrap();
        assert_eq!(got, Value::Int(5));
        kernel.shutdown();
    }

    #[test]
    fn sink_observes_source_crash() {
        // A source that never ends, then crashes: the sink must fail the
        // collector, not hang.
        let kernel = Kernel::new();
        let source = kernel
            .spawn(Box::new(SourceEject::new(Box::new(
                crate::source::FnSource::new(u64::MAX, |i| Value::Int(i as i64)),
            ))))
            .unwrap();
        let collector = Collector::null();
        let _sink = kernel
            .spawn(Box::new(SinkEject::new(source, 2, collector.clone())))
            .unwrap();
        while collector.records_seen() < 4 {
            std::thread::sleep(Duration::from_millis(1));
        }
        kernel.crash(source).unwrap();
        let err = collector.wait_done(Duration::from_secs(10)).unwrap_err();
        // Depending on timing the pump observes the crash of its in-flight
        // Transfer or the source's subsequent disappearance; both are
        // correct reports of the fault.
        assert!(
            matches!(err, EdenError::EjectCrashed(u) | EdenError::NoSuchEject(u) if u == source),
            "unexpected error: {err}"
        );
        kernel.shutdown();
    }

    #[test]
    fn acceptor_accepts_writes_until_end() {
        let kernel = Kernel::new();
        let collector = Collector::new();
        let acceptor = kernel
            .spawn(Box::new(AcceptorSinkEject::new(collector.clone())))
            .unwrap();
        kernel
            .invoke(
                acceptor,
                ops::WRITE,
                WriteRequest::more(vec![Value::Int(1), Value::Int(2)]).to_value(),
            ).wait()
            .unwrap();
        kernel
            .invoke(
                acceptor,
                ops::WRITE,
                WriteRequest::last(vec![Value::Int(3)]).to_value(),
            ).wait()
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(5)).unwrap();
        assert_eq!(items, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        kernel.shutdown();
    }

    #[test]
    fn acceptor_cannot_distinguish_writers() {
        // Two writers interleave; the acceptor sees one merged stream.
        // This is the §5 "no fan-in" property made concrete.
        let kernel = Kernel::new();
        let collector = Collector::new();
        let acceptor = kernel
            .spawn(Box::new(AcceptorSinkEject::new(collector.clone())))
            .unwrap();
        for writer in 0..2i64 {
            for i in 0..3i64 {
                kernel
                    .invoke(
                        acceptor,
                        ops::WRITE,
                        WriteRequest::more(vec![Value::Int(writer * 10 + i)]).to_value(),
                    ).wait()
                    .unwrap();
            }
        }
        kernel
            .invoke(acceptor, ops::WRITE, WriteRequest::last(vec![]).to_value()).wait()
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(5)).unwrap();
        assert_eq!(items.len(), 6, "all records land in one undifferentiated stream");
        kernel.shutdown();
    }

    #[test]
    fn acceptor_rejects_malformed_write() {
        let kernel = Kernel::new();
        let acceptor = kernel
            .spawn(Box::new(AcceptorSinkEject::new(Collector::new())))
            .unwrap();
        let err = kernel
            .invoke(acceptor, ops::WRITE, Value::Int(3)).wait()
            .unwrap_err();
        assert!(matches!(err, EdenError::BadParameter(_)));
        kernel.shutdown();
    }
}
