//! Adaptive batch sizing for stream connections.
//!
//! §4's efficiency argument is about invocations per datum: a bigger batch
//! per `Transfer`/`Write` amortises the invocation cost over more records,
//! at the price of latency and buffer memory. The right size depends on the
//! consumer, which the producer cannot know statically — so instead of a
//! fixed `batch: 16`, an [`AdaptiveBatch`] starts at a configured minimum
//! and doubles when the connection shows it is invocation-bound (a starved
//! puller, a saturated write window) and halves when batching overshoots
//! demand (records pile up unread, acknowledgements come back instantly).
//!
//! The current size lives in a shared atomic: the coordinator (which sees
//! demand) adjusts it, while the worker that actually issues the transfers
//! reads it — no locks, no messages. Growth is multiplicative in both
//! directions so the size converges in O(log(max/min)) adjustments and
//! never oscillates faster than the signal driving it.
//!
//! Semantics are unaffected by construction: the batch size only changes
//! *how many* records one invocation moves, never which records move —
//! the equivalence tests in `tests/discipline_equivalence.rs` run the same
//! streams with adaptation on and off and require identical output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A batch-size dial shared between the party observing demand and the
/// party issuing transfers. Clones share the dial.
#[derive(Debug, Clone)]
pub struct AdaptiveBatch {
    current: Arc<AtomicUsize>,
    min: usize,
    max: usize,
}

impl AdaptiveBatch {
    /// An adaptive size starting at `min`, doubling up to `max`. If
    /// `max <= min` the size is fixed at `min` (see [`fixed`](Self::fixed)).
    pub fn new(min: usize, max: usize) -> AdaptiveBatch {
        let min = min.max(1);
        let max = max.max(min);
        AdaptiveBatch {
            current: Arc::new(AtomicUsize::new(min)),
            min,
            max,
        }
    }

    /// A size that never changes — what a plain `batch: n` config yields.
    pub fn fixed(n: usize) -> AdaptiveBatch {
        AdaptiveBatch::new(n, n)
    }

    /// The size to use for the next transfer.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// True if `grow`/`shrink` can never change the size.
    pub fn is_fixed(&self) -> bool {
        self.min == self.max
    }

    /// The configured bounds.
    pub fn bounds(&self) -> (usize, usize) {
        (self.min, self.max)
    }

    /// The connection is invocation-bound: double the batch (clamped).
    pub fn grow(&self) {
        if self.is_fixed() {
            return;
        }
        let cur = self.current.load(Ordering::Relaxed);
        let next = (cur.saturating_mul(2)).min(self.max);
        if next != cur {
            // A racing adjustment may win; both were computed from live
            // signals, so either outcome is acceptable.
            let _ = self
                .current
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Batching overshot demand: halve the batch (clamped).
    pub fn shrink(&self) {
        if self.is_fixed() {
            return;
        }
        let cur = self.current.load(Ordering::Relaxed);
        let next = (cur / 2).max(self.min);
        if next != cur {
            let _ = self
                .current
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_shrinks_within_bounds() {
        let b = AdaptiveBatch::new(4, 32);
        assert_eq!(b.current(), 4);
        b.grow();
        b.grow();
        assert_eq!(b.current(), 16);
        b.grow();
        b.grow(); // clamped
        assert_eq!(b.current(), 32);
        for _ in 0..10 {
            b.shrink();
        }
        assert_eq!(b.current(), 4);
    }

    #[test]
    fn fixed_never_moves() {
        let b = AdaptiveBatch::fixed(16);
        assert!(b.is_fixed());
        b.grow();
        b.shrink();
        assert_eq!(b.current(), 16);
    }

    #[test]
    fn clones_share_the_dial() {
        let a = AdaptiveBatch::new(2, 64);
        let b = a.clone();
        a.grow();
        assert_eq!(b.current(), 4);
    }

    #[test]
    fn degenerate_bounds_are_sanitised() {
        let b = AdaptiveBatch::new(0, 0);
        assert_eq!(b.current(), 1);
        assert!(b.is_fixed());
        let b = AdaptiveBatch::new(8, 2);
        assert!(b.is_fixed());
        assert_eq!(b.current(), 8);
    }
}
