//! The asymmetric stream communication system of Black's SOSP 1983 paper,
//! layered over the Eden kernel.
//!
//! The paper's observation: there are *four* transput primitives — active
//! input, passive output, active output, passive input — and a stream
//! system needs only one **corresponding pair** of them:
//!
//! | discipline | filter performs | pump | fan-in | fan-out |
//! |---|---|---|---|---|
//! | read-only ([`read_only`]) | active input + passive output | the sink | natural | via channels (§5) |
//! | write-only ([`write_only`]) | passive input + active output | the source | impossible | natural |
//! | conventional ([`conventional`]) | active input + active output | every filter | natural | natural |
//!
//! The conventional discipline pays for its symmetry with n+1 passive
//! buffer Ejects and 2n+2 invocations per datum where the asymmetric
//! disciplines need n+2 Ejects and n+1 invocations (§4).
//!
//! # Quick start
//!
//! ```
//! use eden_core::Value;
//! use eden_kernel::Kernel;
//! use eden_transput::{Discipline, PipelineSpec};
//! use eden_transput::transform::map_fn;
//! use std::time::Duration;
//!
//! let kernel = Kernel::new();
//! let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
//!     .source_vec((0..5).map(Value::Int).collect())
//!     .stage(Box::new(map_fn("square", |v| {
//!         let i = v.as_int().unwrap();
//!         Value::Int(i * i)
//!     })))
//!     .build(&kernel)
//!     .unwrap()
//!     .run(Duration::from_secs(10))
//!     .unwrap();
//! assert_eq!(run.output[4], Value::Int(16));
//! kernel.shutdown();
//! ```
//!
//! A [`PipelineSpec`] is kernel-free until `build`: the same value can be
//! rendered as a [`conform::WiringGraph`] and statically checked against
//! the discipline predicates (see [`conform`]) — `build` refuses specs
//! whose wiring violates them.


pub mod batching;
pub mod bytestream;
pub mod channels;
pub mod collector;
pub mod conform;
pub mod conventional;
pub mod devices;
pub mod pipeline;
pub mod protocol;
pub mod read_only;
pub mod recovery;
pub mod sink;
pub mod source;
pub mod stdio;
pub mod transform;
pub mod write_only;

pub use batching::AdaptiveBatch;
pub use channels::{ChannelPolicy, ChannelSpec, ChannelTable};
pub use collector::Collector;
pub use conform::{DisciplineKind, Rule, Violation, WiringGraph};
pub use pipeline::{Discipline, Pipeline, PipelineRun, PipelineSpec};
pub use protocol::{Batch, ChannelId, TransferRequest, WriteRequest};
pub use recovery::{
    install_recovery, recovery_graph, resume_recoverable_pipeline, run_recoverable_pipeline,
    RecoveryDiscipline, RecoveryRun,
    TransformRegistry,
};
pub use transform::{Emitter, Transform};
