//! Channel tables: the source side of §5's multi-output scheme.
//!
//! A multi-output Eject declares its channels in a [`ChannelTable`]. Under
//! [`ChannelPolicy::Integer`] the identifiers are well-known small numbers
//! (what the 1983 prototype ran); under [`ChannelPolicy::Capability`] each
//! channel's identifier is a fresh UID that can only be learned via the
//! `GetChannel` invocation — "whoever sets up a pipeline must ask each
//! filter for the UIDs of its channels, and then pass them on" (§5).

use eden_core::{EdenError, Result, Uid};

use crate::protocol::{ChannelId, OUTPUT_NAME};

/// How channel identifiers are minted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelPolicy {
    /// Channel *i* in declaration order gets `ChannelId::Number(i)`.
    /// Convenient, documented, forgeable.
    #[default]
    Integer,
    /// Every channel gets a fresh unforgeable `ChannelId::Cap`.
    Capability,
}

/// One declared output channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// The documented name ("Output", "Report", ...).
    pub name: String,
    /// The identifier readers must present.
    pub id: ChannelId,
}

/// The declared output channels of a source or filter.
#[derive(Debug, Clone, Default)]
pub struct ChannelTable {
    specs: Vec<ChannelSpec>,
    policy: ChannelPolicy,
}

impl ChannelTable {
    /// A table with only the primary `Output` channel, integer policy.
    pub fn single_output() -> ChannelTable {
        ChannelTable::new(ChannelPolicy::Integer, [OUTPUT_NAME])
    }

    /// Declare channels in order under the given policy. The first name
    /// is the primary output.
    pub fn new<I, S>(policy: ChannelPolicy, names: I) -> ChannelTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let specs = names
            .into_iter()
            .enumerate()
            .map(|(i, name)| ChannelSpec {
                name: name.into(),
                id: match policy {
                    ChannelPolicy::Integer => ChannelId::Number(i as u32),
                    ChannelPolicy::Capability => ChannelId::Cap(Uid::fresh()),
                },
            })
            .collect();
        ChannelTable { specs, policy }
    }

    /// The policy this table was built with.
    pub fn policy(&self) -> ChannelPolicy {
        self.policy
    }

    /// Number of declared channels.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when no channels are declared.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The declared channels, primary first.
    pub fn specs(&self) -> &[ChannelSpec] {
        &self.specs
    }

    /// The identifier of the primary (first-declared) channel.
    pub fn primary(&self) -> ChannelId {
        self.specs.first().map(|s| s.id).unwrap_or_default()
    }

    /// Look up a channel's index by the identifier a reader presented.
    /// This is the access check: an identifier not in the table (a guessed
    /// number, a forged or foreign UID) is refused.
    pub fn index_of(&self, id: ChannelId) -> Result<usize> {
        self.specs
            .iter()
            .position(|s| s.id == id)
            .ok_or_else(|| match id {
                ChannelId::Number(n) => {
                    EdenError::NoSuchChannel(format!("no channel numbered {n}"))
                }
                ChannelId::Cap(_) => EdenError::NotAuthorized(
                    "presented capability does not name any channel".into(),
                ),
            })
    }

    /// Look up a channel's identifier by documented name (the `GetChannel`
    /// service).
    pub fn id_of(&self, name: &str) -> Result<ChannelId> {
        self.specs
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.id)
            .ok_or_else(|| EdenError::NoSuchChannel(format!("no channel named `{name}`")))
    }

    /// The name at a given index (for diagnostics).
    pub fn name_at(&self, index: usize) -> Option<&str> {
        self.specs.get(index).map(|s| s.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::REPORT_NAME;

    #[test]
    fn integer_policy_numbers_in_order() {
        let t = ChannelTable::new(ChannelPolicy::Integer, [OUTPUT_NAME, REPORT_NAME]);
        assert_eq!(t.id_of(OUTPUT_NAME).unwrap(), ChannelId::Number(0));
        assert_eq!(t.id_of(REPORT_NAME).unwrap(), ChannelId::Number(1));
        assert_eq!(t.primary(), ChannelId::Number(0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn capability_policy_mints_unique_uids() {
        let t = ChannelTable::new(ChannelPolicy::Capability, [OUTPUT_NAME, REPORT_NAME]);
        let a = t.id_of(OUTPUT_NAME).unwrap();
        let b = t.id_of(REPORT_NAME).unwrap();
        assert_ne!(a, b);
        assert!(matches!(a, ChannelId::Cap(_)));
    }

    #[test]
    fn index_lookup_enforces_access() {
        let t = ChannelTable::new(ChannelPolicy::Integer, [OUTPUT_NAME, REPORT_NAME]);
        assert_eq!(t.index_of(ChannelId::Number(1)).unwrap(), 1);
        // A guessed number outside the table is NoSuchChannel...
        assert!(matches!(
            t.index_of(ChannelId::Number(9)),
            Err(EdenError::NoSuchChannel(_))
        ));
        // ...but a forged capability is NotAuthorized.
        assert!(matches!(
            t.index_of(ChannelId::Cap(Uid::fresh())),
            Err(EdenError::NotAuthorized(_))
        ));
    }

    #[test]
    fn guessing_works_under_integer_policy_only() {
        // The §5 threat: "if E is told to read from F's channel 1, nothing
        // prevents it from reading from F's channel 2 as well" — true for
        // integers, false for capabilities.
        let ints = ChannelTable::new(ChannelPolicy::Integer, [OUTPUT_NAME, REPORT_NAME]);
        assert!(ints.index_of(ChannelId::Number(1)).is_ok());
        let caps = ChannelTable::new(ChannelPolicy::Capability, [OUTPUT_NAME, REPORT_NAME]);
        assert!(caps.index_of(ChannelId::Number(1)).is_err());
    }

    #[test]
    fn unknown_name_is_error() {
        let t = ChannelTable::single_output();
        assert!(t.id_of("Bogus").is_err());
        assert_eq!(t.name_at(0), Some(OUTPUT_NAME));
        assert_eq!(t.name_at(5), None);
    }
}
