//! The conventional discipline: filters with **active input and active
//! output**, glued by **passive buffer** Ejects (§3, Figure 1).
//!
//! "Even though filter F_i performs active output, and filter F_{i+1}
//! performs active input, they cannot be connected directly because these
//! operations are not complementary. The passive buffer provides the active
//! transput operations with the necessary correspondents."
//!
//! [`PassiveBufferEject`] is the Unix pipe: it performs passive input (it
//! accepts `Write`s, parking the writer when full) and passive output (it
//! answers `Transfer`s, parking the reader when empty). [`PumpFilterEject`]
//! is the Unix filter: a worker process alternately `Transfer`s from
//! upstream and `Write`s downstream — it both transforms *and pumps*.
//!
//! This is the baseline the paper's cost comparison is made against:
//! n filters need n+1 buffers (2n+3 entities) and move each datum with
//! 2n+2 invocations, versus n+2 entities and n+1 invocations read-only.

use std::collections::VecDeque;

use eden_core::op::ops;
use eden_core::{EdenError, Uid, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, ReplyHandle, RouteCache};

use crate::protocol::{Batch, ChannelId, TransferRequest, WriteRequest};
use crate::transform::{Emitter, Transform};
use crate::write_only::{OutputPort, OutputWiring};

/// A parked reader.
#[derive(Debug)]
struct ReadWaiter {
    max: usize,
    reply: ReplyHandle,
}

/// A parked writer, holding the records that did not yet fit.
#[derive(Debug)]
struct WriteWaiter {
    request: WriteRequest,
    reply: ReplyHandle,
}

/// The Unix pipe as an Eject: a bounded queue doing passive transput on
/// both faces.
#[derive(Debug)]
pub struct PassiveBufferEject {
    capacity: usize,
    buffer: VecDeque<Value>,
    ended: bool,
    readers: VecDeque<ReadWaiter>,
    writers: VecDeque<WriteWaiter>,
}

impl PassiveBufferEject {
    /// A buffer holding at most `capacity` records (writers park beyond).
    pub fn new(capacity: usize) -> PassiveBufferEject {
        PassiveBufferEject {
            capacity: capacity.max(1),
            buffer: VecDeque::new(),
            ended: false,
            readers: VecDeque::new(),
            writers: VecDeque::new(),
        }
    }

    /// Move parked writes into the buffer while space allows, then answer
    /// parked reads while data (or end) allows.
    fn settle(&mut self) {
        loop {
            let mut progressed = false;
            while self.buffer.len() < self.capacity {
                match self.writers.pop_front() {
                    Some(w) => {
                        self.admit(w.request);
                        w.reply.reply(Ok(Value::Unit));
                        progressed = true;
                    }
                    None => break,
                }
            }
            while let Some(front) = self.readers.front() {
                if self.buffer.is_empty() && !self.at_end() {
                    break;
                }
                let max = front.max;
                let r = self.readers.pop_front().expect("front checked");
                let n = max.min(self.buffer.len());
                let items: Vec<Value> = self.buffer.drain(..n).collect();
                let end = self.at_end();
                r.reply.reply(Ok(Batch { items, end }.to_value()));
                progressed = true;
            }
            if !progressed {
                return;
            }
        }
    }

    fn admit(&mut self, request: WriteRequest) {
        self.buffer.extend(request.items);
        if request.end {
            self.ended = true;
        }
    }

    /// End is visible to readers only once the buffer and the parked
    /// writes have fully drained.
    fn at_end(&self) -> bool {
        self.ended && self.buffer.is_empty() && self.writers.is_empty()
    }

    /// Records currently buffered (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.buffer.len()
    }
}

impl EjectBehavior for PassiveBufferEject {
    fn type_name(&self) -> &'static str {
        "PassiveBuffer"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::WRITE => match WriteRequest::from_value(inv.arg) {
                Ok(request) => {
                    if self.ended {
                        reply.reply(Err(EdenError::Application(
                            "write after end of stream".into(),
                        )));
                        return;
                    }
                    if self.buffer.len() >= self.capacity {
                        // Passive input under backpressure: park the writer.
                        reply.mark_deferred();
                        self.writers.push_back(WriteWaiter { request, reply });
                    } else {
                        self.admit(request);
                        reply.reply(Ok(Value::Unit));
                    }
                    self.settle();
                }
                Err(e) => reply.reply(Err(e)),
            },
            ops::TRANSFER => match TransferRequest::from_value(&inv.arg) {
                Ok(req) => {
                    if req.channel != ChannelId::output() {
                        reply.reply(Err(EdenError::NoSuchChannel(
                            "a pipe has a single unnamed stream".into(),
                        )));
                        return;
                    }
                    if self.buffer.is_empty() && !self.at_end() {
                        // Passive output with no data: park the reader —
                        // the "partial vacuum" of §4.
                        reply.mark_deferred();
                        self.readers.push_back(ReadWaiter {
                            max: req.max,
                            reply,
                        });
                    } else {
                        let n = req.max.min(self.buffer.len());
                        let items: Vec<Value> = self.buffer.drain(..n).collect();
                        let end = self.at_end();
                        reply.reply(Ok(Batch { items, end }.to_value()));
                    }
                    self.settle();
                }
                Err(e) => reply.reply(Err(e)),
            },
            "Occupancy" => reply.reply(Ok(Value::Int(self.occupancy() as i64))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// Everything the pump worker needs, moved out of the behaviour at
/// activation: transform, upstream, upstream channel, wiring, batch.
type PumpParts = (Box<dyn Transform>, Uid, ChannelId, OutputWiring, usize);

/// The Unix filter as an Eject: active on both faces, so it must sit
/// between passive buffers. Transforms *and pumps*.
#[derive(Debug)]
pub struct PumpFilterEject {
    /// Moved into the pump worker at activation.
    parts: Option<PumpParts>,
}

impl PumpFilterEject {
    /// Pump from `upstream`'s primary channel into `wiring`, transforming
    /// en route, `batch` records per transfer.
    pub fn new(
        transform: Box<dyn Transform>,
        upstream: Uid,
        wiring: OutputWiring,
        batch: usize,
    ) -> PumpFilterEject {
        PumpFilterEject {
            parts: Some((
                transform,
                upstream,
                ChannelId::output(),
                wiring,
                batch.max(1),
            )),
        }
    }

    /// As [`new`](Self::new) but reading a specific upstream channel.
    pub fn on_channel(
        transform: Box<dyn Transform>,
        upstream: Uid,
        channel: ChannelId,
        wiring: OutputWiring,
        batch: usize,
    ) -> PumpFilterEject {
        PumpFilterEject {
            parts: Some((transform, upstream, channel, wiring, batch.max(1))),
        }
    }
}

impl EjectBehavior for PumpFilterEject {
    fn type_name(&self) -> &'static str {
        "PumpFilter"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        let (mut transform, upstream, channel, wiring, batch) = match self.parts.take() {
            Some(p) => p,
            None => return,
        };
        ctx.spawn_process("pump", move |pctx| {
            // The pump invokes its two neighbours thousands of times;
            // cache their routes across iterations.
            let mut cache = RouteCache::new();
            loop {
                if pctx.should_stop() {
                    return;
                }
                let req = TransferRequest {
                    channel,
                    max: batch,
                    pos: None,
                };
                let pending = pctx.invoke_routed(&mut cache, upstream, ops::TRANSFER, req.to_value());
                let pulled = match pctx.wait_or_stop(pending).and_then(Batch::from_value) {
                    Ok(b) => b,
                    Err(_) => return,
                };
                let mut emitter = Emitter::new();
                for item in pulled.items {
                    transform.push(item, &mut emitter);
                }
                if pulled.end {
                    transform.flush(&mut emitter);
                }
                let mut send = |port: OutputPort, arg: Value| {
                    let pending = pctx.invoke_routed(&mut cache, port.uid, ops::WRITE, arg);
                    pctx.wait_or_stop(pending).map(|_| ())
                };
                if crate::write_only::deliver(&wiring, &mut emitter, pulled.end, &mut send)
                    .is_err()
                {
                    return;
                }
                if pulled.end {
                    return;
                }
            }
        });
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        reply.reply(Err(EdenError::NoSuchOperation {
            target: ctx.uid(),
            op: inv.op,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::sink::SinkEject;
    use crate::source::{PullSource, VecSource};
    use crate::transform::map_fn;
    use crate::write_only::{OutputPort, PushSourceEject};
    use eden_kernel::Kernel;
    use std::time::Duration;

    #[test]
    fn buffer_passive_both_faces() {
        let kernel = Kernel::new();
        let buf = kernel.spawn(Box::new(PassiveBufferEject::new(4))).unwrap();
        // Read first: parks (passive output with no data).
        let pending = kernel.invoke(buf, ops::TRANSFER, TransferRequest::primary(2).to_value());
        kernel
            .invoke(
                buf,
                ops::WRITE,
                WriteRequest::more(vec![Value::Int(1), Value::Int(2)]).to_value(),
            ).wait()
            .unwrap();
        let batch = Batch::from_value(pending.wait().unwrap()).unwrap();
        assert_eq!(batch.items, vec![Value::Int(1), Value::Int(2)]);
        assert!(!batch.end);
        kernel.shutdown();
    }

    #[test]
    fn buffer_parks_writers_when_full() {
        let kernel = Kernel::new();
        let buf = kernel.spawn(Box::new(PassiveBufferEject::new(2))).unwrap();
        kernel
            .invoke(
                buf,
                ops::WRITE,
                WriteRequest::more(vec![Value::Int(1), Value::Int(2)]).to_value(),
            ).wait()
            .unwrap();
        // Buffer is at capacity: the next write parks.
        let parked = kernel.invoke(
            buf,
            ops::WRITE,
            WriteRequest::more(vec![Value::Int(3)]).to_value(),
        );
        std::thread::sleep(Duration::from_millis(20));
        let occ = kernel.invoke(buf, "Occupancy", Value::Unit).wait().unwrap();
        assert_eq!(occ, Value::Int(2), "parked write must not be admitted yet");
        // Draining readmits the parked write and acks its writer.
        let got = kernel
            .invoke(buf, ops::TRANSFER, TransferRequest::primary(2).to_value()).wait()
            .unwrap();
        assert_eq!(Batch::from_value(got).unwrap().len(), 2);
        parked.wait().unwrap();
        let got = kernel
            .invoke(buf, ops::TRANSFER, TransferRequest::primary(2).to_value()).wait()
            .unwrap();
        assert_eq!(
            Batch::from_value(got).unwrap().items,
            vec![Value::Int(3)]
        );
        kernel.shutdown();
    }

    #[test]
    fn buffer_end_visible_after_drain() {
        let kernel = Kernel::new();
        let buf = kernel.spawn(Box::new(PassiveBufferEject::new(8))).unwrap();
        kernel
            .invoke(
                buf,
                ops::WRITE,
                WriteRequest::last(vec![Value::Int(1)]).to_value(),
            ).wait()
            .unwrap();
        let got = kernel
            .invoke(buf, ops::TRANSFER, TransferRequest::primary(4).to_value()).wait()
            .unwrap();
        let batch = Batch::from_value(got).unwrap();
        assert_eq!(batch.items, vec![Value::Int(1)]);
        assert!(batch.end);
        kernel.shutdown();
    }

    #[test]
    fn full_conventional_pipeline() {
        // source —W→ [pipe] ←R— pump-filter —W→ [pipe] ←R— sink
        // (Figure 1 with one filter.)
        let kernel = Kernel::new();
        let pipe_in = kernel.spawn(Box::new(PassiveBufferEject::new(8))).unwrap();
        let pipe_out = kernel.spawn(Box::new(PassiveBufferEject::new(8))).unwrap();
        let _filter = kernel
            .spawn(Box::new(PumpFilterEject::new(
                Box::new(map_fn("x10", |v| Value::Int(v.as_int().unwrap() * 10))),
                pipe_in,
                OutputWiring::primary_to(OutputPort::primary(pipe_out)),
                4,
            )))
            .unwrap();
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new((0..12).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(pipe_in)),
                4,
            )))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(pipe_out, 4, collector.clone())))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items, (0..12).map(|i| Value::Int(i * 10)).collect::<Vec<_>>());
        kernel.shutdown();
    }

    #[test]
    fn small_buffer_still_flows() {
        // Capacity 1 forces constant parking on both faces; the stream
        // must still complete (no deadlock).
        let kernel = Kernel::new();
        let pipe = kernel.spawn(Box::new(PassiveBufferEject::new(1))).unwrap();
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new((0..20).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(pipe)),
                1,
            )))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(pipe, 1, collector.clone())))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items.len(), 20);
        kernel.shutdown();
    }

    #[test]
    fn write_after_end_rejected() {
        let kernel = Kernel::new();
        let buf = kernel.spawn(Box::new(PassiveBufferEject::new(4))).unwrap();
        kernel
            .invoke(buf, ops::WRITE, WriteRequest::last(vec![]).to_value()).wait()
            .unwrap();
        let err = kernel
            .invoke(
                buf,
                ops::WRITE,
                WriteRequest::more(vec![Value::Int(1)]).to_value(),
            ).wait()
            .unwrap_err();
        assert!(matches!(err, EdenError::Application(_)));
        kernel.shutdown();
    }

    #[test]
    fn vecsource_trait_object_safety() {
        // PullSource must be usable as a boxed trait object.
        let mut s: Box<dyn PullSource> = Box::new(VecSource::new(vec![Value::Int(1)]));
        assert!(s.pull(1).end);
    }
}
