//! Byte-stream transput (§6).
//!
//! "The design of the Unix operating system is based on the assumption
//! that ... all programs communicate by byte-stream. Accordingly, all
//! files are considered to be an unstructured sequence of bytes. ...
//! Nothing I have said about Eden transput constrains Eden streams to be
//! streams of bytes. Streams of arbitrary records fit into the protocol
//! just as well."
//!
//! This module provides the byte flavour: chunked [`Value::Bytes`] records
//! and the two bridging transforms — [`LineSplitter`] (bytes → text lines)
//! and [`LineJoiner`] (text lines → bytes) — so byte-oriented and
//! record-oriented filters compose in one pipeline.

use bytes::{Bytes, BytesMut};
use eden_core::Value;

use crate::protocol::Batch;
use crate::source::PullSource;
use crate::transform::{Emitter, Transform};

/// A source of byte chunks over a single buffer.
#[derive(Debug)]
pub struct BytesSource {
    data: Bytes,
    offset: usize,
    chunk: usize,
}

impl BytesSource {
    /// Stream `data` in chunks of `chunk` bytes (per record; `Transfer`
    /// batching is independent and applies on top).
    pub fn new(data: impl Into<Bytes>, chunk: usize) -> BytesSource {
        BytesSource {
            data: data.into(),
            offset: 0,
            chunk: chunk.max(1),
        }
    }
}

impl PullSource for BytesSource {
    fn pull(&mut self, max: usize) -> Batch {
        let mut items = Vec::new();
        while items.len() < max && self.offset < self.data.len() {
            let end = (self.offset + self.chunk).min(self.data.len());
            items.push(Value::Bytes(self.data.slice(self.offset..end)));
            self.offset = end;
        }
        if self.offset >= self.data.len() {
            Batch::last(items)
        } else {
            Batch::more(items)
        }
    }
}

/// Reassemble a stream's byte records into one buffer (test/sink helper).
pub fn concat_bytes<'a>(items: impl IntoIterator<Item = &'a Value>) -> Bytes {
    let mut out = BytesMut::new();
    for item in items {
        match item {
            Value::Bytes(b) => out.extend_from_slice(b),
            Value::Str(s) => out.extend_from_slice(s.as_bytes()),
            _ => {}
        }
    }
    out.freeze()
}

/// Splits incoming byte chunks into `Value::Str` lines at `\n` boundaries,
/// buffering partial lines across chunk boundaries. The final unterminated
/// line (if any) is emitted at flush.
#[derive(Default)]
#[derive(Debug)]
pub struct LineSplitter {
    partial: Vec<u8>,
}

impl LineSplitter {
    /// A fresh splitter.
    pub fn new() -> LineSplitter {
        LineSplitter::default()
    }

    fn emit_line(buf: &mut Vec<u8>, out: &mut Emitter) {
        // Tolerate CRLF.
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        out.emit(Value::str(String::from_utf8_lossy(buf).into_owned()));
        buf.clear();
    }
}

impl Transform for LineSplitter {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        let chunk: &[u8] = match &item {
            Value::Bytes(b) => b,
            Value::Str(s) => s.as_bytes(),
            _ => {
                out.emit(item);
                return;
            }
        };
        for &byte in chunk {
            if byte == b'\n' {
                Self::emit_line(&mut self.partial, out);
            } else {
                self.partial.push(byte);
            }
        }
    }
    fn flush(&mut self, out: &mut Emitter) {
        if !self.partial.is_empty() {
            Self::emit_line(&mut self.partial, out);
        }
    }
    fn name(&self) -> &'static str {
        "line-splitter"
    }
}

/// Joins `Value::Str` lines back into byte chunks (one chunk per line,
/// newline-terminated) — the inverse of [`LineSplitter`] for
/// newline-terminated text.
#[derive(Default)]
#[derive(Debug)]
pub struct LineJoiner;

impl LineJoiner {
    /// A fresh joiner.
    pub fn new() -> LineJoiner {
        LineJoiner
    }
}

impl Transform for LineJoiner {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        match &item {
            Value::Str(s) => {
                let mut bytes = BytesMut::with_capacity(s.len() + 1);
                bytes.extend_from_slice(s.as_bytes());
                bytes.extend_from_slice(b"\n");
                out.emit(Value::Bytes(bytes.freeze()));
            }
            _ => out.emit(item),
        }
    }
    fn name(&self) -> &'static str {
        "line-joiner"
    }
}

/// Re-chunk a byte stream into fixed-size records (accumulates across
/// input boundaries; the final short chunk flushes at end).
#[derive(Debug)]
pub struct Rechunker {
    size: usize,
    pending: BytesMut,
}

impl Rechunker {
    /// Output chunks of exactly `size` bytes (except the last).
    pub fn new(size: usize) -> Rechunker {
        Rechunker {
            size: size.max(1),
            pending: BytesMut::new(),
        }
    }
}

impl Transform for Rechunker {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        match &item {
            Value::Bytes(b) => self.pending.extend_from_slice(b),
            Value::Str(s) => self.pending.extend_from_slice(s.as_bytes()),
            _ => {
                out.emit(item);
                return;
            }
        }
        while self.pending.len() >= self.size {
            let chunk = self.pending.split_to(self.size).freeze();
            out.emit(Value::Bytes(chunk));
        }
    }
    fn flush(&mut self, out: &mut Emitter) {
        if !self.pending.is_empty() {
            out.emit(Value::Bytes(self.pending.split().freeze()));
        }
    }
    fn name(&self) -> &'static str {
        "rechunk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::apply_offline;

    #[test]
    fn bytes_source_chunks_and_ends() {
        let mut s = BytesSource::new(&b"abcdefgh"[..], 3);
        let b = s.pull(2);
        assert_eq!(b.items.len(), 2);
        assert_eq!(b.items[0].as_bytes().unwrap().as_ref(), b"abc");
        assert!(!b.end);
        let b = s.pull(8);
        assert_eq!(b.items.len(), 1);
        assert_eq!(b.items[0].as_bytes().unwrap().as_ref(), b"gh");
        assert!(b.end);
    }

    #[test]
    fn splitter_handles_chunk_boundaries() {
        let chunks = vec![
            Value::bytes(&b"hel"[..]),
            Value::bytes(&b"lo\nwor"[..]),
            Value::bytes(&b"ld\ntail"[..]),
        ];
        let (out, _) = apply_offline(&mut LineSplitter::new(), chunks);
        assert_eq!(
            out,
            vec![Value::str("hello"), Value::str("world"), Value::str("tail")]
        );
    }

    #[test]
    fn splitter_tolerates_crlf() {
        let (out, _) = apply_offline(
            &mut LineSplitter::new(),
            vec![Value::bytes(&b"a\r\nb\n"[..])],
        );
        assert_eq!(out, vec![Value::str("a"), Value::str("b")]);
    }

    #[test]
    fn split_join_roundtrip() {
        let text = b"line one\nline two\nline three\n";
        let chunks = vec![Value::bytes(&text[..])];
        let (lines, _) = apply_offline(&mut LineSplitter::new(), chunks);
        let (rejoined, _) = apply_offline(&mut LineJoiner::new(), lines);
        assert_eq!(concat_bytes(rejoined.iter()).as_ref(), &text[..]);
    }

    #[test]
    fn rechunker_fixed_sizes() {
        let input = vec![Value::bytes(&b"abcde"[..]), Value::bytes(&b"fghij"[..])];
        let (out, _) = apply_offline(&mut Rechunker::new(4), input);
        let sizes: Vec<usize> = out
            .iter()
            .map(|v| v.as_bytes().unwrap().len())
            .collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(concat_bytes(out.iter()).as_ref(), b"abcdefghij");
    }

    #[test]
    fn non_byte_records_pass_through() {
        let (out, _) = apply_offline(&mut Rechunker::new(4), vec![Value::Int(1)]);
        assert_eq!(out, vec![Value::Int(1)]);
    }

    #[test]
    fn empty_source_is_end() {
        let mut s = BytesSource::new(Bytes::new(), 4);
        let b = s.pull(1);
        assert!(b.end && b.is_empty());
    }
}
