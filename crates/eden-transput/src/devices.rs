//! Device Ejects: behaviour-defined terminals, windows and trivial
//! sources.
//!
//! §4: "any Eject which responds to *Read* invocations is by definition a
//! source, and any Eject which generates them is a sink. The null sink is
//! an Eject which reads indiscriminately and ignores the data it is given.
//! An Eject which responds to a read invocation by returning the current
//! date and time is a source."
//!
//! Figure 4's caption: "It is assumed that the Report Window is designed
//! to read from multiple sources." [`WindowEject`] is that device: one
//! sink pumping several (source, channel) subscriptions concurrently,
//! labelling each record with its subscription.

use eden_core::op::ops;
use eden_core::{EdenError, Uid, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, ReplyHandle};

use crate::collector::Collector;
use crate::protocol::{Batch, ChannelId, TransferRequest};
use crate::source::PullSource;

/// One stream a window watches.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// A label shown on every record from this stream.
    pub label: String,
    /// The source Eject.
    pub source: Uid,
    /// Which of its channels to read.
    pub channel: ChannelId,
}

/// A display window that reads from multiple sources (Figure 4).
///
/// Each subscription gets its own pump process; records land in the shared
/// collector as `Record{from, item}`. The collector finishes when every
/// subscribed stream has ended.
#[derive(Debug)]
pub struct WindowEject {
    subscriptions: Vec<Subscription>,
    collector: Collector,
    batch: usize,
}

impl WindowEject {
    /// Watch `subscriptions`, landing labelled records in `collector`.
    pub fn new(
        subscriptions: Vec<Subscription>,
        batch: usize,
        collector: Collector,
    ) -> WindowEject {
        WindowEject {
            subscriptions,
            collector,
            batch: batch.max(1),
        }
    }
}

impl EjectBehavior for WindowEject {
    fn type_name(&self) -> &'static str {
        "ReportWindow"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        let total = self.subscriptions.len();
        if total == 0 {
            self.collector.finish();
            return;
        }
        let internal = ctx.internal_sender();
        for sub in self.subscriptions.clone() {
            let collector = self.collector.clone();
            let batch = self.batch;
            let internal = internal.clone();
            ctx.spawn_process(&format!("watch-{}", sub.label), move |pctx| {
                loop {
                    if pctx.should_stop() {
                        return;
                    }
                    let req = TransferRequest {
                        channel: sub.channel,
                        max: batch,
                        pos: None,
                    };
                    let pending = pctx.invoke(sub.source, ops::TRANSFER, req.to_value());
                    match pctx.wait_or_stop(pending).and_then(Batch::from_value) {
                        Ok(b) => {
                            if !b.items.is_empty() {
                                collector.append(
                                    b.items
                                        .into_iter()
                                        .map(|item| {
                                            Value::record([
                                                ("from", Value::str(sub.label.clone())),
                                                ("item", item),
                                            ])
                                        })
                                        .collect(),
                                );
                            }
                            if b.end {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                // Tell the coordinator one stream is done.
                let _ = internal.send(Value::str("stream-ended"));
            });
        }
    }

    fn internal(&mut self, _ctx: &EjectContext, _event: Value) {
        // Count ended streams by decrementing the remaining subscriptions.
        if let Some(sub) = self.subscriptions.pop() {
            drop(sub);
        }
        if self.subscriptions.is_empty() && !self.collector.is_done() {
            self.collector.finish();
        }
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Progress" => reply.reply(Ok(Value::Int(self.collector.records_seen() as i64))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// A deterministic clock source: each record is a monotonically increasing
/// "timestamp" record. The paper's date/time source, made reproducible.
#[derive(Debug)]
pub struct TickSource {
    next: i64,
    limit: i64,
}

impl TickSource {
    /// A clock producing `limit` ticks (use `i64::MAX` for "infinite").
    pub fn new(limit: i64) -> TickSource {
        TickSource { next: 0, limit }
    }
}

impl PullSource for TickSource {
    fn pull(&mut self, max: usize) -> Batch {
        let mut items = Vec::new();
        while items.len() < max && self.next < self.limit {
            items.push(Value::record([
                ("tick", Value::Int(self.next)),
                (
                    "display",
                    Value::str(format!(
                        "day {} {:02}:{:02}",
                        self.next / 1440,
                        (self.next / 60) % 24,
                        self.next % 60
                    )),
                ),
            ]));
            self.next += 1;
        }
        if self.next >= self.limit {
            Batch::last(items)
        } else {
            Batch::more(items)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SinkEject;
    use crate::source::{SourceEject, VecSource};
    use eden_kernel::Kernel;
    use std::time::Duration;

    #[test]
    fn window_merges_labelled_streams() {
        let kernel = Kernel::new();
        let subs: Vec<Subscription> = [("alpha", 3i64), ("beta", 2i64)]
            .into_iter()
            .map(|(label, n)| {
                let source = kernel
                    .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
                        (0..n).map(Value::Int).collect(),
                    )))))
                    .unwrap();
                Subscription {
                    label: label.to_owned(),
                    source,
                    channel: ChannelId::output(),
                }
            })
            .collect();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(WindowEject::new(subs, 4, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items.len(), 5);
        let alphas = items
            .iter()
            .filter(|r| r.field("from").unwrap().as_str().unwrap() == "alpha")
            .count();
        assert_eq!(alphas, 3);
        kernel.shutdown();
    }

    #[test]
    fn window_with_no_subscriptions_finishes_immediately() {
        let kernel = Kernel::new();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(WindowEject::new(vec![], 4, collector.clone())))
            .unwrap();
        assert!(collector.wait_done(Duration::from_secs(5)).unwrap().is_empty());
        kernel.shutdown();
    }

    #[test]
    fn tick_source_is_a_source() {
        let kernel = Kernel::new();
        let clock = kernel
            .spawn(Box::new(SourceEject::new(Box::new(TickSource::new(5)))))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(clock, 2, collector.clone())))
            .unwrap();
        let ticks = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(ticks.len(), 5);
        assert_eq!(ticks[4].field("tick").unwrap().as_int().unwrap(), 4);
        assert!(ticks[0]
            .field("display")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("day 0"));
        kernel.shutdown();
    }
}
