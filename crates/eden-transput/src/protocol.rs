//! The Eden stream transput protocol.
//!
//! "The Eden transput package is nothing more than such a protocol designed
//! to support the abstraction of a Sequence, together with a collection of
//! library routines which help user Ejects to obey it" (§6). This module is
//! the protocol half: the invocation shapes for `Transfer` (active input /
//! passive output — the "read only" discipline) and `Write` (active output /
//! passive input — the "write only" discipline), and the channel identifiers
//! of §5 that restore fan-out to the read-only model.
//!
//! Streams carry [`Value`] records, not just bytes (§6: "Streams of
//! arbitrary records fit into the protocol just as well").

use eden_core::{EdenError, Result, Uid, Value};

/// The conventional number of the primary output channel.
pub const CHANNEL_OUTPUT: u32 = 0;
/// The conventional number of the report (monitoring) channel of §5.
pub const CHANNEL_REPORT: u32 = 1;

/// The name of the primary output channel in channel tables.
pub const OUTPUT_NAME: &str = "Output";
/// The name of the report channel in channel tables.
pub const REPORT_NAME: &str = "Report";

/// Identifies one output stream of a multi-output source (§5).
///
/// * [`ChannelId::Number`] — "integer channel identifiers as described in
///   Section 5" (§7, the configuration Eden actually ran). Guessable: any
///   Eject that knows the source's UID can read any numbered channel.
/// * [`ChannelId::Cap`] — "use UIDs as channel identifiers: because UIDs
///   cannot be forged, the only Ejects which are able to make valid
///   ReadonChannel requests of F are those to which a channel identifier
///   has been given explicitly" (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelId {
    /// A well-known small integer (0 = primary output, 1 = reports, ...).
    Number(u32),
    /// An unforgeable capability channel.
    Cap(Uid),
}

impl ChannelId {
    /// The primary output channel.
    pub fn output() -> ChannelId {
        ChannelId::Number(CHANNEL_OUTPUT)
    }

    /// The report channel.
    pub fn report() -> ChannelId {
        ChannelId::Number(CHANNEL_REPORT)
    }
}

/// Encode for transport inside an invocation argument.
impl From<ChannelId> for Value {
    fn from(id: ChannelId) -> Value {
        match id {
            ChannelId::Number(n) => Value::Int(i64::from(n)),
            ChannelId::Cap(uid) => Value::Uid(uid),
        }
    }
}

/// Decode from an invocation argument.
impl TryFrom<&Value> for ChannelId {
    type Error = EdenError;

    fn try_from(v: &Value) -> Result<ChannelId> {
        match v {
            Value::Int(n) if *n >= 0 && *n <= i64::from(u32::MAX) => {
                Ok(ChannelId::Number(*n as u32))
            }
            Value::Uid(uid) => Ok(ChannelId::Cap(*uid)),
            other => Err(EdenError::BadParameter(format!(
                "channel id must be a small integer or a UID, got {}",
                other.kind()
            ))),
        }
    }
}

impl Default for ChannelId {
    fn default() -> Self {
        ChannelId::output()
    }
}

/// A batch of stream records plus the end-of-stream status.
///
/// §7: the bootstrap system's `Transfer` replies with data "and eventually
/// with an indication that the end of the file had been reached". Carrying
/// `end` alongside the final records (rather than as a separate empty
/// reply) keeps the per-datum invocation counts exactly at the paper's
/// n+1 / 2n+2 figures.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Batch {
    /// The records, in stream order.
    pub items: Vec<Value>,
    /// True if no records will follow these.
    pub end: bool,
}

impl Batch {
    /// A batch carrying records, with more to come.
    pub fn more(items: Vec<Value>) -> Batch {
        Batch { items, end: false }
    }

    /// The final batch (possibly carrying the last records).
    pub fn last(items: Vec<Value>) -> Batch {
        Batch { items, end: true }
    }

    /// An empty end-of-stream batch.
    pub fn end() -> Batch {
        Batch {
            items: Vec::new(),
            end: true,
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the batch carries no records.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Encode as a reply value. The items move behind one shared
    /// allocation; no record is copied.
    pub fn to_value(self) -> Value {
        Value::record([
            ("items", Value::list(self.items)),
            ("end", Value::Bool(self.end)),
        ])
    }

    /// Decode from a reply value. Consumes the reply: when the reply is
    /// the only reference (the common case) the items are moved out, not
    /// copied.
    pub fn from_value(v: Value) -> Result<Batch> {
        let end = v.field("end")?.as_bool()?;
        let items = match v.take_field("items") {
            Ok(Value::List(items)) => items.into_vec(),
            _ => return Err(EdenError::BadParameter("batch lacks `items` list".into())),
        };
        Ok(Batch { items, end })
    }
}

/// The argument of a `Transfer` invocation: "give me up to `max` records
/// from channel `channel`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRequest {
    /// Which output stream of the source to read (§5).
    pub channel: ChannelId,
    /// Upper bound on records returned; sources may return fewer.
    pub max: usize,
    /// Stream position of the first record wanted, counted from the start
    /// of the stream. `None` means "wherever you left off" (the classic
    /// stateful protocol). A position doubles as a cumulative
    /// acknowledgement: a source that sees `pos = n` knows records before
    /// `n` were delivered and may discard them, and a *recovered* source
    /// re-serves from `n` exactly — this is what makes a `Transfer` retry
    /// after a crash lose and duplicate nothing.
    pub pos: Option<u64>,
}

impl TransferRequest {
    /// A request on the primary channel.
    pub fn primary(max: usize) -> TransferRequest {
        TransferRequest {
            channel: ChannelId::output(),
            max,
            pos: None,
        }
    }

    /// The same request pinned to an absolute stream position.
    pub fn at(mut self, pos: u64) -> TransferRequest {
        self.pos = Some(pos);
        self
    }

    /// Encode as an invocation argument.
    pub fn to_value(self) -> Value {
        let mut fields = vec![
            ("channel", Value::from(self.channel)),
            ("max", Value::Int(self.max as i64)),
        ];
        if let Some(pos) = self.pos {
            fields.push(("pos", Value::Int(pos as i64)));
        }
        Value::record(fields)
    }

    /// Decode from an invocation argument.
    pub fn from_value(v: &Value) -> Result<TransferRequest> {
        let channel = ChannelId::try_from(v.field("channel")?)?;
        let max = v.field("max")?.as_int()?;
        if max <= 0 {
            return Err(EdenError::BadParameter(format!(
                "Transfer max must be positive, got {max}"
            )));
        }
        let pos = match v.field_opt("pos") {
            Some(p) => Some(p.as_int()?.max(0) as u64),
            None => None,
        };
        Ok(TransferRequest {
            channel,
            max: max as usize,
            pos,
        })
    }
}

/// The argument of a `Write` invocation: "here are records for channel
/// `channel`" (write-only discipline, §5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRequest {
    /// Which input stream of the receiver these records belong to.
    pub channel: ChannelId,
    /// The records.
    pub items: Vec<Value>,
    /// True if this is the final write on the stream.
    pub end: bool,
    /// Stream position of the first record in `items`, counted from the
    /// start of the stream. `None` means "append" (the classic protocol).
    /// A sequenced receiver compares `seq` with how many records it has
    /// already accepted and skips the overlap, so a `Write` re-sent after
    /// a crash (whose predecessor may or may not have landed) duplicates
    /// nothing.
    pub seq: Option<u64>,
}

impl WriteRequest {
    /// A write on the primary channel with more to come.
    pub fn more(items: Vec<Value>) -> WriteRequest {
        WriteRequest {
            channel: ChannelId::output(),
            items,
            end: false,
            seq: None,
        }
    }

    /// The final write on the primary channel.
    pub fn last(items: Vec<Value>) -> WriteRequest {
        WriteRequest {
            channel: ChannelId::output(),
            items,
            end: true,
            seq: None,
        }
    }

    /// The same write pinned to an absolute stream position.
    pub fn at(mut self, seq: u64) -> WriteRequest {
        self.seq = Some(seq);
        self
    }

    /// Encode as an invocation argument. The items move behind one shared
    /// allocation; no record is copied.
    pub fn to_value(self) -> Value {
        WriteRequest::value_shared_at(self.channel, Value::list(self.items), self.end, self.seq)
    }

    /// Encode a `Write` argument around an already-shared items list
    /// (`items` must be a `Value::List`). This is the fan-out path: one
    /// batch allocation is built once and every consumer's argument holds
    /// a reference bump of it, not a copy.
    pub fn value_shared(channel: ChannelId, items: Value, end: bool) -> Value {
        WriteRequest::value_shared_at(channel, items, end, None)
    }

    /// [`WriteRequest::value_shared`] with an explicit stream position for
    /// the first item.
    pub fn value_shared_at(channel: ChannelId, items: Value, end: bool, seq: Option<u64>) -> Value {
        debug_assert!(matches!(items, Value::List(_)));
        let mut fields = vec![
            ("channel", Value::from(channel)),
            ("items", items),
            ("end", Value::Bool(end)),
        ];
        if let Some(seq) = seq {
            fields.push(("seq", Value::Int(seq as i64)));
        }
        Value::record(fields)
    }

    /// Decode from an invocation argument. Consumes the argument: the
    /// items are moved out when unaliased, spine-copied (reference bumps,
    /// no payload bytes) when the batch is shared with other consumers.
    pub fn from_value(v: Value) -> Result<WriteRequest> {
        let channel = ChannelId::try_from(v.field("channel")?)?;
        let end = v.field("end")?.as_bool()?;
        let seq = match v.field_opt("seq") {
            Some(s) => Some(s.as_int()?.max(0) as u64),
            None => None,
        };
        let items = match v.take_field("items") {
            Ok(Value::List(items)) => items.into_vec(),
            _ => return Err(EdenError::BadParameter("write lacks `items` list".into())),
        };
        Ok(WriteRequest {
            channel,
            items,
            end,
            seq,
        })
    }
}

/// The argument of a `GetChannel` invocation: ask a source for the channel
/// identifier of a named output stream. With capability channels this is
/// the *only* way to learn the identifier (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetChannelRequest {
    /// The documented name of the channel, e.g. `"Output"` or `"Report"`.
    pub name: String,
}

impl GetChannelRequest {
    /// Encode as an invocation argument.
    pub fn to_value(self) -> Value {
        Value::record([("name", Value::from(self.name))])
    }

    /// Decode from an invocation argument.
    pub fn from_value(v: &Value) -> Result<GetChannelRequest> {
        Ok(GetChannelRequest {
            name: v.field("name")?.as_str()?.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_id_roundtrip() {
        for id in [
            ChannelId::Number(0),
            ChannelId::Number(7),
            ChannelId::Cap(Uid::fresh()),
        ] {
            assert_eq!(ChannelId::try_from(&Value::from(id)).unwrap(), id);
        }
    }

    #[test]
    fn channel_id_rejects_garbage() {
        assert!(ChannelId::try_from(&Value::str("zero")).is_err());
        assert!(ChannelId::try_from(&Value::Int(-1)).is_err());
    }

    #[test]
    fn batch_roundtrip() {
        let b = Batch::more(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(Batch::from_value(b.clone().to_value()).unwrap(), b);
        let e = Batch::end();
        assert!(e.is_empty());
        assert_eq!(Batch::from_value(e.clone().to_value()).unwrap(), e);
    }

    #[test]
    fn batch_last_carries_items_and_end() {
        let b = Batch::last(vec![Value::Int(9)]);
        assert_eq!(b.len(), 1);
        assert!(b.end);
    }

    #[test]
    fn transfer_request_roundtrip() {
        let r = TransferRequest {
            channel: ChannelId::report(),
            max: 32,
            pos: None,
        };
        assert_eq!(TransferRequest::from_value(&r.to_value()).unwrap(), r);
    }

    #[test]
    fn transfer_request_rejects_nonpositive_max() {
        let bad = TransferRequest::primary(1).to_value();
        let mut fields = match bad {
            Value::Record(f) => f,
            _ => unreachable!(),
        };
        fields.to_mut()[1].1 = Value::Int(0);
        assert!(TransferRequest::from_value(&Value::Record(fields)).is_err());
    }

    #[test]
    fn write_request_roundtrip() {
        let w = WriteRequest {
            channel: ChannelId::Cap(Uid::fresh()),
            items: vec![Value::str("a")],
            end: true,
            seq: None,
        };
        assert_eq!(WriteRequest::from_value(w.clone().to_value()).unwrap(), w);
    }

    #[test]
    fn positional_requests_roundtrip() {
        let t = TransferRequest::primary(8).at(1000);
        assert_eq!(TransferRequest::from_value(&t.to_value()).unwrap(), t);
        let w = WriteRequest::more(vec![Value::Int(1)]).at(42);
        assert_eq!(WriteRequest::from_value(w.clone().to_value()).unwrap(), w);
        // Requests without a position decode with `None`, so old-style
        // senders interoperate with sequenced receivers.
        assert_eq!(
            TransferRequest::from_value(&TransferRequest::primary(8).to_value())
                .unwrap()
                .pos,
            None
        );
    }

    #[test]
    fn get_channel_roundtrip() {
        let g = GetChannelRequest {
            name: REPORT_NAME.to_owned(),
        };
        assert_eq!(
            GetChannelRequest::from_value(&g.clone().to_value()).unwrap(),
            g
        );
    }

    #[test]
    fn default_channel_is_primary() {
        assert_eq!(ChannelId::default(), ChannelId::Number(CHANNEL_OUTPUT));
    }
}
