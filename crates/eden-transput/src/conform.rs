//! Static discipline conformance: the wiring graph and its predicates.
//!
//! Black's correctness argument is structural — a pipeline is sound
//! because of the *shape* of its wiring, not because of anything the
//! filters do at runtime (§3–§5). This module makes that shape a first-
//! class value: a [`WiringGraph`] of sources, filters, passive buffers,
//! and sinks, with directed data-flow edges labelled by channel name,
//! plus the channel *grants* recorded by the §5 connection protocol.
//!
//! [`check`] evaluates the discipline rules as graph predicates:
//!
//! * **read-only** admits fan-in but never fan-out: no `(producer,
//!   channel)` pair may feed two consumers ([`Rule::FanOutUnderReadOnly`]);
//! * **write-only** is the exact dual: no consumer may be fed by two
//!   producers ([`Rule::FanInUnderWriteOnly`]);
//! * **conventional** is only sound when every active pair is glued by a
//!   passive buffer: an edge with no [`NodeRole::Buffer`] endpoint is a
//!   deadlock-in-waiting ([`Rule::UnbufferedFilterEdge`]);
//! * under the **capability** channel policy, every edge must be covered
//!   by a grant from the §5 `GetChannel` handshake — a consumer using a
//!   channel it was never granted is forging a capability
//!   ([`Rule::ChannelForgery`]).
//!
//! [`crate::pipeline::PipelineSpec::graph`] produces these graphs for
//! every in-repo pipeline (conforming by construction — `build` rejects
//! the spec otherwise); `eden-lint` additionally evaluates hand-written
//! violation fixtures to prove each rule fires.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which discipline's predicates apply to a graph. The shape rules need
/// only the discipline's identity, not its tuning knobs (`read_ahead`,
/// `push_ahead`, buffer capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisciplineKind {
    /// Active input + passive output; fan-in natural, fan-out forbidden.
    ReadOnly,
    /// Passive input + active output; fan-out natural, fan-in impossible.
    WriteOnly,
    /// Active both ways; every active pair needs a passive buffer.
    Conventional,
}

impl fmt::Display for DisciplineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DisciplineKind::ReadOnly => "read-only",
            DisciplineKind::WriteOnly => "write-only",
            DisciplineKind::Conventional => "conventional",
        })
    }
}

/// What a node *is* in the wiring, which determines which predicates see
/// it. Buffers are the only passive role; everything else is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Supplies records (a `PullSource` Eject, a program source, or an
    /// external Eject answering `Transfer`).
    Source,
    /// Transforms records; active on at least one side.
    Filter,
    /// A passive buffer Eject (conventional discipline glue).
    Buffer,
    /// Consumes records (the output collector or a report window).
    Sink,
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeRole::Source => "source",
            NodeRole::Filter => "filter",
            NodeRole::Buffer => "buffer",
            NodeRole::Sink => "sink",
        })
    }
}

/// Whether edges must be covered by grants ([`Rule::ChannelForgery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantPolicy {
    /// Channels are well-known small integers; no grants needed (§5's
    /// "simple" policy).
    Integer,
    /// Channel identifiers are unforgeable capabilities learned through
    /// `GetChannel`; every edge needs a recorded grant.
    Capability,
}

/// Who is active on an edge: the consumer (pull) or the producer (push).
///
/// The asymmetric predicates are mode-sensitive: fan-out is forbidden on
/// *pulled* channels (passive output serves one reader), fan-in on
/// *pushed* ports (active output writes to one acceptor). A write-only
/// pipeline may therefore legally contain a pull-wired fan-in sub-graph —
/// the §5 workaround of merging with a read-only filter behind a pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMode {
    /// The consumer actively reads; the producer's end is passive.
    Pull,
    /// The producer actively writes; the consumer's end is passive.
    Push,
    /// Both ends are active (conventional wiring) — sound only through a
    /// passive buffer.
    Rendezvous,
}

/// A directed data-flow edge: `consumer` reads (or is written) records
/// from `producer`'s channel `channel`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEdge {
    /// The node whose channel carries the records.
    pub producer: String,
    /// The producer-side channel name (`"Output"` for primary streams).
    pub channel: String,
    /// The node receiving the records.
    pub consumer: String,
    /// Which end is active.
    pub mode: EdgeMode,
}

/// A record of the §5 connection protocol: `consumer` was handed the
/// identifier of `producer`'s channel `channel` (via `GetChannel` or by
/// the wirer that spawned both ends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelGrant {
    /// The node that was granted access.
    pub consumer: String,
    /// The node whose channel the grant covers.
    pub producer: String,
    /// The granted channel's name.
    pub channel: String,
}

/// The wiring shape of one pipeline, ready for [`check`].
#[derive(Debug, Clone)]
pub struct WiringGraph {
    /// Which discipline's predicates apply.
    pub discipline: DisciplineKind,
    /// Whether [`Rule::ChannelForgery`] is in force.
    pub policy: GrantPolicy,
    /// Node name → role. Ordered so reports are deterministic.
    pub nodes: BTreeMap<String, NodeRole>,
    /// Directed data-flow edges.
    pub edges: Vec<GraphEdge>,
    /// Recorded channel grants.
    pub grants: Vec<ChannelGrant>,
}

impl WiringGraph {
    /// An empty graph under `discipline` with the integer channel policy.
    pub fn new(discipline: DisciplineKind) -> WiringGraph {
        WiringGraph {
            discipline,
            policy: GrantPolicy::Integer,
            nodes: BTreeMap::new(),
            edges: Vec::new(),
            grants: Vec::new(),
        }
    }

    /// Switch the channel policy (builder-style).
    pub fn policy(mut self, policy: GrantPolicy) -> WiringGraph {
        self.policy = policy;
        self
    }

    /// Add (or re-role) a node.
    pub fn node(&mut self, name: impl Into<String>, role: NodeRole) -> &mut Self {
        self.nodes.insert(name.into(), role);
        self
    }

    /// Add a data-flow edge `producer --channel--> consumer` in the
    /// discipline's native mode: pull under read-only, push under
    /// write-only, rendezvous (both ends active) under conventional.
    pub fn edge(
        &mut self,
        producer: impl Into<String>,
        channel: impl Into<String>,
        consumer: impl Into<String>,
    ) -> &mut Self {
        let mode = match self.discipline {
            DisciplineKind::ReadOnly => EdgeMode::Pull,
            DisciplineKind::WriteOnly => EdgeMode::Push,
            DisciplineKind::Conventional => EdgeMode::Rendezvous,
        };
        self.edge_mode(producer, channel, consumer, mode)
    }

    /// Add a data-flow edge with an explicit [`EdgeMode`] — for the
    /// pull-wired sub-graphs (merge filters, identity pumps) that appear
    /// inside source-pumped pipelines.
    pub fn edge_mode(
        &mut self,
        producer: impl Into<String>,
        channel: impl Into<String>,
        consumer: impl Into<String>,
        mode: EdgeMode,
    ) -> &mut Self {
        self.edges.push(GraphEdge {
            producer: producer.into(),
            channel: channel.into(),
            consumer: consumer.into(),
            mode,
        });
        self
    }

    /// Record a channel grant for `consumer` on `producer`'s `channel`.
    pub fn grant(
        &mut self,
        consumer: impl Into<String>,
        producer: impl Into<String>,
        channel: impl Into<String>,
    ) -> &mut Self {
        self.grants.push(ChannelGrant {
            consumer: consumer.into(),
            producer: producer.into(),
            channel: channel.into(),
        });
        self
    }

    /// Grant every edge — what the in-repo wirer does, since it performs
    /// the `GetChannel` handshake for each connection it makes itself.
    pub fn grant_all_edges(&mut self) -> &mut Self {
        let grants: Vec<ChannelGrant> = self
            .edges
            .iter()
            .map(|e| ChannelGrant {
                consumer: e.consumer.clone(),
                producer: e.producer.clone(),
                channel: e.channel.clone(),
            })
            .collect();
        self.grants.extend(grants);
        self
    }

    /// Evaluate every discipline predicate. Empty = conforming.
    pub fn check(&self) -> Vec<Violation> {
        check(self)
    }
}

/// Which predicate a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Two consumers on one `(producer, channel)` under read-only (§3:
    /// passive output serves *one* puller; fan-out needs explicit
    /// secondary channels, each with its own single consumer).
    FanOutUnderReadOnly,
    /// Two producers into one consumer under write-only (§3: the dual —
    /// active output pushes to *one* acceptor port).
    FanInUnderWriteOnly,
    /// A conventional edge with no passive buffer endpoint (§4, Figure 1:
    /// two active ends with no glue deadlock on rendezvous).
    UnbufferedFilterEdge,
    /// An edge not covered by any grant under the capability policy (§5:
    /// channel identifiers are unforgeable; using one you were never
    /// handed is a forgery).
    ChannelForgery,
    /// An edge endpoint that is not a declared node — always an error,
    /// whatever the discipline.
    UnknownNode,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::FanOutUnderReadOnly => "fan-out-under-read-only",
            Rule::FanInUnderWriteOnly => "fan-in-under-write-only",
            Rule::UnbufferedFilterEdge => "unbuffered-filter-edge",
            Rule::ChannelForgery => "channel-forgery",
            Rule::UnknownNode => "unknown-node",
        })
    }
}

/// One broken predicate, with the nodes that break it named.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The predicate that failed.
    pub rule: Rule,
    /// Human-readable account naming the offending nodes/edges.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// Evaluate the discipline predicates over `graph`. Deterministic order:
/// unknown nodes first, then the discipline's shape rule over edges in
/// insertion order, then forgery.
pub fn check(graph: &WiringGraph) -> Vec<Violation> {
    let mut violations = Vec::new();

    for edge in &graph.edges {
        for end in [&edge.producer, &edge.consumer] {
            if !graph.nodes.contains_key(end) {
                violations.push(Violation {
                    rule: Rule::UnknownNode,
                    message: format!(
                        "edge {} --{}--> {} references undeclared node `{}`",
                        edge.producer, edge.channel, edge.consumer, end
                    ),
                });
            }
        }
    }

    match graph.discipline {
        DisciplineKind::ReadOnly => {
            // Group consumers per pulled (producer, channel); >1 is fan-out.
            let mut consumers: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
            for e in graph.edges.iter().filter(|e| e.mode == EdgeMode::Pull) {
                consumers
                    .entry((&e.producer, &e.channel))
                    .or_default()
                    .push(&e.consumer);
            }
            for ((producer, channel), readers) in consumers {
                if readers.len() > 1 {
                    violations.push(Violation {
                        rule: Rule::FanOutUnderReadOnly,
                        message: format!(
                            "channel `{channel}` of `{producer}` feeds {} consumers ({}) — \
                             read-only wiring admits one reader per channel",
                            readers.len(),
                            readers.join(", ")
                        ),
                    });
                }
            }
        }
        DisciplineKind::WriteOnly => {
            // Group producers per pushed-into consumer; >1 is fan-in.
            // Pull edges are exempt: a read-only merge filter behind a
            // pump is the legal §5 fan-in workaround.
            let mut producers: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for e in graph.edges.iter().filter(|e| e.mode == EdgeMode::Push) {
                producers.entry(&e.consumer).or_default().insert(&e.producer);
            }
            for (consumer, writers) in producers {
                if writers.len() > 1 {
                    violations.push(Violation {
                        rule: Rule::FanInUnderWriteOnly,
                        message: format!(
                            "`{consumer}` is written by {} producers ({}) — \
                             write-only wiring cannot merge streams",
                            writers.len(),
                            writers.iter().copied().collect::<Vec<_>>().join(", ")
                        ),
                    });
                }
            }
        }
        DisciplineKind::Conventional => {
            // Only rendezvous edges (both ends active) need buffer glue;
            // an explicitly pull- or push-mode edge is asymmetric wiring,
            // sound by the asymmetric argument.
            for e in graph.edges.iter().filter(|e| e.mode == EdgeMode::Rendezvous) {
                let ends_buffered = [&e.producer, &e.consumer]
                    .iter()
                    .any(|n| graph.nodes.get(*n) == Some(&NodeRole::Buffer));
                if !ends_buffered {
                    violations.push(Violation {
                        rule: Rule::UnbufferedFilterEdge,
                        message: format!(
                            "edge {} --{}--> {} joins two active ends with no passive \
                             buffer between them",
                            e.producer, e.channel, e.consumer
                        ),
                    });
                }
            }
        }
    }

    if graph.policy == GrantPolicy::Capability {
        for e in &graph.edges {
            let granted = graph.grants.iter().any(|g| {
                g.consumer == e.consumer && g.producer == e.producer && g.channel == e.channel
            });
            if !granted {
                violations.push(Violation {
                    rule: Rule::ChannelForgery,
                    message: format!(
                        "`{}` uses channel `{}` of `{}` without a grant — \
                         capability identifiers must come from GetChannel",
                        e.consumer, e.channel, e.producer
                    ),
                });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(discipline: DisciplineKind) -> WiringGraph {
        let mut g = WiringGraph::new(discipline);
        g.node("src", NodeRole::Source)
            .node("f1", NodeRole::Filter)
            .node("sink", NodeRole::Sink)
            .edge("src", "Output", "f1")
            .edge("f1", "Output", "sink");
        g
    }

    #[test]
    fn linear_read_only_conforms() {
        assert!(linear(DisciplineKind::ReadOnly).check().is_empty());
    }

    #[test]
    fn linear_write_only_conforms() {
        assert!(linear(DisciplineKind::WriteOnly).check().is_empty());
    }

    #[test]
    fn fan_out_rejected_under_read_only() {
        let mut g = linear(DisciplineKind::ReadOnly);
        g.node("sink2", NodeRole::Sink).edge("f1", "Output", "sink2");
        let v = g.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FanOutUnderReadOnly);
    }

    #[test]
    fn report_channels_are_not_fan_out() {
        // A second consumer on a *different* channel of the same filter is
        // the §5 report-stream pattern, not fan-out.
        let mut g = linear(DisciplineKind::ReadOnly);
        g.node("report", NodeRole::Sink).edge("f1", "Report", "report");
        assert!(g.check().is_empty());
    }

    #[test]
    fn fan_in_rejected_under_write_only() {
        let mut g = linear(DisciplineKind::WriteOnly);
        g.node("src2", NodeRole::Source).edge("src2", "Output", "f1");
        let v = g.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FanInUnderWriteOnly);
    }

    #[test]
    fn fan_in_allowed_under_read_only() {
        let mut g = linear(DisciplineKind::ReadOnly);
        g.node("src2", NodeRole::Source).edge("src2", "Output", "f1");
        assert!(g.check().is_empty());
    }

    #[test]
    fn pull_wired_merge_is_legal_under_write_only() {
        // The §5 workaround: a read-only merge filter pulls both sources
        // and a pump pushes the merged stream onward. The fan-in exists
        // only on pull edges, which the write-only predicate exempts.
        let mut g = WiringGraph::new(DisciplineKind::WriteOnly);
        g.node("src1", NodeRole::Source)
            .node("src2", NodeRole::Source)
            .node("merge", NodeRole::Filter)
            .node("pump", NodeRole::Filter)
            .node("sink", NodeRole::Sink)
            .edge_mode("src1", "Output", "merge", EdgeMode::Pull)
            .edge_mode("src2", "Output", "merge", EdgeMode::Pull)
            .edge_mode("merge", "Output", "pump", EdgeMode::Pull)
            .edge("pump", "Output", "sink");
        assert!(g.check().is_empty(), "{:?}", g.check());
    }

    #[test]
    fn fan_out_allowed_under_write_only() {
        let mut g = linear(DisciplineKind::WriteOnly);
        g.node("sink2", NodeRole::Sink).edge("f1", "Output", "sink2");
        assert!(g.check().is_empty());
    }

    #[test]
    fn unbuffered_edge_rejected_under_conventional() {
        let v = linear(DisciplineKind::Conventional).check();
        assert_eq!(v.len(), 2, "both active-active edges flagged");
        assert!(v.iter().all(|v| v.rule == Rule::UnbufferedFilterEdge));
    }

    #[test]
    fn buffered_conventional_conforms() {
        let mut g = WiringGraph::new(DisciplineKind::Conventional);
        g.node("src", NodeRole::Source)
            .node("b0", NodeRole::Buffer)
            .node("f1", NodeRole::Filter)
            .node("b1", NodeRole::Buffer)
            .node("sink", NodeRole::Sink)
            .edge("src", "Output", "b0")
            .edge("b0", "Output", "f1")
            .edge("f1", "Output", "b1")
            .edge("b1", "Output", "sink");
        assert!(g.check().is_empty());
    }

    #[test]
    fn forgery_rejected_under_capability_policy() {
        let mut g = linear(DisciplineKind::ReadOnly);
        g.policy = GrantPolicy::Capability;
        g.grant("f1", "src", "Output"); // sink's edge is not granted
        let v = g.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ChannelForgery);
        assert!(v[0].message.contains("sink"));
    }

    #[test]
    fn grant_all_edges_satisfies_capability_policy() {
        let mut g = linear(DisciplineKind::ReadOnly);
        g.policy = GrantPolicy::Capability;
        g.grant_all_edges();
        assert!(g.check().is_empty());
    }

    #[test]
    fn integer_policy_needs_no_grants() {
        assert!(linear(DisciplineKind::ReadOnly).check().is_empty());
    }

    #[test]
    fn dangling_edge_is_flagged() {
        let mut g = WiringGraph::new(DisciplineKind::ReadOnly);
        g.node("src", NodeRole::Source).edge("src", "Output", "ghost");
        let v = g.check();
        assert_eq!(v[0].rule, Rule::UnknownNode);
    }

    #[test]
    fn violations_display_rule_and_nodes() {
        let mut g = linear(DisciplineKind::ReadOnly);
        g.node("sink2", NodeRole::Sink).edge("f1", "Output", "sink2");
        let text = g.check()[0].to_string();
        assert!(text.contains("fan-out-under-read-only"), "{text}");
        assert!(text.contains("f1"), "{text}");
    }
}
