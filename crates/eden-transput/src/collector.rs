//! A thread-safe landing pad for stream output, shared between sink Ejects
//! and the test/benchmark code that waits on them.

use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_core::{EdenError, Result, Value};
use parking_lot::{Condvar, Mutex};

#[derive(Debug, Default)]
struct State {
    items: Vec<Value>,
    records_seen: u64,
    done: bool,
    error: Option<EdenError>,
}

/// Accumulates records delivered by a sink and signals completion.
///
/// Cheap to clone; clones share state. `keep_items = false` turns it into
/// the paper's *null sink* ("an Eject which reads indiscriminately and
/// ignores the data it is given", §4) — it still counts records and signals
/// completion, which is what benchmarks need.
#[derive(Clone)]
#[derive(Debug)]
pub struct Collector {
    state: Arc<(Mutex<State>, Condvar)>,
    keep_items: bool,
}

impl Collector {
    /// A collector that retains every record.
    pub fn new() -> Collector {
        eden_core::stream::note_stream_opened();
        Collector {
            state: Arc::new((Mutex::new(State::default()), Condvar::new())),
            keep_items: true,
        }
    }

    /// A counting-only collector (the null sink).
    pub fn null() -> Collector {
        eden_core::stream::note_stream_opened();
        Collector {
            state: Arc::new((Mutex::new(State::default()), Condvar::new())),
            keep_items: false,
        }
    }

    /// Append records (called by sink Ejects).
    pub fn append(&self, items: Vec<Value>) {
        eden_core::stream::note_collected(items.len());
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        st.records_seen += items.len() as u64;
        if self.keep_items {
            st.items.extend(items);
        }
        cvar.notify_all();
    }

    /// Mark the stream complete (called once by the sink on end-of-stream).
    pub fn finish(&self) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        if !st.done {
            eden_core::stream::note_stream_closed();
        }
        st.done = true;
        cvar.notify_all();
    }

    /// Mark the stream failed: waiters observe the error instead of data.
    /// Used by sinks when their upstream crashes mid-stream.
    pub fn fail(&self, error: EdenError) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        if !st.done {
            eden_core::stream::note_stream_closed();
        }
        st.done = true;
        st.error = Some(error);
        cvar.notify_all();
    }

    /// The failure, if the stream failed.
    pub fn error(&self) -> Option<EdenError> {
        self.state.0.lock().error.clone()
    }

    /// True once the stream has completed.
    pub fn is_done(&self) -> bool {
        self.state.0.lock().done
    }

    /// Number of records delivered so far.
    pub fn records_seen(&self) -> u64 {
        self.state.0.lock().records_seen
    }

    /// A copy of the records delivered so far (empty for null collectors).
    pub fn items_so_far(&self) -> Vec<Value> {
        self.state.0.lock().items.clone()
    }

    /// Block until the stream completes, then return the records.
    pub fn wait_done(&self, deadline: Duration) -> Result<Vec<Value>> {
        let (lock, cvar) = &*self.state;
        let start = Instant::now();
        let mut st = lock.lock();
        while !st.done {
            let remaining = deadline
                .checked_sub(start.elapsed())
                .ok_or(EdenError::Timeout)?;
            // Test drivers call this from `main`, but behaviors may call
            // it mid-dispatch — compensate the pool either way.
            if eden_kernel::blocking(|| cvar.wait_for(&mut st, remaining)).timed_out() && !st.done {
                return Err(EdenError::Timeout);
            }
        }
        match st.error.clone() {
            Some(error) => Err(error),
            None => Ok(std::mem::take(&mut st.items)),
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_signals() {
        let c = Collector::new();
        let c2 = c.clone();
        let t = std::thread::spawn(move || {
            c2.append(vec![Value::Int(1)]);
            c2.append(vec![Value::Int(2)]);
            c2.finish();
        });
        let items = c.wait_done(Duration::from_secs(5)).unwrap();
        assert_eq!(items, vec![Value::Int(1), Value::Int(2)]);
        assert!(c.is_done());
        t.join().unwrap();
    }

    #[test]
    fn null_collector_counts_only() {
        let c = Collector::null();
        c.append(vec![Value::Int(1), Value::Int(2)]);
        c.finish();
        assert_eq!(c.records_seen(), 2);
        assert!(c.wait_done(Duration::from_secs(1)).unwrap().is_empty());
    }

    #[test]
    fn wait_times_out() {
        let c = Collector::new();
        assert_eq!(
            c.wait_done(Duration::from_millis(20)).unwrap_err(),
            EdenError::Timeout
        );
    }

    #[test]
    fn fail_propagates_to_waiters() {
        let c = Collector::new();
        c.fail(EdenError::EndOfStream);
        assert_eq!(
            c.wait_done(Duration::from_secs(1)).unwrap_err(),
            EdenError::EndOfStream
        );
        assert_eq!(c.error(), Some(EdenError::EndOfStream));
    }

    #[test]
    fn items_so_far_is_partial_view() {
        let c = Collector::new();
        c.append(vec![Value::Int(7)]);
        assert_eq!(c.items_so_far(), vec![Value::Int(7)]);
        assert!(!c.is_done());
    }
}
