//! The "write only" discipline: **active output** and **passive input**
//! (§5) — the exact dual of read-only.
//!
//! "Data sources would continually attempt to perform write invocations,
//! and sinks would always be ready to accept them. An Eject would
//! explicitly send data to the next Eject in a pipeline, but would not in
//! general be concerned with the origin of the data it processed."
//!
//! * [`PushSourceEject`] — the pump: a worker drains a local
//!   [`PullSource`] and `Write`s downstream until end.
//! * [`PushFilterEject`] — passive input (accepts `Write`), transforms,
//!   active output (issues `Write`s). Fan-*out* is natural here: every
//!   output channel may have any number of destinations (Figure 3's report
//!   streams are just extra destinations). Fan-*in* is not: a push filter
//!   cannot tell its writers apart.
//!
//! A `push_ahead` window reproduces the concurrency note of §4 in dual
//! form: with `push_ahead == 0` the filter forwards synchronously inside
//! the coordinator (end-to-end rendezvous); with `push_ahead > 0` a worker
//! drains an internal buffer so all stages run concurrently.

use eden_core::op::ops;
use eden_core::{EdenError, Result, Uid, Value};
use eden_kernel::{
    EjectBehavior, EjectContext, Invocation, ProcessContext, ReplyHandle, RouteCache,
};

use crate::batching::AdaptiveBatch;
use crate::protocol::{ChannelId, WriteRequest, OUTPUT_NAME};
use crate::source::PullSource;
use crate::transform::{Emitter, Transform};

/// One downstream connection: which Eject to write to, and the channel tag
/// the records carry (meaningful when the receiver multiplexes inputs).
#[derive(Debug, Clone, Copy)]
pub struct OutputPort {
    /// The receiving Eject.
    pub uid: Uid,
    /// The channel tag presented in the `Write`.
    pub channel: ChannelId,
}

impl OutputPort {
    /// The common case: write to the receiver's primary input.
    pub fn primary(uid: Uid) -> OutputPort {
        OutputPort {
            uid,
            channel: ChannelId::output(),
        }
    }
}

/// Where each named output channel of a transform goes. Entry 0 is the
/// primary output; multiple ports per channel give fan-out.
#[derive(Debug, Clone, Default)]
pub struct OutputWiring {
    routes: Vec<(String, Vec<OutputPort>)>,
}

impl OutputWiring {
    /// Wiring with only a primary destination.
    pub fn primary_to(port: OutputPort) -> OutputWiring {
        let mut w = OutputWiring::default();
        w.add(OUTPUT_NAME, port);
        w
    }

    /// Add a destination for a named channel.
    pub fn add(&mut self, channel: &str, port: OutputPort) -> &mut Self {
        match self.routes.iter_mut().find(|(name, _)| name == channel) {
            Some((_, ports)) => ports.push(port),
            None => self.routes.push((channel.to_owned(), vec![port])),
        }
        self
    }

    /// Destinations for a named channel (empty slice if none).
    pub fn ports_for(&self, channel: &str) -> &[OutputPort] {
        self.routes
            .iter()
            .find(|(name, _)| name == channel)
            .map(|(_, ports)| ports.as_slice())
            .unwrap_or(&[])
    }

    /// All wired channel names.
    pub fn channels(&self) -> impl Iterator<Item = &str> {
        self.routes.iter().map(|(name, _)| name.as_str())
    }

    /// Total number of wired destinations.
    pub fn fan_out(&self) -> usize {
        self.routes.iter().map(|(_, p)| p.len()).sum()
    }
}

/// Deliver a batch of (channel, items) to every wired destination.
/// `end` is forwarded on every channel so downstream streams close.
///
/// Fan-out shares one batch allocation: the items list is lifted into a
/// single shared `Value::List` per channel and every destination's `Write`
/// argument carries a reference bump of it — O(1) bytes moved per extra
/// consumer, where this used to deep-copy the whole batch per branch.
/// `send` receives the pre-encoded `Write` argument.
pub(crate) fn deliver<F>(
    wiring: &OutputWiring,
    emitter: &mut Emitter,
    end: bool,
    send: &mut F,
) -> Result<()>
where
    F: FnMut(OutputPort, Value) -> Result<()>,
{
    let primary = emitter.take_primary();
    let secondary = emitter.take_secondary();
    for (name, items) in std::iter::once((OUTPUT_NAME.to_owned(), primary)).chain(secondary) {
        let ports = wiring.ports_for(&name);
        if ports.is_empty() {
            continue; // Unwired channel: the records fall on the floor.
        }
        if items.is_empty() && !end {
            continue;
        }
        let shared_items = Value::list(items);
        for port in ports {
            send(
                *port,
                WriteRequest::value_shared(port.channel, shared_items.clone(), end),
            )?;
        }
    }
    Ok(())
}

/// The write-only pump: drains a [`PullSource`] into its wiring.
///
/// The pump starts on the `Start` invocation; the reply to `Start` is
/// deferred until the final write has been acknowledged, so
/// `invoke_sync(source, "Start", ..)` is "run the pipeline".
#[derive(Debug)]
pub struct PushSourceEject {
    source: Option<Box<dyn PullSource>>,
    wiring: OutputWiring,
    batch: usize,
    window: usize,
    /// Upper bound for adaptive batch sizing; 0 keeps `batch` fixed.
    batch_max: usize,
    started: bool,
}

impl PushSourceEject {
    /// Pump `source` into `wiring`, `batch` records per write, waiting for
    /// each acknowledgement before the next write (window = 1).
    pub fn new(
        source: Box<dyn PullSource>,
        wiring: OutputWiring,
        batch: usize,
    ) -> PushSourceEject {
        PushSourceEject::with_window(source, wiring, batch, 1)
    }

    /// As [`new`](Self::new) but keeping up to `window` writes in flight:
    /// "the sending of an invocation does not suspend the execution of the
    /// sending Eject" (§1), exploited for pipelining. Acknowledgements are
    /// collected in order; a window of 1 is the synchronous rendezvous.
    ///
    /// Windowing requires a single primary destination (fan-out wiring
    /// falls back to window 1 so every peer stays in lock-step).
    pub fn with_window(
        source: Box<dyn PullSource>,
        wiring: OutputWiring,
        batch: usize,
        window: usize,
    ) -> PushSourceEject {
        PushSourceEject {
            source: Some(source),
            wiring,
            batch: batch.max(1),
            window: window.max(1),
            batch_max: 0,
            started: false,
        }
    }

    /// Let the pump grow its records-per-`Write` up to `max` when the
    /// window saturates (downstream is invocation-bound) and shrink it back
    /// when acknowledgements return instantly. `max <= batch` keeps the
    /// batch fixed.
    pub fn adaptive_batch(mut self, max: usize) -> PushSourceEject {
        self.batch_max = max;
        self
    }
}

fn pctx_send(
    pctx: &ProcessContext,
    cache: &mut RouteCache,
    port: OutputPort,
    arg: Value,
) -> Result<()> {
    let pending = pctx.invoke_routed(cache, port.uid, ops::WRITE, arg);
    pctx.wait_or_stop(pending).map(|_| ())
}

impl EjectBehavior for PushSourceEject {
    fn type_name(&self) -> &'static str {
        "PushSource"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Start" => {
                if self.started {
                    reply.reply(Err(EdenError::Application("already started".into())));
                    return;
                }
                self.started = true;
                let mut source = match self.source.take() {
                    Some(s) => s,
                    None => {
                        reply.reply(Err(EdenError::Application("no source".into())));
                        return;
                    }
                };
                let wiring = self.wiring.clone();
                let batch = if self.batch_max > self.batch {
                    AdaptiveBatch::new(self.batch, self.batch_max)
                } else {
                    AdaptiveBatch::fixed(self.batch)
                };
                // Windowed pipelining only with a single destination.
                let single_port = (wiring.fan_out() == 1)
                    .then(|| wiring.ports_for(OUTPUT_NAME).first().copied())
                    .flatten();
                let window = match single_port {
                    Some(_) => self.window,
                    None => 1,
                };
                reply.mark_deferred();
                ctx.spawn_process("pump", move |pctx| {
                    let mut cache = RouteCache::new();
                    let result = (|| -> Result<()> {
                        if let (Some(port), true) = (single_port, window > 1) {
                            // Pipelined: keep up to `window` writes in
                            // flight, reaping acknowledgements in order.
                            let mut in_flight =
                                std::collections::VecDeque::with_capacity(window);
                            loop {
                                if pctx.should_stop() {
                                    return Err(EdenError::KernelShutdown);
                                }
                                let pulled = source.pull(batch.current());
                                eden_core::stream::note_emitted(pulled.items.len());
                                let req = WriteRequest {
                                    channel: port.channel,
                                    items: pulled.items,
                                    end: pulled.end,
                                    seq: None,
                                };
                                in_flight.push_back(pctx.invoke_routed(
                                    &mut cache,
                                    port.uid,
                                    ops::WRITE,
                                    req.to_value(),
                                ));
                                // Reap acknowledgements that have already
                                // arrived without blocking.
                                while let Some(pending) = in_flight.pop_front() {
                                    match pending.try_wait() {
                                        Ok(result) => {
                                            result?;
                                        }
                                        Err(still_pending) => {
                                            in_flight.push_front(still_pending);
                                            break;
                                        }
                                    }
                                }
                                if in_flight.is_empty() && !pulled.end {
                                    // Even the write just sent was already
                                    // acknowledged: batching overshot.
                                    batch.shrink();
                                } else if in_flight.len() >= window {
                                    // Window saturated — downstream is
                                    // invocation-bound; amortise with
                                    // bigger writes, then block.
                                    batch.grow();
                                }
                                while in_flight.len() >= window
                                    || (pulled.end && !in_flight.is_empty())
                                {
                                    let pending =
                                        in_flight.pop_front().expect("non-empty checked");
                                    pctx.wait_or_stop(pending)?;
                                }
                                if pulled.end {
                                    return Ok(());
                                }
                            }
                        }
                        loop {
                            if pctx.should_stop() {
                                return Err(EdenError::KernelShutdown);
                            }
                            let pulled = source.pull(batch.current());
                            eden_core::stream::note_emitted(pulled.items.len());
                            let mut emitter = Emitter::new();
                            for item in pulled.items {
                                emitter.emit(item);
                            }
                            let end = pulled.end;
                            let mut send = |port, w| pctx_send(&pctx, &mut cache, port, w);
                            deliver(&wiring, &mut emitter, end, &mut send)?;
                            if end {
                                return Ok(());
                            }
                        }
                    })();
                    reply.reply(result.map(|()| Value::Unit));
                });
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// A filter of the write-only discipline. See the module docs.
#[derive(Debug)]
pub struct PushFilterEject {
    transform: Box<dyn Transform>,
    wiring: OutputWiring,
    /// 0 = synchronous forwarding; >0 = buffered via a drain worker.
    push_ahead: usize,
    /// Buffered (request, credit-ack) traffic to the drain worker.
    to_worker: Option<crossbeam::channel::Sender<WorkerItem>>,
    ended: bool,
    /// Downstream routes, learned on first use (synchronous mode; the
    /// drain worker keeps its own cache).
    route_cache: RouteCache,
}

/// What the coordinator hands the drain worker.
struct WorkerItem {
    emitted: Vec<(String, Vec<Value>)>,
    end: bool,
}

impl PushFilterEject {
    /// A push filter with synchronous forwarding.
    pub fn new(transform: Box<dyn Transform>, wiring: OutputWiring) -> PushFilterEject {
        PushFilterEject::with_push_ahead(transform, wiring, 0)
    }

    /// A push filter with a `push_ahead`-deep forwarding buffer.
    pub fn with_push_ahead(
        transform: Box<dyn Transform>,
        wiring: OutputWiring,
        push_ahead: usize,
    ) -> PushFilterEject {
        PushFilterEject {
            transform,
            wiring,
            push_ahead,
            to_worker: None,
            ended: false,
            route_cache: RouteCache::new(),
        }
    }

    fn forward_sync(&mut self, ctx: &EjectContext, mut emitter: Emitter, end: bool) -> Result<()> {
        let wiring = self.wiring.clone();
        let cache = &mut self.route_cache;
        let mut send = |port: OutputPort, arg: Value| -> Result<()> {
            ctx.invoke_routed(cache, port.uid, ops::WRITE, arg)
                .wait()
                .map(|_| ())
        };
        deliver(&wiring, &mut emitter, end, &mut send)
    }
}

impl EjectBehavior for PushFilterEject {
    fn type_name(&self) -> &'static str {
        "PushFilter"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        if self.push_ahead == 0 {
            return;
        }
        let (tx, rx) = crossbeam::channel::bounded::<WorkerItem>(self.push_ahead);
        self.to_worker = Some(tx);
        let wiring = self.wiring.clone();
        ctx.spawn_process("push-drain", move |pctx| {
            let mut cache = RouteCache::new();
            // eden-lint: nonblocking(spawn_process worker thread, not a pool worker)
            while let Ok(item) = rx.recv() {
                let mut emitter = Emitter::new();
                for (channel, records) in item.emitted {
                    if channel == OUTPUT_NAME {
                        for r in records {
                            emitter.emit(r);
                        }
                    } else {
                        for r in records {
                            emitter.emit_on(&channel, r);
                        }
                    }
                }
                let mut send = |port, w| pctx_send(&pctx, &mut cache, port, w);
                if deliver(&wiring, &mut emitter, item.end, &mut send).is_err() {
                    return;
                }
                if item.end {
                    return;
                }
            }
        });
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::WRITE => {
                let w = match WriteRequest::from_value(inv.arg) {
                    Ok(w) => w,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                if self.ended {
                    reply.reply(Err(EdenError::Application(
                        "write after end of stream".into(),
                    )));
                    return;
                }
                let mut emitter = Emitter::new();
                for item in w.items {
                    self.transform.push(item, &mut emitter);
                }
                if w.end {
                    self.transform.flush(&mut emitter);
                    self.ended = true;
                }
                match (&self.to_worker, self.push_ahead) {
                    (Some(tx), _) => {
                        // Buffered: ack as soon as the item is queued; the
                        // bounded queue provides the backpressure.
                        let emitted: Vec<(String, Vec<Value>)> =
                            std::iter::once((OUTPUT_NAME.to_owned(), emitter.take_primary()))
                                .chain(emitter.take_secondary())
                                .collect();
                        ctx.metrics().record_internal_message();
                        let sent = tx
                            .send(WorkerItem {
                                emitted,
                                end: w.end,
                            })
                            .is_ok();
                        if w.end {
                            self.to_worker = None;
                        }
                        if sent {
                            reply.reply(Ok(Value::Unit));
                        } else {
                            reply.reply(Err(EdenError::Application(
                                "forwarding worker gone".into(),
                            )));
                        }
                    }
                    (None, _) => {
                        // Synchronous: ack only after downstream acks.
                        let result = self.forward_sync(ctx, emitter, w.end);
                        reply.reply(result.map(|()| Value::Unit));
                    }
                }
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }

    fn deactivating(&mut self, _ctx: &EjectContext) {
        self.to_worker = None;
    }
}

/// A write-only filter with a **secondary input** (§5): "each filter would
/// have a primary input, which is supplied by a source Eject performing
/// *Write* invocations, and a number of secondary inputs, which are
/// actively read."
///
/// Every record arriving on the primary (passive) input is paired with one
/// record *actively pulled* from the secondary input; the pair
/// `Value::List([primary, secondary])` is pushed downstream. When the
/// secondary runs dry the pairing pads with `Unit`. This is how a stream
/// editor's command input or a comparator's second file enters a
/// write-only pipeline.
#[derive(Debug)]
pub struct ZipPushFilterEject {
    secondary: Uid,
    secondary_channel: ChannelId,
    wiring: OutputWiring,
    secondary_done: bool,
    ended: bool,
    route_cache: RouteCache,
}

impl ZipPushFilterEject {
    /// Pair the pushed primary stream with `secondary`'s primary channel.
    pub fn new(secondary: Uid, wiring: OutputWiring) -> ZipPushFilterEject {
        ZipPushFilterEject {
            secondary,
            secondary_channel: ChannelId::output(),
            wiring,
            secondary_done: false,
            ended: false,
            route_cache: RouteCache::new(),
        }
    }

    fn pull_secondary(&mut self, ctx: &EjectContext) -> Value {
        if self.secondary_done {
            return Value::Unit;
        }
        let req = crate::protocol::TransferRequest {
            channel: self.secondary_channel,
            max: 1,
            pos: None,
        };
        match ctx
            .invoke_routed(
                &mut self.route_cache,
                self.secondary,
                ops::TRANSFER,
                req.to_value(),
            )
            .wait()
            .and_then(crate::protocol::Batch::from_value)
        {
            Ok(batch) => {
                if batch.end {
                    self.secondary_done = true;
                }
                batch.items.into_iter().next().unwrap_or(Value::Unit)
            }
            Err(_) => {
                self.secondary_done = true;
                Value::Unit
            }
        }
    }
}

impl EjectBehavior for ZipPushFilterEject {
    fn type_name(&self) -> &'static str {
        "ZipPushFilter"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::WRITE => {
                let w = match WriteRequest::from_value(inv.arg) {
                    Ok(w) => w,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                if self.ended {
                    reply.reply(Err(EdenError::Application(
                        "write after end of stream".into(),
                    )));
                    return;
                }
                let mut emitter = Emitter::new();
                for item in w.items {
                    let paired = self.pull_secondary(ctx);
                    emitter.emit(Value::list(vec![item, paired]));
                }
                if w.end {
                    self.ended = true;
                }
                let wiring = self.wiring.clone();
                let cache = &mut self.route_cache;
                let mut send = |port: OutputPort, arg: Value| -> Result<()> {
                    ctx.invoke_routed(cache, port.uid, ops::WRITE, arg)
                        .wait()
                        .map(|_| ())
                };
                let result = deliver(&wiring, &mut emitter, w.end, &mut send);
                reply.reply(result.map(|()| Value::Unit));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::sink::AcceptorSinkEject;
    use crate::source::VecSource;
    use crate::transform::{map_fn, Identity};
    use eden_kernel::Kernel;
    use std::time::Duration;

    fn spawn_acceptor(kernel: &Kernel) -> (Uid, Collector) {
        let collector = Collector::new();
        let uid = kernel
            .spawn(Box::new(AcceptorSinkEject::new(collector.clone())))
            .unwrap();
        (uid, collector)
    }

    #[test]
    fn push_source_pumps_to_sink() {
        let kernel = Kernel::new();
        let (sink, collector) = spawn_acceptor(&kernel);
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new((0..10).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(sink)),
                3,
            )))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items, (0..10).map(Value::Int).collect::<Vec<_>>());
        kernel.shutdown();
    }

    #[test]
    fn push_filter_transforms_en_route() {
        let kernel = Kernel::new();
        let (sink, collector) = spawn_acceptor(&kernel);
        let filter = kernel
            .spawn(Box::new(PushFilterEject::new(
                Box::new(map_fn("neg", |v| Value::Int(-v.as_int().unwrap()))),
                OutputWiring::primary_to(OutputPort::primary(sink)),
            )))
            .unwrap();
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new((1..4).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(filter)),
                2,
            )))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items, vec![Value::Int(-1), Value::Int(-2), Value::Int(-3)]);
        kernel.shutdown();
    }

    #[test]
    fn fan_out_duplicates_stream() {
        // §5: "there is arbitrary fan-out" — one filter, two sinks.
        let kernel = Kernel::new();
        let (sink_a, col_a) = spawn_acceptor(&kernel);
        let (sink_b, col_b) = spawn_acceptor(&kernel);
        let mut wiring = OutputWiring::default();
        wiring.add(OUTPUT_NAME, OutputPort::primary(sink_a));
        wiring.add(OUTPUT_NAME, OutputPort::primary(sink_b));
        assert_eq!(wiring.fan_out(), 2);
        let filter = kernel
            .spawn(Box::new(PushFilterEject::new(Box::new(Identity), wiring)))
            .unwrap();
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new((0..5).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(filter)),
                2,
            )))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let a = col_a.wait_done(Duration::from_secs(10)).unwrap();
        let b = col_b.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        kernel.shutdown();
    }

    #[test]
    fn push_ahead_buffered_filter_works() {
        let kernel = Kernel::new();
        let (sink, collector) = spawn_acceptor(&kernel);
        let filter = kernel
            .spawn(Box::new(PushFilterEject::with_push_ahead(
                Box::new(Identity),
                OutputWiring::primary_to(OutputPort::primary(sink)),
                4,
            )))
            .unwrap();
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new((0..30).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(filter)),
                5,
            )))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items, (0..30).map(Value::Int).collect::<Vec<_>>());
        kernel.shutdown();
    }

    #[test]
    fn windowed_source_delivers_in_order() {
        let kernel = Kernel::new();
        let (sink, collector) = spawn_acceptor(&kernel);
        let src = kernel
            .spawn(Box::new(PushSourceEject::with_window(
                Box::new(VecSource::new((0..100).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(sink)),
                4,
                8,
            )))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items, (0..100).map(Value::Int).collect::<Vec<_>>());
        kernel.shutdown();
    }

    #[test]
    fn windowed_source_falls_back_on_fan_out() {
        // Two destinations: the window degrades to lock-step, and both
        // sinks still get the full stream.
        let kernel = Kernel::new();
        let (sink_a, col_a) = spawn_acceptor(&kernel);
        let (sink_b, col_b) = spawn_acceptor(&kernel);
        let mut wiring = OutputWiring::default();
        wiring.add(OUTPUT_NAME, OutputPort::primary(sink_a));
        wiring.add(OUTPUT_NAME, OutputPort::primary(sink_b));
        let src = kernel
            .spawn(Box::new(PushSourceEject::with_window(
                Box::new(VecSource::new((0..10).map(Value::Int).collect())),
                wiring,
                2,
                16,
            )))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        assert_eq!(col_a.wait_done(Duration::from_secs(10)).unwrap().len(), 10);
        assert_eq!(col_b.wait_done(Duration::from_secs(10)).unwrap().len(), 10);
        kernel.shutdown();
    }

    #[test]
    fn zip_push_filter_pairs_with_actively_read_secondary() {
        // §5: primary input pushed in, secondary input actively read.
        let kernel = Kernel::new();
        let (sink, collector) = spawn_acceptor(&kernel);
        let secondary = kernel
            .spawn(Box::new(crate::source::SourceEject::new(Box::new(
                VecSource::from_lines(["s0", "s1"]),
            ))))
            .unwrap();
        let zipper = kernel
            .spawn(Box::new(ZipPushFilterEject::new(
                secondary,
                OutputWiring::primary_to(OutputPort::primary(sink)),
            )))
            .unwrap();
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::from_lines(["p0", "p1", "p2"])),
                OutputWiring::primary_to(OutputPort::primary(zipper)),
                2,
            )))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(
            items,
            vec![
                Value::list(vec![Value::str("p0"), Value::str("s0")]),
                Value::list(vec![Value::str("p1"), Value::str("s1")]),
                // The secondary ran dry: padding with Unit.
                Value::list(vec![Value::str("p2"), Value::Unit]),
            ]
        );
        kernel.shutdown();
    }

    #[test]
    fn start_twice_is_rejected() {
        let kernel = Kernel::new();
        let (sink, _collector) = spawn_acceptor(&kernel);
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new(vec![Value::Int(1)])),
                OutputWiring::primary_to(OutputPort::primary(sink)),
                1,
            )))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let err = kernel.invoke(src, "Start", Value::Unit).wait().unwrap_err();
        assert!(matches!(err, EdenError::Application(_)));
        kernel.shutdown();
    }

    #[test]
    fn write_after_end_is_rejected() {
        let kernel = Kernel::new();
        let (sink, _collector) = spawn_acceptor(&kernel);
        let filter = kernel
            .spawn(Box::new(PushFilterEject::new(
                Box::new(Identity),
                OutputWiring::primary_to(OutputPort::primary(sink)),
            )))
            .unwrap();
        kernel
            .invoke(filter, ops::WRITE, WriteRequest::last(vec![]).to_value()).wait()
            .unwrap();
        let err = kernel
            .invoke(
                filter,
                ops::WRITE,
                WriteRequest::more(vec![Value::Int(1)]).to_value(),
            ).wait()
            .unwrap_err();
        assert!(matches!(err, EdenError::Application(_)));
        kernel.shutdown();
    }
}
