//! Pipeline construction and measurement.
//!
//! One typed spec, three disciplines (§3–§5): the same source records and
//! the same [`Transform`] chain can be wired
//!
//! * **read-only** (Figure 2): source ← filters ← sink, the sink pumps;
//! * **write-only** (Figure 3): source → filters → acceptor, the source
//!   pumps;
//! * **conventional** (Figure 1): active filters glued with passive buffer
//!   Ejects, both ends pumping.
//!
//! [`PipelineSpec`] is kernel-free: it describes the wiring without
//! touching a kernel, so the same value can be statically checked
//! ([`PipelineSpec::graph`] → [`conform::check`]) or instantiated
//! ([`PipelineSpec::build`], which validates first — a spec that violates
//! its discipline never spawns an Eject). [`Pipeline::run`] executes to
//! end-of-stream and returns a [`PipelineRun`] with the output, the
//! metered event counts for the data phase, and wall-clock time — the raw
//! material for every experiment in `EXPERIMENTS.md`.
//!
//! [`conform::check`]: crate::conform::check

use std::time::{Duration, Instant};

use eden_core::op::ops;
use eden_core::{EdenError, MetricsSnapshot, Result, Uid, Value};
use eden_kernel::{EjectState, Kernel, NodeId};

use crate::channels::ChannelPolicy;
use crate::collector::Collector;
use crate::conform::{self, DisciplineKind, GrantPolicy, NodeRole, WiringGraph};
use crate::conventional::{PassiveBufferEject, PumpFilterEject};
use crate::protocol::{ChannelId, GetChannelRequest, OUTPUT_NAME};
use crate::read_only::{FanInMode, InputPort, PullFilterConfig, PullFilterEject};
use crate::sink::{AcceptorSinkEject, SinkEject};
use crate::source::{PullSource, VecSource};
use crate::transform::Transform;
use crate::write_only::{OutputPort, OutputWiring, PushFilterEject, PushSourceEject};

/// Which communication discipline to wire the pipeline in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Active input + passive output; the sink pumps (Figure 2).
    ReadOnly {
        /// Records each filter pre-pulls (0 = fully lazy).
        read_ahead: usize,
    },
    /// Passive input + active output; the source pumps (Figure 3).
    WriteOnly {
        /// Depth of each filter's forwarding buffer (0 = rendezvous).
        push_ahead: usize,
    },
    /// Active both ways with interposed passive buffers (Figure 1).
    Conventional {
        /// Record capacity of each passive buffer Eject.
        buffer_capacity: usize,
    },
}

impl Discipline {
    /// A short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Discipline::ReadOnly { .. } => "read-only",
            Discipline::WriteOnly { .. } => "write-only",
            Discipline::Conventional { .. } => "conventional",
        }
    }

    /// The discipline's identity, stripped of tuning knobs — what the
    /// static conformance predicates key on.
    pub fn kind(&self) -> DisciplineKind {
        match self {
            Discipline::ReadOnly { .. } => DisciplineKind::ReadOnly,
            Discipline::WriteOnly { .. } => DisciplineKind::WriteOnly,
            Discipline::Conventional { .. } => DisciplineKind::Conventional,
        }
    }
}

/// A tap on a filter's secondary output channel (a report stream, §5).
#[derive(Debug)]
struct ReportTap {
    stage: usize,
    channel: String,
    collector: Collector,
}

/// Where the pipeline's records come from.
enum SourceSpec {
    /// A local record supply; the builder spawns the source Eject.
    Local(Box<dyn PullSource>),
    /// An existing Eject that answers `Transfer` (a file reader, a
    /// directory listing, another pipeline's tail...). §4: "any Eject
    /// which responds to *Read* invocations is by definition a source."
    Eject(Uid),
    /// Several local supplies merged by a fan-in filter (§5 fan-in).
    Merge(Vec<Box<dyn PullSource>>, FanInMode),
    /// Several existing Ejects merged by a fan-in filter.
    MergeEjects(Vec<InputPort>, FanInMode),
    /// An imperative program writing records (§4's standard IO module).
    Program(Box<dyn FnOnce(crate::stdio::TransputWriter) + Send>),
}

impl std::fmt::Debug for SourceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceSpec::Local(_) => f.write_str("Local"),
            SourceSpec::Eject(uid) => f.debug_tuple("Eject").field(uid).finish(),
            SourceSpec::Merge(sources, mode) => f
                .debug_tuple("Merge")
                .field(&sources.len())
                .field(mode)
                .finish(),
            SourceSpec::MergeEjects(ports, mode) => {
                f.debug_tuple("MergeEjects").field(ports).field(mode).finish()
            }
            SourceSpec::Program(_) => f.write_str("Program"),
        }
    }
}

/// The graph-label for an input port's channel.
fn channel_label(id: &ChannelId) -> String {
    match id {
        ChannelId::Number(0) => OUTPUT_NAME.to_owned(),
        ChannelId::Number(n) => format!("#{n}"),
        ChannelId::Cap(uid) => format!("cap:{uid}"),
    }
}

/// A kernel-free description of a linear pipeline with optional report
/// taps: what to wire, in which discipline, with which knobs.
///
/// The spec is the unit of static analysis — [`graph`](Self::graph)
/// renders it as a [`WiringGraph`] for the conformance predicates, and
/// [`build`](Self::build) instantiates it on a kernel only after
/// [`validate`](Self::validate) passes.
#[derive(Debug)]
pub struct PipelineSpec {
    discipline: Discipline,
    batch: usize,
    batch_max: usize,
    policy: ChannelPolicy,
    source: Option<SourceSpec>,
    stages: Vec<Box<dyn Transform>>,
    taps: Vec<ReportTap>,
    nodes: Option<u16>,
    keep_output: bool,
    write_window: usize,
}

impl PipelineSpec {
    /// Start describing a pipeline in `discipline`.
    pub fn new(discipline: Discipline) -> PipelineSpec {
        PipelineSpec {
            discipline,
            batch: 16,
            batch_max: 0,
            policy: ChannelPolicy::Integer,
            source: None,
            stages: Vec::new(),
            taps: Vec::new(),
            nodes: None,
            keep_output: true,
            write_window: 1,
        }
    }

    /// Use an arbitrary record source.
    pub fn source(mut self, source: Box<dyn PullSource>) -> Self {
        self.source = Some(SourceSpec::Local(source));
        self
    }

    /// Use a vector of records as the source.
    pub fn source_vec(self, items: Vec<Value>) -> Self {
        self.source(Box::new(VecSource::new(items)))
    }

    /// Read from an *existing* Eject's primary channel — a file reader, a
    /// directory listing, anything answering `Transfer`. In the read-only
    /// discipline the first filter pulls it directly; in source-pumped
    /// disciplines the builder interposes an identity pump that starts at
    /// spawn (no `Start` invocation).
    pub fn source_eject(mut self, uid: Uid) -> Self {
        self.source = Some(SourceSpec::Eject(uid));
        self
    }

    /// Merge several local supplies through a fan-in filter (§5: "if F
    /// needs n inputs, it maintains n UIDs"). `Concatenate` reads them in
    /// order like `cat a b`; `RoundRobin` interleaves; `Zip` emits tuples.
    pub fn source_merge(mut self, sources: Vec<Box<dyn PullSource>>, mode: FanInMode) -> Self {
        self.source = Some(SourceSpec::Merge(sources, mode));
        self
    }

    /// Merge several existing Ejects' streams through a fan-in filter.
    pub fn source_ejects_merged(mut self, ports: Vec<InputPort>, mode: FanInMode) -> Self {
        self.source = Some(SourceSpec::MergeEjects(ports, mode));
        self
    }

    /// Use an ordinary imperative program as the source: §4's "standard IO
    /// module" — the closure writes records conventionally while the Eject
    /// performs passive output.
    pub fn source_program<F>(mut self, program: F) -> Self
    where
        F: FnOnce(crate::stdio::TransputWriter) + Send + 'static,
    {
        self.source = Some(SourceSpec::Program(Box::new(program)));
        self
    }

    /// Append a filter stage.
    pub fn stage(mut self, transform: Box<dyn Transform>) -> Self {
        self.stages.push(transform);
        self
    }

    /// Records per Transfer/Write (the batching knob of experiment E7).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Let every connection adapt its records-per-invocation between
    /// [`batch`](Self::batch) and `max`: starved consumers and saturated
    /// write windows grow the batch; overshoot shrinks it back. `max` at
    /// or below `batch` keeps batches fixed (the default).
    pub fn adaptive_batch(mut self, max: usize) -> Self {
        self.batch_max = max;
        self
    }

    /// Channel identifier policy for read-only filters (§5).
    pub fn policy(mut self, policy: ChannelPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Distribute the pipeline's Ejects round-robin over `n` simulated
    /// nodes (the paper's VAXen).
    pub fn over_nodes(mut self, n: u16) -> Self {
        self.nodes = Some(n.max(1));
        self
    }

    /// Discard output records (null sink) — keeps benchmarks allocation-flat.
    pub fn null_sink(mut self) -> Self {
        self.keep_output = false;
        self
    }

    /// Keep up to `w` writes in flight from a source-pumped pipeline's
    /// pump (write-only / conventional disciplines with a local source).
    /// 1 = synchronous rendezvous (the default).
    pub fn write_window(mut self, w: usize) -> Self {
        self.write_window = w.max(1);
        self
    }

    /// Tap stage `stage`'s secondary channel `channel` into its own
    /// collector (e.g. the report window of Figures 3 and 4).
    pub fn tap(mut self, stage: usize, channel: &str) -> Self {
        self.taps.push(ReportTap {
            stage,
            channel: channel.to_owned(),
            collector: Collector::new(),
        });
        self
    }

    /// Render the spec as a wiring graph for the conformance predicates.
    ///
    /// The graph mirrors the Ejects [`build`](Self::build) would spawn —
    /// merge filters, identity pumps, and conventional buffers included —
    /// so a conforming graph here means the instantiated pipeline's actual
    /// wiring conforms too. Under the capability channel policy every edge
    /// carries a grant, because the wirer itself performs the §5
    /// `GetChannel` handshake for each connection it makes.
    pub fn graph(&self) -> Result<WiringGraph> {
        let source = self.source.as_ref().ok_or_else(|| {
            EdenError::BadParameter("pipeline needs a source before graph()".into())
        })?;
        let mut g = WiringGraph::new(self.discipline.kind());
        if self.policy == ChannelPolicy::Capability {
            g = g.policy(GrantPolicy::Capability);
        }

        // Resolve the source into the node feeding the first stage,
        // mirroring `build`: merges become a fan-in filter; in the
        // source-pumped disciplines, external Ejects and programs get an
        // identity pump; a local supply pumps for itself.
        let pumped = !matches!(self.discipline, Discipline::ReadOnly { .. });
        let head = match source {
            SourceSpec::Local(_) => {
                g.node("source", NodeRole::Source);
                "source".to_owned()
            }
            SourceSpec::Program(_) => {
                g.node("source:program", NodeRole::Source);
                "source:program".to_owned()
            }
            SourceSpec::Eject(uid) => {
                let name = format!("eject:{uid}");
                g.node(&name, NodeRole::Source);
                name
            }
            SourceSpec::Merge(sources, _) => {
                // The merge filter *pulls* its inputs whatever the
                // pipeline's discipline — that pull wiring is the §5
                // workaround making fan-in legal even in a write-only
                // pipeline.
                g.node("merge", NodeRole::Filter);
                for (i, _) in sources.iter().enumerate() {
                    let name = format!("source[{i}]");
                    g.node(&name, NodeRole::Source);
                    g.edge_mode(&name, OUTPUT_NAME, "merge", conform::EdgeMode::Pull);
                }
                "merge".to_owned()
            }
            SourceSpec::MergeEjects(ports, _) => {
                g.node("merge", NodeRole::Filter);
                for port in ports {
                    let name = format!("eject:{}", port.uid);
                    g.node(&name, NodeRole::Source);
                    g.edge_mode(&name, channel_label(&port.channel), "merge", conform::EdgeMode::Pull);
                }
                "merge".to_owned()
            }
        };
        // Non-local sources cannot pump themselves: `build` interposes an
        // identity pump in the source-pumped disciplines. The pump pulls
        // its upstream and pushes downstream.
        let head = if pumped && !matches!(source, SourceSpec::Local(_)) {
            g.node("pump", NodeRole::Filter);
            g.edge_mode(&head, OUTPUT_NAME, "pump", conform::EdgeMode::Pull);
            "pump".to_owned()
        } else {
            head
        };

        let mut stage_names = Vec::with_capacity(self.stages.len());
        for (i, t) in self.stages.iter().enumerate() {
            let name = format!("stage{i}:{}", t.name());
            g.node(&name, NodeRole::Filter);
            stage_names.push(name);
        }
        g.node("sink", NodeRole::Sink);

        match self.discipline {
            Discipline::ReadOnly { .. } | Discipline::WriteOnly { .. } => {
                // A straight chain; taps hang their own sink off the
                // stage's secondary channel.
                let mut prev = head;
                for name in &stage_names {
                    g.edge(&prev, OUTPUT_NAME, name);
                    prev = name.clone();
                }
                g.edge(&prev, OUTPUT_NAME, "sink");
                for tap in &self.taps {
                    if let Some(stage) = stage_names.get(tap.stage) {
                        let sink = format!("tap{}:{}", tap.stage, tap.channel);
                        g.node(&sink, NodeRole::Sink);
                        g.edge(stage, &tap.channel, &sink);
                    }
                }
            }
            Discipline::Conventional { .. } => {
                // Figure 1: n filters need n+1 passive buffers; taps get
                // their own buffer + reader.
                g.node("buf0", NodeRole::Buffer);
                g.edge(&head, OUTPUT_NAME, "buf0");
                let mut upstream = "buf0".to_owned();
                for (i, name) in stage_names.iter().enumerate() {
                    let out_buf = format!("buf{}", i + 1);
                    g.node(&out_buf, NodeRole::Buffer);
                    g.edge(&upstream, OUTPUT_NAME, name);
                    g.edge(name, OUTPUT_NAME, &out_buf);
                    for tap in self.taps.iter().filter(|t| t.stage == i) {
                        let buf = format!("tapbuf{}:{}", tap.stage, tap.channel);
                        let sink = format!("tap{}:{}", tap.stage, tap.channel);
                        g.node(&buf, NodeRole::Buffer);
                        g.node(&sink, NodeRole::Sink);
                        g.edge(name, &tap.channel, &buf);
                        g.edge(&buf, OUTPUT_NAME, &sink);
                    }
                    upstream = out_buf;
                }
                g.edge(&upstream, OUTPUT_NAME, "sink");
            }
        }

        if g.policy == GrantPolicy::Capability {
            g.grant_all_edges();
        }
        Ok(g)
    }

    /// Check the spec without touching a kernel: a source is present,
    /// every tap names a declared secondary channel of a real stage, and
    /// the wiring graph satisfies its discipline's predicates.
    pub fn validate(&self) -> Result<()> {
        // Validate taps up front: in the source-pumped disciplines an
        // unattached tap would otherwise stall `run` until its deadline.
        for tap in &self.taps {
            if tap.stage >= self.stages.len() {
                return Err(EdenError::BadParameter(format!(
                    "tap names stage {} but the pipeline has {} stage(s)",
                    tap.stage,
                    self.stages.len()
                )));
            }
            let declared = self.stages[tap.stage].secondary_channels();
            if !declared.iter().any(|c| *c == tap.channel) {
                return Err(EdenError::NoSuchChannel(format!(
                    "stage {} (`{}`) declares no channel named `{}`",
                    tap.stage,
                    self.stages[tap.stage].name(),
                    tap.channel
                )));
            }
        }
        if let SourceSpec::Merge(sources, _) = self.source.as_ref().ok_or_else(|| {
            EdenError::BadParameter("pipeline needs a source before build()".into())
        })? {
            if sources.is_empty() {
                return Err(EdenError::BadParameter(
                    "merged source needs at least one input".into(),
                ));
            }
        }
        if let SourceSpec::MergeEjects(ports, _) = self.source.as_ref().expect("checked above") {
            if ports.is_empty() {
                return Err(EdenError::BadParameter(
                    "merged source needs at least one input".into(),
                ));
            }
        }
        let violations = self.graph()?.check();
        if !violations.is_empty() {
            let list = violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            return Err(EdenError::Discipline(list));
        }
        Ok(())
    }

    /// Wire everything up on `kernel`, validating first. Ejects spawn
    /// now; in the read-only discipline no data flows yet (the sink's
    /// first Transfer starts the flow as part of `run`).
    pub fn build(self, kernel: &Kernel) -> Result<Pipeline> {
        self.validate()?;
        // One trace per pipeline: everything wired or spawned from here on
        // (including pump workers, which inherit the ambient span of the
        // thread that spawned their Eject) parents under this root, so the
        // whole run reconstructs as a single causal tree.
        let trace = eden_core::span::SpanContext::root();
        let _ambient = eden_core::span::enter(Some(trace));
        let PipelineSpec {
            discipline,
            batch,
            batch_max,
            policy,
            source,
            stages,
            taps,
            nodes,
            keep_output,
            write_window,
        } = self;
        let source = source.expect("validate() checked the source");
        let collector = if keep_output {
            Collector::new()
        } else {
            Collector::null()
        };
        let mut wiring = Wirer {
            kernel: kernel.clone(),
            nodes,
            next_node: 0,
            ejects: Vec::new(),
            deferred: Vec::new(),
        };
        // Resolve merged sources into a single merging Eject up front, so
        // the discipline builders only ever see Local or Eject sources.
        let source = match source {
            SourceSpec::Program(program) => SourceSpec::Eject(
                wiring.spawn(Box::new(crate::stdio::ProgramSourceEject::new(program)))?,
            ),
            SourceSpec::Merge(sources, mode) => {
                let ports = sources
                    .into_iter()
                    .map(|s| {
                        wiring
                            .spawn(Box::new(crate::source::SourceEject::new(s)))
                            .map(InputPort::primary)
                    })
                    .collect::<Result<Vec<_>>>()?;
                SourceSpec::MergeEjects(ports, mode)
            }
            other => other,
        };
        let source = match source {
            SourceSpec::MergeEjects(ports, mode) => {
                let merger = PullFilterEject::with_config(
                    Box::new(crate::transform::Identity),
                    ports,
                    PullFilterConfig {
                        batch,
                        read_ahead: 0,
                        fan_in: mode,
                        policy: ChannelPolicy::Integer,
                        batch_max,
                    },
                );
                SourceSpec::Eject(wiring.spawn(Box::new(merger))?)
            }
            other => other,
        };
        let start_target = match discipline {
            Discipline::ReadOnly { read_ahead } => {
                build_read_only(
                    &mut wiring, source, stages, &taps, batch, batch_max, read_ahead, policy,
                    &collector,
                )?;
                None
            }
            Discipline::WriteOnly { push_ahead } => build_write_only(
                &mut wiring, source, stages, &taps, batch, batch_max, push_ahead,
                write_window, &collector,
            )?,
            Discipline::Conventional { buffer_capacity } => build_conventional(
                &mut wiring,
                source,
                stages,
                &taps,
                batch,
                batch_max,
                buffer_capacity,
                write_window,
                &collector,
            )?,
        };
        let baseline = kernel.metrics().snapshot();
        Ok(Pipeline {
            kernel: kernel.clone(),
            discipline,
            ejects: wiring.ejects,
            deferred_sinks: wiring.deferred,
            start_target,
            collector,
            taps,
            baseline,
            trace,
        })
    }
}

/// Spawning helper that handles node placement and entity accounting.
struct Wirer {
    kernel: Kernel,
    nodes: Option<u16>,
    next_node: u16,
    ejects: Vec<Uid>,
    deferred: Vec<(Option<NodeId>, Box<dyn eden_kernel::EjectBehavior>)>,
}

impl Wirer {
    fn place(&mut self) -> Option<NodeId> {
        self.nodes.map(|n| {
            let node = NodeId(self.next_node % n);
            self.next_node = self.next_node.wrapping_add(1);
            node
        })
    }

    fn spawn(&mut self, behavior: Box<dyn eden_kernel::EjectBehavior>) -> Result<Uid> {
        let uid = match self.place() {
            Some(node) => self.kernel.spawn_on(node, behavior)?,
            None => self.kernel.spawn(behavior)?,
        };
        self.ejects.push(uid);
        Ok(uid)
    }

    /// Queue a behavior to spawn in `run()` instead of now. Used for the
    /// pull-side sinks, whose pump starts the moment they spawn: deferring
    /// them past the metrics baseline keeps every data-phase invocation
    /// inside the measured window, so the analytic n+1 counts hold exactly.
    fn defer(&mut self, behavior: Box<dyn eden_kernel::EjectBehavior>) {
        let node = self.place();
        self.deferred.push((node, behavior));
    }
}

#[allow(clippy::too_many_arguments)]
fn build_read_only(
    w: &mut Wirer,
    source: SourceSpec,
    stages: Vec<Box<dyn Transform>>,
    taps: &[ReportTap],
    batch: usize,
    batch_max: usize,
    read_ahead: usize,
    policy: ChannelPolicy,
    collector: &Collector,
) -> Result<()> {
    let source_uid = match source {
        SourceSpec::Local(s) => w.spawn(Box::new(crate::source::SourceEject::new(s)))?,
        SourceSpec::Eject(uid) => uid,
        // Merged sources are resolved to an Eject in `build()`.
        SourceSpec::Merge(..) | SourceSpec::MergeEjects(..) | SourceSpec::Program(..) => {
            unreachable!("merge sources resolved before discipline wiring")
        }
    };
    let mut prev = source_uid;
    // Sources always declare integer channels; under the capability
    // policy each *filter*'s primary output becomes a capability the
    // wirer must fetch with GetChannel and hand to the next stage — the
    // §5 connection protocol.
    let mut prev_channel = ChannelId::output();
    let mut filter_uids = Vec::with_capacity(stages.len());
    for transform in stages {
        let filter = PullFilterEject::with_config(
            transform,
            vec![InputPort {
                uid: prev,
                channel: prev_channel,
            }],
            PullFilterConfig {
                batch,
                read_ahead,
                fan_in: FanInMode::Concatenate,
                policy,
                batch_max,
            },
        );
        prev = w.spawn(Box::new(filter))?;
        filter_uids.push(prev);
        prev_channel = match policy {
            ChannelPolicy::Integer => ChannelId::output(),
            ChannelPolicy::Capability => {
                let id_value = w.kernel.invoke(
                    prev,
                    ops::GET_CHANNEL,
                    GetChannelRequest {
                        name: crate::protocol::OUTPUT_NAME.to_owned(),
                    }
                    .to_value(),
                ).wait()?;
                ChannelId::try_from(&id_value)?
            }
        };
    }
    // Report windows: ask each tapped filter for its channel id (the §5
    // connection protocol — mandatory under the capability policy) and
    // attach a reader.
    for tap in taps {
        let filter = *filter_uids.get(tap.stage).ok_or_else(|| {
            EdenError::BadParameter(format!("tap names stage {} of {}", tap.stage, filter_uids.len()))
        })?;
        let id_value = w.kernel.invoke(
            filter,
            ops::GET_CHANNEL,
            GetChannelRequest {
                name: tap.channel.clone(),
            }
            .to_value(),
        ).wait()?;
        let id = ChannelId::try_from(&id_value)?;
        w.defer(Box::new(SinkEject::on_channel(
            filter,
            id,
            batch,
            tap.collector.clone(),
        )));
    }
    // The sinks spawn last — and deferred until `run()`: attaching the
    // sink is "starting the pump" (§4), so nothing flows at build time.
    w.defer(Box::new(
        SinkEject::on_channel(prev, prev_channel, batch, collector.clone())
            .adaptive_batch(batch_max),
    ));
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn build_write_only(
    w: &mut Wirer,
    source: SourceSpec,
    stages: Vec<Box<dyn Transform>>,
    taps: &[ReportTap],
    batch: usize,
    batch_max: usize,
    push_ahead: usize,
    write_window: usize,
    collector: &Collector,
) -> Result<Option<Uid>> {
    // Build sink-first so each stage knows its destination.
    let sink = w.spawn(Box::new(AcceptorSinkEject::new(collector.clone())))?;
    let mut next = sink;
    let n = stages.len();
    for (rev_idx, transform) in stages.into_iter().enumerate().rev() {
        let mut wiring = OutputWiring::primary_to(OutputPort::primary(next));
        // Reports in write-only are just extra destinations (Figure 3):
        // each tapped channel writes into its own acceptor sink.
        for tap in taps.iter().filter(|t| t.stage == rev_idx) {
            let report_sink = w.spawn(Box::new(AcceptorSinkEject::new(tap.collector.clone())))?;
            wiring.add(&tap.channel, OutputPort::primary(report_sink));
        }
        let filter = PushFilterEject::with_push_ahead(transform, wiring, push_ahead);
        next = w.spawn(Box::new(filter))?;
        let _ = n;
    }
    spawn_pump_for(w, source, next, batch, batch_max, write_window)
}

/// Attach the pump appropriate to the source kind: a `Start`-triggered
/// push source for local supplies, or an identity pump (starts at spawn)
/// reading an existing Eject.
fn spawn_pump_for(
    w: &mut Wirer,
    source: SourceSpec,
    target: Uid,
    batch: usize,
    batch_max: usize,
    write_window: usize,
) -> Result<Option<Uid>> {
    let wiring = OutputWiring::primary_to(OutputPort::primary(target));
    match source {
        SourceSpec::Local(s) => {
            let src = w.spawn(Box::new(
                PushSourceEject::with_window(s, wiring, batch, write_window)
                    .adaptive_batch(batch_max),
            ))?;
            Ok(Some(src))
        }
        SourceSpec::Eject(uid) => {
            w.spawn(Box::new(PumpFilterEject::new(
                Box::new(crate::transform::Identity),
                uid,
                wiring,
                batch,
            )))?;
            Ok(None)
        }
        // Merged sources are resolved to an Eject in `build()`.
        SourceSpec::Merge(..) | SourceSpec::MergeEjects(..) | SourceSpec::Program(..) => {
            unreachable!("merge sources resolved before discipline wiring")
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_conventional(
    w: &mut Wirer,
    source: SourceSpec,
    stages: Vec<Box<dyn Transform>>,
    taps: &[ReportTap],
    batch: usize,
    batch_max: usize,
    buffer_capacity: usize,
    write_window: usize,
    collector: &Collector,
) -> Result<Option<Uid>> {
    // source →W buf_0 R← F_1 →W buf_1 ... →W buf_n R← sink  (Figure 1:
    // n filters need n+1 passive buffers).
    let first_buf = w.spawn(Box::new(PassiveBufferEject::new(buffer_capacity)))?;
    let mut upstream_buf = first_buf;
    for (idx, transform) in stages.into_iter().enumerate() {
        let out_buf = w.spawn(Box::new(PassiveBufferEject::new(buffer_capacity)))?;
        let mut wiring = OutputWiring::primary_to(OutputPort::primary(out_buf));
        for tap in taps.iter().filter(|t| t.stage == idx) {
            // Conventional report streams need their own pipe + reader.
            let report_buf = w.spawn(Box::new(PassiveBufferEject::new(buffer_capacity)))?;
            wiring.add(&tap.channel, OutputPort::primary(report_buf));
            w.spawn(Box::new(SinkEject::new(
                report_buf,
                batch,
                tap.collector.clone(),
            )))?;
        }
        w.spawn(Box::new(PumpFilterEject::new(
            transform,
            upstream_buf,
            wiring,
            batch,
        )))?;
        upstream_buf = out_buf;
    }
    w.spawn(Box::new(
        SinkEject::new(upstream_buf, batch, collector.clone()).adaptive_batch(batch_max),
    ))?;
    spawn_pump_for(w, source, first_buf, batch, batch_max, write_window)
}

/// A wired pipeline, ready to run.
#[derive(Debug)]
pub struct Pipeline {
    kernel: Kernel,
    discipline: Discipline,
    ejects: Vec<Uid>,
    /// Pull-side sinks, spawned in `run()` so their pumps start after the
    /// metrics baseline (and so that truly nothing flows at build time).
    deferred_sinks: Vec<(Option<NodeId>, Box<dyn eden_kernel::EjectBehavior>)>,
    /// `Start` target for source-pumped disciplines.
    start_target: Option<Uid>,
    collector: Collector,
    taps: Vec<ReportTap>,
    baseline: MetricsSnapshot,
    /// The root span of the pipeline's trace; `run` re-enters it so the
    /// data phase joins the tree the build started.
    trace: eden_core::span::SpanContext,
}

impl Pipeline {
    /// The UIDs of every Eject in the pipeline (entity count).
    pub fn ejects(&self) -> &[Uid] {
        &self.ejects
    }

    /// The discipline this pipeline was wired in.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// The output collector (for observing progress mid-run).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Run to end-of-stream, tear the Ejects down, and report.
    pub fn run(mut self, deadline: Duration) -> Result<PipelineRun> {
        let start = Instant::now();
        // The data phase belongs to the trace the build started: the sink
        // spawns and the Start invocation below happen under the root span.
        // The guard is dropped before teardown so the Deactivate sweep does
        // not pollute the tree.
        let ambient = eden_core::span::enter(Some(self.trace));
        for (node, behavior) in self.deferred_sinks.drain(..) {
            let uid = match node {
                Some(n) => self.kernel.spawn_on(n, behavior)?,
                None => self.kernel.spawn(behavior)?,
            };
            self.ejects.push(uid);
        }
        if let Some(target) = self.start_target {
            // Fire the pump; its deferred reply resolves when the source
            // has pushed end-of-stream all the way in, but completion is
            // judged by the sink's collector.
            let _pending = self.kernel.invoke(target, "Start", Value::Unit);
        }
        let output = self.collector.wait_done(deadline)?;
        // Report streams end when their filter flushes, which has happened
        // by now — but their sink Ejects drain concurrently, so wait for
        // each to observe end-of-stream before reading the windows.
        let mut reports = Vec::with_capacity(self.taps.len());
        for t in &self.taps {
            let remaining = deadline.saturating_sub(start.elapsed()).max(Duration::from_secs(1));
            let items = t.collector.wait_done(remaining)?;
            reports.push(((t.stage, t.channel.clone()), items));
        }
        let wall = start.elapsed();
        let metrics = self.kernel.metrics().snapshot().since(&self.baseline);
        let entities = self.ejects.len();
        drop(ambient);
        self.teardown(Duration::from_secs(10));
        Ok(PipelineRun {
            output,
            records_out: 0,
            metrics,
            wall,
            entities,
            reports,
            trace: self.trace.trace,
        }
        .fix_counts())
    }

    /// Deactivate every Eject and wait for them to disappear. Called by
    /// `run`, and useful directly when a pipeline is abandoned.
    pub fn teardown(&self, deadline: Duration) {
        for &uid in &self.ejects {
            let _ = self.kernel.invoke(uid, ops::DEACTIVATE, Value::Unit);
        }
        let start = Instant::now();
        while start.elapsed() < deadline {
            let alive = self
                .ejects
                .iter()
                .any(|&uid| self.kernel.eject_state(uid) == Some(EjectState::Active));
            if !alive {
                return;
            }
            eden_kernel::blocking(|| std::thread::sleep(Duration::from_millis(2)));
        }
    }
}

/// The results of one pipeline execution.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Output records (empty if the pipeline used a null sink).
    pub output: Vec<Value>,
    /// Records delivered to the sink (valid even with a null sink).
    pub records_out: u64,
    /// Metered events during the data phase (setup excluded).
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the data phase.
    pub wall: Duration,
    /// Number of Ejects the pipeline comprised.
    pub entities: usize,
    /// Report-stream captures, keyed by (stage, channel name).
    pub reports: Vec<((usize, String), Vec<Value>)>,
    /// The trace id every span of this run carries (when the kernel records
    /// spans); filter [`Kernel::spans`](eden_kernel::Kernel::spans) by it to
    /// reconstruct the run's causal tree.
    pub trace: u64,
}

impl PipelineRun {
    fn fix_counts(mut self) -> PipelineRun {
        self.records_out = self.output.len() as u64;
        self
    }

    /// Invocations per output record — the paper's headline metric
    /// (n+1 read-only vs 2n+2 conventional).
    pub fn invocations_per_record(&self) -> f64 {
        if self.records_out == 0 {
            return self.metrics.invocations as f64;
        }
        self.metrics.invocations as f64 / self.records_out as f64
    }

    /// Records per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.records_out as f64 / secs
    }

    /// The capture for a given report tap, if present.
    pub fn report(&self, stage: usize, channel: &str) -> Option<&[Value]> {
        self.reports
            .iter()
            .find(|((s, c), _)| *s == stage && c == channel)
            .map(|(_, items)| items.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{filter_fn, map_fn};

    fn doubled(n: i64) -> Vec<Value> {
        (0..n).map(|i| Value::Int(i * 2)).collect()
    }

    fn build_and_run(discipline: Discipline) -> PipelineRun {
        let kernel = Kernel::new();
        let run = PipelineSpec::new(discipline)
            .source_vec((0..40).map(Value::Int).collect())
            .stage(Box::new(map_fn("double", |v| {
                Value::Int(v.as_int().unwrap() * 2)
            })))
            .stage(Box::new(filter_fn("keep-all", |_| true)))
            .batch(4)
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(20))
            .unwrap();
        kernel.shutdown();
        run
    }

    #[test]
    fn read_only_pipeline_runs() {
        let run = build_and_run(Discipline::ReadOnly { read_ahead: 0 });
        assert_eq!(run.output, doubled(40));
        assert_eq!(run.entities, 4); // source + 2 filters + sink
    }

    #[test]
    fn read_only_with_read_ahead_runs() {
        let run = build_and_run(Discipline::ReadOnly { read_ahead: 8 });
        assert_eq!(run.output, doubled(40));
    }

    #[test]
    fn write_only_pipeline_runs() {
        let run = build_and_run(Discipline::WriteOnly { push_ahead: 0 });
        assert_eq!(run.output, doubled(40));
        assert_eq!(run.entities, 4);
    }

    #[test]
    fn write_only_with_push_ahead_runs() {
        let run = build_and_run(Discipline::WriteOnly { push_ahead: 4 });
        assert_eq!(run.output, doubled(40));
    }

    #[test]
    fn conventional_pipeline_runs() {
        let run = build_and_run(Discipline::Conventional { buffer_capacity: 8 });
        assert_eq!(run.output, doubled(40));
        // source + 2 filters + 3 buffers + sink: 2n+3 entities for n=2.
        assert_eq!(run.entities, 7);
    }

    #[test]
    fn all_disciplines_agree() {
        let a = build_and_run(Discipline::ReadOnly { read_ahead: 0 });
        let b = build_and_run(Discipline::WriteOnly { push_ahead: 0 });
        let c = build_and_run(Discipline::Conventional { buffer_capacity: 8 });
        assert_eq!(a.output, b.output);
        assert_eq!(b.output, c.output);
    }

    #[test]
    fn conventional_needs_more_invocations() {
        let ro = build_and_run(Discipline::ReadOnly { read_ahead: 0 });
        let conv = build_and_run(Discipline::Conventional { buffer_capacity: 64 });
        assert!(
            conv.metrics.invocations > ro.metrics.invocations,
            "conventional {} must exceed read-only {}",
            conv.metrics.invocations,
            ro.metrics.invocations
        );
    }

    #[test]
    fn pipeline_without_source_fails_to_build() {
        let kernel = Kernel::new();
        let err = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .build(&kernel)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, EdenError::BadParameter(_)));
        kernel.shutdown();
    }

    #[test]
    fn teardown_reclaims_ejects() {
        let kernel = Kernel::new();
        let pipeline = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_vec((0..4).map(Value::Int).collect())
            .build(&kernel)
            .unwrap();
        // The sink is deferred to run() ("starting the pump"), so a
        // zero-stage pipeline has spawned only its source at this point.
        assert!(kernel.eject_count() >= 1);
        let _run = pipeline.run(Duration::from_secs(10)).unwrap();
        assert_eq!(kernel.eject_count(), 0, "run() must tear the pipeline down");
        kernel.shutdown();
    }

    #[test]
    fn zero_stage_pipeline_copies() {
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::WriteOnly { push_ahead: 0 },
            Discipline::Conventional { buffer_capacity: 4 },
        ] {
            let kernel = Kernel::new();
            let run = PipelineSpec::new(discipline)
                .source_vec((0..7).map(Value::Int).collect())
                .build(&kernel)
                .unwrap()
                .run(Duration::from_secs(10))
                .unwrap();
            assert_eq!(run.output, (0..7).map(Value::Int).collect::<Vec<_>>());
            kernel.shutdown();
        }
    }

    #[test]
    fn merged_sources_concatenate_and_zip() {
        let kernel = Kernel::new();
        let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_merge(
                vec![
                    Box::new(crate::source::VecSource::new(vec![Value::Int(1), Value::Int(2)])),
                    Box::new(crate::source::VecSource::new(vec![Value::Int(10)])),
                ],
                FanInMode::Concatenate,
            )
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(10))
            .unwrap();
        assert_eq!(run.output, vec![Value::Int(1), Value::Int(2), Value::Int(10)]);

        let run = PipelineSpec::new(Discipline::WriteOnly { push_ahead: 0 })
            .source_merge(
                vec![
                    Box::new(crate::source::VecSource::new(vec![Value::Int(1), Value::Int(2)])),
                    Box::new(crate::source::VecSource::new(vec![Value::Int(10), Value::Int(20)])),
                ],
                FanInMode::Zip,
            )
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(10))
            .unwrap();
        assert_eq!(
            run.output,
            vec![
                Value::list(vec![Value::Int(1), Value::Int(10)]),
                Value::list(vec![Value::Int(2), Value::Int(20)]),
            ]
        );
        kernel.shutdown();
    }

    #[test]
    fn invalid_taps_rejected_at_build() {
        struct Reporter;
        impl Transform for Reporter {
            fn push(&mut self, item: Value, out: &mut crate::transform::Emitter) {
                out.emit(item);
            }
            fn secondary_channels(&self) -> Vec<&'static str> {
                vec!["Report"]
            }
        }
        let kernel = Kernel::new();
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::WriteOnly { push_ahead: 0 },
        ] {
            // Stage index out of range.
            let err = PipelineSpec::new(discipline)
                .source_vec(vec![Value::Int(1)])
                .stage(Box::new(Reporter))
                .tap(5, "Report")
                .build(&kernel)
                .map(|_| ())
                .unwrap_err();
            assert!(matches!(err, EdenError::BadParameter(_)), "{err}");
            // Channel not declared by the stage.
            let err = PipelineSpec::new(discipline)
                .source_vec(vec![Value::Int(1)])
                .stage(Box::new(Reporter))
                .tap(0, "Bogus")
                .build(&kernel)
                .map(|_| ())
                .unwrap_err();
            assert!(matches!(err, EdenError::NoSuchChannel(_)), "{err}");
        }
        kernel.shutdown();
    }

    #[test]
    fn program_source_feeds_pipeline() {
        // §4's standard IO module as a pipeline source: conventional
        // imperative writes behind passive output.
        let kernel = Kernel::new();
        let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_program(|out| {
                for i in 0..5 {
                    out.write(Value::Int(i * 11)).expect("write");
                }
            })
            .stage(Box::new(filter_fn("nonzero", |v| {
                v.as_int().map(|i| i != 0).unwrap_or(false)
            })))
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(10))
            .unwrap();
        assert_eq!(
            run.output,
            vec![Value::Int(11), Value::Int(22), Value::Int(33), Value::Int(44)]
        );
        // The program Eject is part of the pipeline and torn down with it.
        assert_eq!(kernel.eject_count(), 0);
        kernel.shutdown();
    }

    #[test]
    fn empty_merge_is_rejected() {
        let kernel = Kernel::new();
        let err = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_merge(vec![], FanInMode::Concatenate)
            .build(&kernel)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, EdenError::BadParameter(_)));
        kernel.shutdown();
    }

    #[test]
    fn distributed_placement_counts_remote_invocations() {
        let kernel = Kernel::new();
        let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 0 })
            .source_vec((0..10).map(Value::Int).collect())
            .stage(Box::new(map_fn("id", |v| v)))
            .over_nodes(3)
            .build(&kernel)
            .unwrap()
            .run(Duration::from_secs(10))
            .unwrap();
        assert!(run.metrics.remote_invocations > 0);
        kernel.shutdown();
    }

    // -- static conformance: PipelineSpec::graph() ---------------------

    fn spec(discipline: Discipline) -> PipelineSpec {
        PipelineSpec::new(discipline)
            .source_vec((0..4).map(Value::Int).collect())
            .stage(Box::new(map_fn("id", |v| v)))
            .stage(Box::new(filter_fn("keep", |_| true)))
    }

    #[test]
    fn specs_conform_by_construction() {
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::WriteOnly { push_ahead: 2 },
            Discipline::Conventional { buffer_capacity: 8 },
        ] {
            let g = spec(discipline).graph().unwrap();
            assert!(g.check().is_empty(), "{discipline:?}: {:?}", g.check());
        }
    }

    #[test]
    fn graph_mirrors_conventional_buffer_count() {
        // n filters → n+1 buffers (Figure 1), visible in the graph.
        let g = spec(Discipline::Conventional { buffer_capacity: 8 })
            .graph()
            .unwrap();
        let buffers = g
            .nodes
            .values()
            .filter(|r| **r == NodeRole::Buffer)
            .count();
        assert_eq!(buffers, 3);
    }

    #[test]
    fn graph_grants_every_edge_under_capability_policy() {
        let g = spec(Discipline::ReadOnly { read_ahead: 0 })
            .policy(ChannelPolicy::Capability)
            .graph()
            .unwrap();
        assert_eq!(g.policy, GrantPolicy::Capability);
        assert_eq!(g.grants.len(), g.edges.len());
        assert!(g.check().is_empty());
    }

    #[test]
    fn tapped_spec_graph_conforms() {
        struct Reporter;
        impl Transform for Reporter {
            fn push(&mut self, item: Value, out: &mut crate::transform::Emitter) {
                out.emit(item);
            }
            fn secondary_channels(&self) -> Vec<&'static str> {
                vec!["Report"]
            }
        }
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::WriteOnly { push_ahead: 0 },
            Discipline::Conventional { buffer_capacity: 4 },
        ] {
            let g = PipelineSpec::new(discipline)
                .source_vec(vec![Value::Int(1)])
                .stage(Box::new(Reporter))
                .tap(0, "Report")
                .graph()
                .unwrap();
            assert!(g.check().is_empty(), "{discipline:?}: {:?}", g.check());
        }
    }

    #[test]
    fn merged_spec_graph_conforms_in_both_asymmetric_disciplines() {
        // Fan-in is natural under read-only; under write-only the builder
        // interposes a pull-side merge filter plus a pump — the §5
        // workaround for "fan-in is impossible" — and the graph records
        // those edges as pull-mode, which the write-only predicate
        // exempts.
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::WriteOnly { push_ahead: 0 },
            Discipline::Conventional { buffer_capacity: 4 },
        ] {
            let g = PipelineSpec::new(discipline)
                .source_merge(
                    vec![
                        Box::new(VecSource::new(vec![Value::Int(1)])),
                        Box::new(VecSource::new(vec![Value::Int(2)])),
                    ],
                    FanInMode::Concatenate,
                )
                .graph()
                .unwrap();
            assert!(g.check().is_empty(), "{discipline:?}: {:?}", g.check());
        }
    }

    #[test]
    fn discipline_kind_strips_knobs() {
        assert_eq!(
            Discipline::ReadOnly { read_ahead: 9 }.kind(),
            DisciplineKind::ReadOnly
        );
        assert_eq!(
            Discipline::WriteOnly { push_ahead: 9 }.kind(),
            DisciplineKind::WriteOnly
        );
        assert_eq!(
            Discipline::Conventional { buffer_capacity: 9 }.kind(),
            DisciplineKind::Conventional
        );
    }
}
