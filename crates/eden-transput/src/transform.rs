//! Pure stream transforms — the *filter function*, separated from the
//! *communication discipline*.
//!
//! §3: "a filter is a program which takes a single stream of input and
//! produces a single stream of output; the output is some transformation of
//! the input." In a conventional system the filter also *pumps*; in Eden's
//! read-only discipline it is "a pure transformer". This module captures
//! the transformation alone, so the very same [`Transform`] can be mounted
//! in a read-only, write-only or conventional filter Eject — which is what
//! makes the discipline-equivalence property tests possible.
//!
//! Transforms may emit on secondary channels (§5's report streams) via
//! [`Emitter::emit_on`].

use std::collections::BTreeMap;

use eden_core::Value;

/// Collects the output of a transform step, per channel.
#[derive(Debug, Default)]
pub struct Emitter {
    primary: Vec<Value>,
    secondary: BTreeMap<String, Vec<Value>>,
}

impl Emitter {
    /// A fresh, empty emitter.
    pub fn new() -> Emitter {
        Emitter::default()
    }

    /// Emit a record on the primary output channel.
    pub fn emit(&mut self, item: Value) {
        self.primary.push(item);
    }

    /// Emit a record on a named secondary channel (e.g. `"Report"`).
    pub fn emit_on(&mut self, channel: &str, item: Value) {
        self.secondary.entry(channel.to_owned()).or_default().push(item);
    }

    /// Drain the primary output.
    pub fn take_primary(&mut self) -> Vec<Value> {
        std::mem::take(&mut self.primary)
    }

    /// Drain every secondary channel's output.
    pub fn take_secondary(&mut self) -> BTreeMap<String, Vec<Value>> {
        std::mem::take(&mut self.secondary)
    }

    /// True when nothing has been emitted since the last drain.
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty() && self.secondary.values().all(Vec::is_empty)
    }
}

/// A pure stream transformation with optional buffering.
///
/// The contract: the adapter feeds every input record through
/// [`push`](Transform::push) in stream order, then calls
/// [`flush`](Transform::flush) exactly once when the input ends. Output
/// order within a channel is the emission order.
pub trait Transform: Send + 'static {
    /// Process one input record.
    fn push(&mut self, item: Value, out: &mut Emitter);

    /// The input has ended; emit anything still buffered (sorters, counters
    /// and paginators produce most of their output here).
    fn flush(&mut self, out: &mut Emitter) {
        let _ = out;
    }

    /// A short name for diagnostics and pipeline listings.
    fn name(&self) -> &'static str {
        "transform"
    }

    /// Names of secondary output channels this transform emits on. The
    /// adapter declares these (after the primary) in its channel table.
    fn secondary_channels(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// Snapshot this transform's internal state for a checkpoint.
    ///
    /// `None` means the transform carries no state worth saving (pure
    /// per-record filters). Stateful transforms (counters, sorters,
    /// paginators) should override this *and* [`restore`](Self::restore);
    /// otherwise a durable filter recovers them freshly reset.
    fn state(&self) -> Option<Value> {
        None
    }

    /// Reinstate a state previously produced by [`state`](Self::state).
    fn restore(&mut self, state: &Value) -> eden_core::Result<()> {
        let _ = state;
        Ok(())
    }
}

/// The identity transform: a one-stage pipe.
#[derive(Debug)]
pub struct Identity;

impl Transform for Identity {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        out.emit(item);
    }
    fn name(&self) -> &'static str {
        "identity"
    }
}

/// A stateless map transform from a closure.
#[derive(Debug)]
pub struct MapFn<F> {
    f: F,
    label: &'static str,
}

/// Build a map transform from a closure.
pub fn map_fn<F>(label: &'static str, f: F) -> MapFn<F>
where
    F: FnMut(Value) -> Value + Send + 'static,
{
    MapFn { f, label }
}

impl<F> Transform for MapFn<F>
where
    F: FnMut(Value) -> Value + Send + 'static,
{
    fn push(&mut self, item: Value, out: &mut Emitter) {
        out.emit((self.f)(item));
    }
    fn name(&self) -> &'static str {
        self.label
    }
}

/// A stateless filter (predicate) transform from a closure.
#[derive(Debug)]
pub struct FilterFn<F> {
    pred: F,
    label: &'static str,
}

/// Build a predicate transform from a closure: records failing the
/// predicate are dropped.
pub fn filter_fn<F>(label: &'static str, pred: F) -> FilterFn<F>
where
    F: FnMut(&Value) -> bool + Send + 'static,
{
    FilterFn { pred, label }
}

impl<F> Transform for FilterFn<F>
where
    F: FnMut(&Value) -> bool + Send + 'static,
{
    fn push(&mut self, item: Value, out: &mut Emitter) {
        if (self.pred)(&item) {
            out.emit(item);
        }
    }
    fn name(&self) -> &'static str {
        self.label
    }
}

/// Run a transform over a whole input offline (no Ejects involved).
/// Returns the primary output and the per-channel secondary outputs.
///
/// This is the *functional semantics* of a filter; the integration tests
/// assert that every communication discipline produces exactly this.
pub fn apply_offline(
    transform: &mut dyn Transform,
    input: impl IntoIterator<Item = Value>,
) -> (Vec<Value>, BTreeMap<String, Vec<Value>>) {
    let mut out = Emitter::new();
    let mut primary = Vec::new();
    let mut secondary: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    let drain = |out: &mut Emitter, primary: &mut Vec<Value>,
                     secondary: &mut BTreeMap<String, Vec<Value>>| {
        primary.append(&mut out.take_primary());
        for (k, mut v) in out.take_secondary() {
            secondary.entry(k).or_default().append(&mut v);
        }
    };
    for item in input {
        transform.push(item, &mut out);
        drain(&mut out, &mut primary, &mut secondary);
    }
    transform.flush(&mut out);
    drain(&mut out, &mut primary, &mut secondary);
    (primary, secondary)
}

/// Run a chain of transforms offline, feeding each stage's primary output
/// to the next stage. Secondary outputs are collected per stage index.
pub fn apply_chain_offline(
    transforms: &mut [Box<dyn Transform>],
    input: Vec<Value>,
) -> Vec<Value> {
    let mut stream = input;
    for t in transforms.iter_mut() {
        let (primary, _secondary) = apply_offline(t.as_mut(), stream);
        stream = primary;
    }
    stream
}


impl std::fmt::Debug for dyn Transform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Transform({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passes_through() {
        let (out, sec) = apply_offline(&mut Identity, [Value::Int(1), Value::Int(2)]);
        assert_eq!(out, vec![Value::Int(1), Value::Int(2)]);
        assert!(sec.is_empty());
    }

    #[test]
    fn map_fn_transforms_each() {
        let mut double = map_fn("double", |v| Value::Int(v.as_int().unwrap() * 2));
        let (out, _) = apply_offline(&mut double, [Value::Int(3), Value::Int(4)]);
        assert_eq!(out, vec![Value::Int(6), Value::Int(8)]);
        assert_eq!(double.name(), "double");
    }

    #[test]
    fn filter_fn_drops_failures() {
        let mut evens = filter_fn("evens", |v| v.as_int().map(|i| i % 2 == 0).unwrap_or(false));
        let (out, _) = apply_offline(&mut evens, (0..6).map(Value::Int));
        assert_eq!(out, vec![Value::Int(0), Value::Int(2), Value::Int(4)]);
    }

    #[test]
    fn emitter_secondary_channels() {
        let mut e = Emitter::new();
        e.emit(Value::Int(1));
        e.emit_on("Report", Value::str("note"));
        assert!(!e.is_empty());
        assert_eq!(e.take_primary(), vec![Value::Int(1)]);
        let sec = e.take_secondary();
        assert_eq!(sec["Report"], vec![Value::str("note")]);
        assert!(e.is_empty());
    }

    /// A transform that buffers everything and reverses at flush — checks
    /// flush-time emission.
    struct Reverser(Vec<Value>);
    impl Transform for Reverser {
        fn push(&mut self, item: Value, _out: &mut Emitter) {
            self.0.push(item);
        }
        fn flush(&mut self, out: &mut Emitter) {
            while let Some(v) = self.0.pop() {
                out.emit(v);
            }
        }
    }

    #[test]
    fn flush_time_emission() {
        let (out, _) = apply_offline(&mut Reverser(Vec::new()), (0..3).map(Value::Int));
        assert_eq!(out, vec![Value::Int(2), Value::Int(1), Value::Int(0)]);
    }

    #[test]
    fn chain_composes() {
        let mut chain: Vec<Box<dyn Transform>> = vec![
            Box::new(map_fn("inc", |v| Value::Int(v.as_int().unwrap() + 1))),
            Box::new(filter_fn("gt1", |v| v.as_int().unwrap() > 1)),
        ];
        let out = apply_chain_offline(&mut chain, (0..3).map(Value::Int).collect());
        assert_eq!(out, vec![Value::Int(2), Value::Int(3)]);
    }
}
