//! The "standard IO module" of §4 — conventional programming over
//! asymmetric transput.
//!
//! "It is possible to adopt a more conventional style of programming by
//! adding an extra process to the filter. The standard IO module obtained
//! from a library would implement the usual *Write* operations that put
//! characters into a buffer. However, that buffer would be shared with a
//! process that receives invocations which request data and services them.
//! The filter process itself would be programmed in the conventional way
//! and make use of the *Write* operations whenever necessary."
//!
//! [`ProgramSourceEject`] is exactly that: the user supplies an ordinary
//! imperative program which calls [`TransputWriter::write`]; the Eject's
//! coordinator serves `Transfer` invocations from the shared buffer. The
//! program never sends an invocation — yet the Eject is a well-behaved
//! read-only source.
//!
//! [`ProgramSinkEject`] is the §5 dual for write-only systems: "a
//! conventional *Read* routine could be implemented by extracting data from
//! an internal buffer; another process would respond to incoming *Write*
//! invocations and use the data thus obtained to fill the same buffer."

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use eden_core::op::ops;
use eden_core::{EdenError, Result, Value};
use eden_kernel::{EjectBehavior, EjectContext, InternalSender, Invocation, ReplyHandle};
use parking_lot::{Condvar, Mutex};

use crate::protocol::{Batch, TransferRequest, WriteRequest};

/// Shared buffer state between the user program and the coordinator.
#[derive(Debug)]
struct Shared {
    queue: Mutex<SharedQueue>,
    /// Signalled when space frees (producer side) or data arrives
    /// (consumer side).
    changed: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct SharedQueue {
    items: VecDeque<Value>,
    closed: bool,
}

impl Shared {
    fn new(capacity: usize) -> Arc<Shared> {
        Arc::new(Shared {
            queue: Mutex::new(SharedQueue {
                items: VecDeque::new(),
                closed: false,
            }),
            changed: Condvar::new(),
            capacity: capacity.max(1),
        })
    }
}

/// The conventional `Write` interface handed to a user program running
/// inside a [`ProgramSourceEject`].
#[derive(Debug)]
pub struct TransputWriter {
    shared: Arc<Shared>,
    /// Wakes the coordinator so it can serve parked readers.
    wake: InternalSender,
}

impl TransputWriter {
    /// Append one record to the output stream. Blocks while the internal
    /// buffer is full (backpressure from slow readers).
    pub fn write(&self, item: Value) -> Result<()> {
        let mut q = self.shared.queue.lock();
        while q.items.len() >= self.shared.capacity {
            if q.closed {
                return Err(EdenError::EndOfStream);
            }
            // Backpressure park. The program usually runs on its own
            // worker-process thread, but `blocking` is the contract for
            // any wait that may hold a pool worker (it is a plain call
            // off-pool).
            eden_kernel::blocking(|| self.shared.changed.wait(&mut q));
        }
        if q.closed {
            return Err(EdenError::EndOfStream);
        }
        q.items.push_back(item);
        drop(q);
        // Nudge the coordinator; this is the intra-Eject communication the
        // paper expects to be "much more efficient than invocation".
        let _ = self.wake.send(Value::str("wake"));
        Ok(())
    }

    /// Convenience: write a text line.
    pub fn write_line(&self, line: impl Into<String>) -> Result<()> {
        self.write(Value::from(line.into()))
    }

    /// Close the stream: readers will observe end-of-stream once the
    /// buffer drains. (Also happens automatically when the program ends.)
    pub fn close(&self) {
        let mut q = self.shared.queue.lock();
        if !q.closed {
            q.closed = true;
            drop(q);
            self.shared.changed.notify_all();
            let _ = self.wake.send(Value::str("wake"));
        }
    }
}

impl Drop for TransputWriter {
    fn drop(&mut self) {
        self.close();
    }
}

/// A read-only source Eject whose data is produced by an ordinary
/// imperative program calling `write`.
pub struct ProgramSourceEject {
    program: Option<Box<dyn FnOnce(TransputWriter) + Send>>,
    capacity: usize,
    shared: Option<Arc<Shared>>,
    waiters: VecDeque<(usize, ReplyHandle)>,
}

impl ProgramSourceEject {
    /// Run `program` in a worker process; serve its writes as a stream.
    pub fn new<F>(program: F) -> ProgramSourceEject
    where
        F: FnOnce(TransputWriter) + Send + 'static,
    {
        ProgramSourceEject::with_capacity(program, 256)
    }

    /// As [`new`](Self::new) with an explicit buffer capacity.
    pub fn with_capacity<F>(program: F, capacity: usize) -> ProgramSourceEject
    where
        F: FnOnce(TransputWriter) + Send + 'static,
    {
        ProgramSourceEject {
            program: Some(Box::new(program)),
            capacity,
            shared: None,
            waiters: VecDeque::new(),
        }
    }

    fn serve(&mut self) {
        let shared = match &self.shared {
            Some(s) => Arc::clone(s),
            None => return,
        };
        loop {
            let front_max = match self.waiters.front() {
                Some((max, _)) => *max,
                None => return,
            };
            let (items, end) = {
                let mut q = shared.queue.lock();
                if q.items.is_empty() && !q.closed {
                    return; // Nothing to say yet; keep the reply parked.
                }
                let n = front_max.min(q.items.len());
                let items: Vec<Value> = q.items.drain(..n).collect();
                let end = q.closed && q.items.is_empty();
                (items, end)
            };
            shared.changed.notify_all(); // Space freed for the program.
            let (_, reply) = self.waiters.pop_front().expect("front checked");
            reply.reply(Ok(Batch { items, end }.to_value()));
        }
    }
}

impl EjectBehavior for ProgramSourceEject {
    fn type_name(&self) -> &'static str {
        "ProgramSource"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        let shared = Shared::new(self.capacity);
        self.shared = Some(Arc::clone(&shared));
        let program = match self.program.take() {
            Some(p) => p,
            None => return,
        };
        let writer = TransputWriter {
            shared,
            wake: ctx.internal_sender(),
        };
        ctx.spawn_process("program", move |_pctx| {
            program(writer);
            // TransputWriter::drop closes the stream.
        });
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::TRANSFER => match TransferRequest::from_value(&inv.arg) {
                Ok(req) => {
                    reply.mark_deferred();
                    self.waiters.push_back((req.max, reply));
                    self.serve();
                }
                Err(e) => reply.reply(Err(e)),
            },
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }

    fn internal(&mut self, _ctx: &EjectContext, _event: Value) {
        self.serve();
    }
}

/// The conventional `Read` interface handed to a user program running
/// inside a [`ProgramSinkEject`].
#[derive(Debug)]
pub struct TransputReader {
    shared: Arc<Shared>,
    /// Wakes the coordinator so it can admit parked writers after this
    /// reader frees buffer space. `None` only in unit tests.
    wake: Option<InternalSender>,
}

impl TransputReader {
    fn took_one(&self) {
        self.shared.changed.notify_all();
        if let Some(wake) = &self.wake {
            let _ = wake.send(Value::str("wake"));
        }
    }

    /// Take the next record, blocking until one arrives. `None` at
    /// end-of-stream.
    pub fn read(&self) -> Option<Value> {
        let mut q = self.shared.queue.lock();
        loop {
            if let Some(item) = q.items.pop_front() {
                drop(q);
                self.took_one();
                return Some(item);
            }
            if q.closed {
                return None;
            }
            eden_kernel::blocking(|| self.shared.changed.wait(&mut q));
        }
    }

    /// Take the next record, giving up after `deadline`.
    pub fn read_timeout(&self, deadline: Duration) -> Result<Option<Value>> {
        let mut q = self.shared.queue.lock();
        loop {
            if let Some(item) = q.items.pop_front() {
                drop(q);
                self.took_one();
                return Ok(Some(item));
            }
            if q.closed {
                return Ok(None);
            }
            if eden_kernel::blocking(|| self.shared.changed.wait_for(&mut q, deadline)).timed_out()
            {
                return Err(EdenError::Timeout);
            }
        }
    }
}

/// A write-only sink Eject whose data is consumed by an ordinary
/// imperative program calling `read`.
pub struct ProgramSinkEject {
    program: Option<Box<dyn FnOnce(TransputReader) + Send>>,
    capacity: usize,
    shared: Option<Arc<Shared>>,
    parked_writes: VecDeque<(WriteRequest, ReplyHandle)>,
}

impl ProgramSinkEject {
    /// Run `program` in a worker process; feed it incoming `Write`s.
    pub fn new<F>(program: F) -> ProgramSinkEject
    where
        F: FnOnce(TransputReader) + Send + 'static,
    {
        ProgramSinkEject::with_capacity(program, 256)
    }

    /// As [`new`](Self::new) with an explicit buffer capacity.
    pub fn with_capacity<F>(program: F, capacity: usize) -> ProgramSinkEject
    where
        F: FnOnce(TransputReader) + Send + 'static,
    {
        ProgramSinkEject {
            program: Some(Box::new(program)),
            capacity,
            shared: None,
            parked_writes: VecDeque::new(),
        }
    }

    fn admit(&mut self) {
        let shared = match &self.shared {
            Some(s) => Arc::clone(s),
            None => return,
        };
        while let Some((w, _)) = self.parked_writes.front() {
            let fits = {
                let q = shared.queue.lock();
                q.items.len() + w.items.len() <= shared.capacity || q.items.is_empty()
            };
            if !fits {
                return;
            }
            let (w, reply) = self.parked_writes.pop_front().expect("front checked");
            let mut q = shared.queue.lock();
            q.items.extend(w.items);
            if w.end {
                q.closed = true;
            }
            drop(q);
            shared.changed.notify_all();
            reply.reply(Ok(Value::Unit));
        }
    }
}

impl EjectBehavior for ProgramSinkEject {
    fn type_name(&self) -> &'static str {
        "ProgramSink"
    }

    fn activate(&mut self, ctx: &EjectContext) {
        let shared = Shared::new(self.capacity);
        self.shared = Some(Arc::clone(&shared));
        let program = match self.program.take() {
            Some(p) => p,
            None => return,
        };
        let wake = ctx.internal_sender();
        let reader = TransputReader {
            shared: Arc::clone(&shared),
            wake: Some(ctx.internal_sender()),
        };
        ctx.spawn_process("program", move |_pctx| {
            program(reader);
            // Final wake in case the program exits with writes parked.
            let _ = wake.send(Value::str("wake"));
        });
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::WRITE => match WriteRequest::from_value(inv.arg) {
                Ok(w) => {
                    reply.mark_deferred();
                    self.parked_writes.push_back((w, reply));
                    self.admit();
                }
                Err(e) => reply.reply(Err(e)),
            },
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }

    fn internal(&mut self, _ctx: &EjectContext, _event: Value) {
        self.admit();
    }
}


impl std::fmt::Debug for ProgramSourceEject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramSourceEject").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for ProgramSinkEject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramSinkEject").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::sink::SinkEject;
    use crate::source::VecSource;
    use crate::write_only::{OutputPort, OutputWiring, PushSourceEject};
    use eden_kernel::Kernel;

    #[test]
    fn program_source_serves_writes_as_stream() {
        let kernel = Kernel::new();
        let src = kernel
            .spawn(Box::new(ProgramSourceEject::new(|out| {
                for i in 0..10 {
                    out.write(Value::Int(i)).unwrap();
                }
            })))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(src, 3, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items, (0..10).map(Value::Int).collect::<Vec<_>>());
        kernel.shutdown();
    }

    #[test]
    fn program_source_backpressure() {
        // A tiny buffer: the program cannot race ahead of the reader.
        let kernel = Kernel::new();
        let src = kernel
            .spawn(Box::new(ProgramSourceEject::with_capacity(
                |out| {
                    for i in 0..50 {
                        out.write(Value::Int(i)).unwrap();
                    }
                },
                2,
            )))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(src, 5, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items.len(), 50);
        kernel.shutdown();
    }

    #[test]
    fn program_sink_reads_incoming_writes() {
        let kernel = Kernel::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let done2 = Arc::clone(&done);
        let sink = kernel
            .spawn(Box::new(ProgramSinkEject::new(move |input| {
                while let Some(v) = input.read() {
                    seen2.lock().push(v);
                }
                *done2.0.lock() = true;
                done2.1.notify_all();
            })))
            .unwrap();
        let src = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new((0..10).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(sink)),
                4,
            )))
            .unwrap();
        kernel.invoke(src, "Start", Value::Unit).wait().unwrap();
        let mut flag = done.0.lock();
        if !*flag {
            done.1.wait_for(&mut flag, Duration::from_secs(10));
        }
        assert!(*flag, "program must see end of stream");
        drop(flag);
        assert_eq!(seen.lock().len(), 10);
        kernel.shutdown();
    }

    #[test]
    fn reader_timeout_fires() {
        let shared = Shared::new(4);
        let reader = TransputReader {
            shared: Arc::clone(&shared),
            wake: None,
        };
        assert_eq!(
            reader.read_timeout(Duration::from_millis(20)).unwrap_err(),
            EdenError::Timeout
        );
    }

    #[test]
    fn writer_close_is_idempotent_and_drop_closes() {
        let kernel = Kernel::new();
        let src = kernel
            .spawn(Box::new(ProgramSourceEject::new(|out| {
                out.write_line("only").unwrap();
                out.close();
                out.close();
                // Writing after close fails cleanly.
                assert!(out.write(Value::Int(1)).is_err());
            })))
            .unwrap();
        let collector = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(src, 4, collector.clone())))
            .unwrap();
        let items = collector.wait_done(Duration::from_secs(10)).unwrap();
        assert_eq!(items, vec![Value::str("only")]);
        kernel.shutdown();
    }
}
