//! Interleaving models for the transput plane, compiled only under
//! `RUSTFLAGS="--cfg loom"` (see `vendor/loom` for what `model` means in
//! this offline build).
//!
//! Two properties are modelled:
//!
//! 1. **AdaptiveBatch demand propagation** — the batch dial is a shared
//!    atomic raced by a grower (invocation-bound end) and a shrinker
//!    (overshot consumer). Whatever the interleaving, every observed
//!    value must stay inside the configured bounds and every clone of
//!    the dial must agree once the racers are done. This drives the
//!    *real* [`AdaptiveBatch`], not a distilled copy: its lock-free
//!    compare-exchange loop is exactly the kind of code stress
//!    iteration exists for.
//!
//! 2. **Checkpoint-before-reply ordering** — §7 recovery correctness
//!    rests on the acceptor checkpointing *before* acknowledging a
//!    record (see `recovery.rs`: a crash between ack and checkpoint
//!    would lose an acknowledged record). The model is the classic
//!    release/acquire message-passing shape: if an observer (the
//!    reactivating replacement) sees ack `n`, it must also see a
//!    checkpoint covering at least `n`.
#![cfg(loom)]

use eden_transput::AdaptiveBatch;
use loom::sync::Arc;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::thread;

#[test]
fn adaptive_batch_stays_bounded_under_racing_grow_and_shrink() {
    loom::model(|| {
        let dial = AdaptiveBatch::new(2, 64);
        let (min, max) = dial.bounds();

        let grower = {
            let dial = dial.clone();
            thread::spawn(move || {
                for _ in 0..4 {
                    dial.grow();
                    let seen = dial.current();
                    assert!((min..=max).contains(&seen), "grow side saw {seen}");
                }
            })
        };
        let shrinker = {
            let dial = dial.clone();
            thread::spawn(move || {
                for _ in 0..4 {
                    dial.shrink();
                    let seen = dial.current();
                    assert!((min..=max).contains(&seen), "shrink side saw {seen}");
                }
            })
        };

        grower.join().unwrap();
        shrinker.join().unwrap();

        // Demand propagation: both ends of the connection read the same
        // settled dial — the clone shares state rather than snapshotting.
        let settled = dial.current();
        assert!((min..=max).contains(&settled));
        assert_eq!(dial.clone().current(), settled);
    });
}

#[test]
fn fixed_batch_is_immune_to_racing_adjustment() {
    loom::model(|| {
        let dial = AdaptiveBatch::fixed(16);
        let racer = {
            let dial = dial.clone();
            thread::spawn(move || {
                dial.grow();
                dial.shrink();
            })
        };
        dial.shrink();
        dial.grow();
        racer.join().unwrap();
        assert_eq!(dial.current(), 16);
    });
}

#[test]
fn checkpoint_is_visible_before_the_reply_it_covers() {
    loom::model(|| {
        // `stable` is the acceptor's checkpointed high-water mark;
        // `acked` is the reply counter the producer observes. The
        // acceptor's publish order (checkpoint, then ack) uses Release
        // so an Acquire reader of `acked` also sees the checkpoint.
        let stable = Arc::new(AtomicUsize::new(0));
        let acked = Arc::new(AtomicUsize::new(0));

        let acceptor = {
            let stable = stable.clone();
            let acked = acked.clone();
            thread::spawn(move || {
                for seq in 1..=3usize {
                    stable.store(seq, Ordering::Release);
                    acked.store(seq, Ordering::Release);
                }
            })
        };

        // The reactivating replacement: at whatever point it comes up,
        // every acknowledged record must already be covered by the
        // checkpoint it reloads.
        let observer = {
            let stable = stable.clone();
            let acked = acked.clone();
            thread::spawn(move || {
                for _ in 0..3 {
                    let seen_acked = acked.load(Ordering::Acquire);
                    let seen_stable = stable.load(Ordering::Acquire);
                    assert!(
                        seen_stable >= seen_acked,
                        "ack {seen_acked} observed with checkpoint at {seen_stable}: \
                         a crash here would lose an acknowledged record"
                    );
                    thread::yield_now();
                }
            })
        };

        acceptor.join().unwrap();
        observer.join().unwrap();
        assert_eq!(stable.load(Ordering::Acquire), 3);
        assert_eq!(acked.load(Ordering::Acquire), 3);
    });
}
