//! The paper's headline arithmetic (§4), measured rather than assumed.
//!
//! "One advantage of the 'read only' system just outlined is that a
//! sequence of n filters, a source and a sink can all be implemented by
//! n+2 Ejects. This means that only n+1 invocations are needed to transfer
//! a datum from one end of the pipeline to the other. Conversely, if each
//! filter were to perform active output as well as active input, 2n+2
//! invocations would be needed, as would n+1 passive buffer Ejects."

use std::time::Duration;

use eden_core::Value;
use eden_kernel::Kernel;
use eden_transput::transform::Identity;
use eden_transput::{Discipline, PipelineSpec, PipelineRun};

const ITEMS: i64 = 200;

fn run_identity_pipeline(discipline: Discipline, depth: usize) -> PipelineRun {
    let kernel = Kernel::new();
    let mut builder = PipelineSpec::new(discipline)
        .source_vec((0..ITEMS).map(Value::Int).collect())
        .batch(1); // One datum per invocation: per-datum counts are exact.
    for _ in 0..depth {
        builder = builder.stage(Box::new(Identity));
    }
    let run = builder
        .build(&kernel)
        .unwrap()
        .run(Duration::from_secs(30))
        .unwrap();
    kernel.shutdown();
    run
}

#[test]
fn read_only_entities_are_n_plus_2() {
    for n in [0usize, 1, 3, 5] {
        let run = run_identity_pipeline(Discipline::ReadOnly { read_ahead: 0 }, n);
        assert_eq!(run.entities, n + 2, "read-only entities at n={n}");
    }
}

#[test]
fn conventional_entities_are_2n_plus_3() {
    for n in [1usize, 2, 4] {
        let run = run_identity_pipeline(Discipline::Conventional { buffer_capacity: 8 }, n);
        assert_eq!(run.entities, 2 * n + 3, "conventional entities at n={n}");
    }
}

#[test]
fn read_only_invocations_are_n_plus_1_per_datum() {
    for n in [0usize, 1, 3, 5] {
        let run = run_identity_pipeline(Discipline::ReadOnly { read_ahead: 0 }, n);
        assert_eq!(run.records_out, ITEMS as u64);
        let expected = (n as u64 + 1) * ITEMS as u64;
        assert_eq!(
            run.metrics.invocations, expected,
            "read-only invocations at n={n}: {} per datum",
            run.invocations_per_record()
        );
    }
}

#[test]
fn write_only_invocations_are_n_plus_1_per_datum() {
    // The dual (§5): also n+1, plus the single Start control invocation.
    for n in [0usize, 1, 3] {
        let run = run_identity_pipeline(Discipline::WriteOnly { push_ahead: 0 }, n);
        let expected = (n as u64 + 1) * ITEMS as u64 + 1;
        assert_eq!(
            run.metrics.invocations, expected,
            "write-only invocations at n={n}"
        );
    }
}

#[test]
fn conventional_invocations_are_2n_plus_2_per_datum() {
    for n in [1usize, 2, 4] {
        let run = run_identity_pipeline(Discipline::Conventional { buffer_capacity: 8 }, n);
        // 2n+2 data invocations per datum, plus the Start control
        // invocation. Buffers may add a bounded number of extra empty
        // transfers near end-of-stream when a reader races the final
        // write; allow that constant-per-stage slack but no per-datum
        // slack.
        let expected = (2 * n as u64 + 2) * ITEMS as u64;
        let slack = (2 * n as u64 + 3) * 2 + 1;
        assert!(
            run.metrics.invocations >= expected,
            "conventional invocations at n={n}: {} < {expected}",
            run.metrics.invocations
        );
        assert!(
            run.metrics.invocations <= expected + slack,
            "conventional invocations at n={n}: {} > {expected}+{slack}",
            run.metrics.invocations
        );
    }
}

#[test]
fn asymmetric_disciplines_save_roughly_half() {
    let n = 4;
    let ro = run_identity_pipeline(Discipline::ReadOnly { read_ahead: 0 }, n);
    let conv = run_identity_pipeline(Discipline::Conventional { buffer_capacity: 8 }, n);
    let ratio = conv.metrics.invocations as f64 / ro.metrics.invocations as f64;
    // (2n+2)/(n+1) = 2 exactly.
    assert!(
        (ratio - 2.0).abs() < 0.1,
        "expected ~2x invocation saving, got {ratio:.3}"
    );
    // And the buffer Ejects disappear: n+1 fewer entities.
    assert_eq!(conv.entities - ro.entities, n + 1);
}
