//! Model-based testing of the passive buffer (the Unix pipe Eject).
//!
//! Random interleavings of `Write` and `Transfer` invocations are fired at
//! a `PassiveBufferEject`; afterwards we assert the stream invariants that
//! make it a pipe: everything written comes out, exactly once, in order,
//! and the end flag appears exactly at the true end.

use std::time::Duration;

use eden_core::op::ops;
use eden_core::Value;
use eden_kernel::{Kernel, PendingReply};
use eden_transput::conventional::PassiveBufferEject;
use eden_transput::protocol::{Batch, TransferRequest, WriteRequest};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Write this many records.
    Write(u8),
    /// Transfer up to this many records.
    Read(u8),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u8..6).prop_map(Op::Write),
            (1u8..6).prop_map(Op::Read),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pipe_preserves_the_stream(ops in ops_strategy(), capacity in 1usize..8) {
        let kernel = Kernel::new();
        let pipe = kernel
            .spawn(Box::new(PassiveBufferEject::new(capacity)))
            .expect("spawn pipe");
        let mut next_record: i64 = 0;
        let mut write_acks: Vec<PendingReply> = Vec::new();
        let mut reads: Vec<PendingReply> = Vec::new();
        for op in &ops {
            match op {
                Op::Write(n) => {
                    let items: Vec<Value> =
                        (next_record..next_record + *n as i64).map(Value::Int).collect();
                    next_record += *n as i64;
                    write_acks.push(kernel.invoke(
                        pipe,
                        ops::WRITE,
                        WriteRequest::more(items).to_value(),
                    ));
                }
                Op::Read(n) => {
                    reads.push(kernel.invoke(
                        pipe,
                        ops::TRANSFER,
                        TransferRequest::primary(*n as usize).to_value(),
                    ));
                }
            }
        }
        // Close the stream, then drain whatever remains.
        write_acks.push(kernel.invoke(pipe, ops::WRITE, WriteRequest::last(vec![]).to_value()));
        loop {
            let got = kernel
                .invoke(pipe, ops::TRANSFER, TransferRequest::primary(4).to_value()).wait()
                .and_then(Batch::from_value)
                .expect("drain");
            reads.push(PendingReply::ready(Ok(got.clone().to_value())));
            if got.end {
                break;
            }
        }
        // Every write must eventually be acknowledged.
        for ack in write_acks {
            ack.wait_timeout(Duration::from_secs(20)).expect("write ack");
        }
        // Collect every read reply, in issue order.
        let mut out: Vec<i64> = Vec::new();
        let mut saw_end = false;
        for pending in reads {
            let batch = Batch::from_value(
                pending.wait_timeout(Duration::from_secs(20)).expect("read reply"),
            )
            .expect("batch");
            prop_assert!(!saw_end || batch.is_empty(), "records after end");
            for item in &batch.items {
                out.push(item.as_int().expect("int record"));
            }
            if batch.end {
                saw_end = true;
            }
        }
        prop_assert!(saw_end, "the end flag must eventually appear");
        // FIFO, exactly-once: readers issued in order see the whole
        // sequence in order.
        prop_assert_eq!(out.len() as i64, next_record, "every record exactly once");
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, i as i64, "records in order");
        }
        kernel.shutdown();
    }
}
