//! Aggregating filters: transforms that buffer and emit at flush.
//!
//! These demonstrate why [`Transform::flush`] exists: a sorter or counter
//! cannot emit anything until its input ends. In a read-only pipeline that
//! means the whole aggregation happens under the sink's demand — laziness
//! all the way down.

use std::collections::BTreeMap;

use eden_core::Value;
use eden_transput::{Emitter, Transform};

/// `wc`: counts lines, words and characters; emits one summary record at
/// flush.
#[derive(Default)]
#[derive(Debug)]
pub struct WordCount {
    lines: i64,
    words: i64,
    chars: i64,
}

impl WordCount {
    /// A fresh counter.
    pub fn new() -> WordCount {
        WordCount::default()
    }
}

impl Transform for WordCount {
    fn push(&mut self, item: Value, _out: &mut Emitter) {
        if let Value::Str(line) = &item {
            self.lines += 1;
            self.words += line.split_whitespace().count() as i64;
            self.chars += line.chars().count() as i64;
        }
    }
    fn flush(&mut self, out: &mut Emitter) {
        out.emit(Value::record([
            ("lines", Value::Int(self.lines)),
            ("words", Value::Int(self.words)),
            ("chars", Value::Int(self.chars)),
        ]));
    }
    fn name(&self) -> &'static str {
        "wc"
    }
    fn state(&self) -> Option<Value> {
        Some(Value::record([
            ("lines", Value::Int(self.lines)),
            ("words", Value::Int(self.words)),
            ("chars", Value::Int(self.chars)),
        ]))
    }
    fn restore(&mut self, state: &Value) -> eden_core::Result<()> {
        self.lines = state.field("lines")?.as_int()?;
        self.words = state.field("words")?.as_int()?;
        self.chars = state.field("chars")?.as_int()?;
        Ok(())
    }
}

/// `sort`: buffers all lines, emits them sorted at flush. Non-string
/// records sort after strings, by their debug form (total order needed).
#[derive(Debug)]
pub struct SortLines {
    buffered: Vec<Value>,
}

impl SortLines {
    /// A fresh sorter.
    pub fn new() -> SortLines {
        SortLines {
            buffered: Vec::new(),
        }
    }
}

impl Default for SortLines {
    fn default() -> Self {
        SortLines::new()
    }
}

fn sort_key(v: &Value) -> (u8, String) {
    match v {
        Value::Str(s) => (0, s.to_string_owned()),
        other => (1, format!("{other:?}")),
    }
}

impl Transform for SortLines {
    fn push(&mut self, item: Value, _out: &mut Emitter) {
        self.buffered.push(item);
    }
    fn flush(&mut self, out: &mut Emitter) {
        self.buffered.sort_by_key(sort_key);
        for item in self.buffered.drain(..) {
            out.emit(item);
        }
    }
    fn name(&self) -> &'static str {
        "sort"
    }
    fn state(&self) -> Option<Value> {
        Some(Value::record([(
            "buffered",
            Value::list(self.buffered.clone()),
        )]))
    }
    fn restore(&mut self, state: &Value) -> eden_core::Result<()> {
        self.buffered = state.field("buffered")?.as_list()?.to_vec();
        Ok(())
    }
}

/// `uniq`: drops *adjacent* duplicate records (sort first for global
/// dedup, as in Unix).
#[derive(Default)]
#[derive(Debug)]
pub struct Uniq {
    last: Option<Value>,
}

impl Uniq {
    /// A fresh deduplicator.
    pub fn new() -> Uniq {
        Uniq::default()
    }
}

impl Transform for Uniq {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        if self.last.as_ref() != Some(&item) {
            out.emit(item.clone());
            self.last = Some(item);
        }
    }
    fn name(&self) -> &'static str {
        "uniq"
    }
    fn state(&self) -> Option<Value> {
        Some(Value::record([(
            "last",
            Value::list(self.last.clone().into_iter().collect::<Vec<_>>()),
        )]))
    }
    fn restore(&mut self, state: &Value) -> eden_core::Result<()> {
        self.last = state.field("last")?.as_list()?.first().cloned();
        Ok(())
    }
}

/// Word-frequency table: emits `word<TAB>count` lines at flush, sorted by
/// descending count then word. The core of the paper-era "spelling
/// checker" toolchain.
#[derive(Default)]
#[derive(Debug)]
pub struct WordFrequency {
    counts: BTreeMap<String, u64>,
}

impl WordFrequency {
    /// A fresh frequency counter.
    pub fn new() -> WordFrequency {
        WordFrequency::default()
    }
}

impl Transform for WordFrequency {
    fn push(&mut self, item: Value, _out: &mut Emitter) {
        if let Value::Str(line) = &item {
            for word in line.split(|c: char| !c.is_alphanumeric()) {
                if !word.is_empty() {
                    *self.counts.entry(word.to_lowercase()).or_insert(0) += 1;
                }
            }
        }
    }
    fn flush(&mut self, out: &mut Emitter) {
        let mut pairs: Vec<(String, u64)> = std::mem::take(&mut self.counts).into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (word, count) in pairs {
            out.emit(Value::str(format!("{word}\t{count}")));
        }
    }
    fn name(&self) -> &'static str {
        "word-frequency"
    }
}

/// Run-length encode consecutive equal records into
/// `Record{item, count}` pairs.
#[derive(Default)]
#[derive(Debug)]
pub struct RleEncode {
    run: Option<(Value, i64)>,
}

impl RleEncode {
    /// A fresh encoder.
    pub fn new() -> RleEncode {
        RleEncode::default()
    }

    fn emit_run(run: Option<(Value, i64)>, out: &mut Emitter) {
        if let Some((item, count)) = run {
            out.emit(Value::record([
                ("item", item),
                ("count", Value::Int(count)),
            ]));
        }
    }
}

impl Transform for RleEncode {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        match &mut self.run {
            Some((current, count)) if *current == item => *count += 1,
            _ => {
                let prev = self.run.take();
                Self::emit_run(prev, out);
                self.run = Some((item, 1));
            }
        }
    }
    fn flush(&mut self, out: &mut Emitter) {
        let prev = self.run.take();
        Self::emit_run(prev, out);
    }
    fn name(&self) -> &'static str {
        "rle-encode"
    }
}

/// Inverse of [`RleEncode`]: expand `Record{item, count}` runs.
/// Non-run records pass through unchanged.
#[derive(Default)]
#[derive(Debug)]
pub struct RleDecode;

impl RleDecode {
    /// A fresh decoder.
    pub fn new() -> RleDecode {
        RleDecode
    }
}

impl Transform for RleDecode {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        let run = item
            .field_opt("item")
            .cloned()
            .zip(item.field_opt("count").and_then(|c| c.as_int().ok()));
        match run {
            Some((value, count)) if count >= 0 => {
                for _ in 0..count {
                    out.emit(value.clone());
                }
            }
            _ => out.emit(item),
        }
    }
    fn name(&self) -> &'static str {
        "rle-decode"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_transput::transform::apply_offline;

    fn lines(ls: &[&str]) -> Vec<Value> {
        ls.iter().map(|l| Value::str(*l)).collect()
    }

    #[test]
    fn word_count_summary() {
        let (out, _) = apply_offline(
            &mut WordCount::new(),
            lines(&["three words here", "two words", ""]),
        );
        assert_eq!(out.len(), 1);
        let rec = &out[0];
        assert_eq!(rec.field("lines").unwrap().as_int().unwrap(), 3);
        assert_eq!(rec.field("words").unwrap().as_int().unwrap(), 5);
    }

    #[test]
    fn sort_emits_sorted_at_flush() {
        let (out, _) = apply_offline(&mut SortLines::new(), lines(&["c", "a", "b"]));
        assert_eq!(out, lines(&["a", "b", "c"]));
    }

    #[test]
    fn sort_handles_mixed_types() {
        let (out, _) = apply_offline(
            &mut SortLines::new(),
            vec![Value::Int(2), Value::str("a"), Value::Int(1)],
        );
        assert_eq!(out[0], Value::str("a"));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn uniq_drops_adjacent_only() {
        let (out, _) = apply_offline(&mut Uniq::new(), lines(&["a", "a", "b", "a"]));
        assert_eq!(out, lines(&["a", "b", "a"]));
    }

    #[test]
    fn word_frequency_sorted_by_count() {
        let (out, _) = apply_offline(
            &mut WordFrequency::new(),
            lines(&["the cat and the dog", "the end"]),
        );
        assert_eq!(out[0].as_str().unwrap(), "the\t3");
    }

    #[test]
    fn rle_roundtrip() {
        let input = lines(&["x", "x", "x", "y", "x"]);
        let (encoded, _) = apply_offline(&mut RleEncode::new(), input.clone());
        assert_eq!(encoded.len(), 3);
        assert_eq!(encoded[0].field("count").unwrap().as_int().unwrap(), 3);
        let (decoded, _) = apply_offline(&mut RleDecode::new(), encoded);
        assert_eq!(decoded, input);
    }

    #[test]
    fn rle_decode_passes_non_runs() {
        let (out, _) = apply_offline(&mut RleDecode::new(), lines(&["plain"]));
        assert_eq!(out, lines(&["plain"]));
    }
}
