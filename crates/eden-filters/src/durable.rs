//! Durable (checkpointable) filter Ejects.
//!
//! §1: "The data in a passive representation should be sufficient to
//! enable the Eject they represent to re-construct itself in a consistent
//! state." Files checkpoint in `eden-fs`; this module applies the same
//! contract to *pipeline stages*. A [`DurableFilterEject`] is a read-only
//! (active-input / passive-output) filter whose passive representation
//! captures:
//!
//! * the filter's identity — the `make_filter` name and arguments;
//! * the transform's internal state ([`Transform::state`]);
//! * the undelivered output buffers;
//! * the upstream connection (UID + integer channel) and progress flags.
//!
//! After a crash, the next `Transfer` reactivates it and the stream
//! continues from the last checkpoint. Recovery semantics are
//! **at-most-once** for progress since that checkpoint: records the filter
//! consumed from upstream after its last checkpoint are lost (the
//! upstream's cursor has moved on). With `auto_checkpoint` the filter
//! checkpoints after serving every `Transfer`, so a crash *between*
//! operations loses nothing.
//!
//! Design restrictions (deliberate — this is the checkpointable subset):
//! lazy pulling only, a single input, integer channel identifiers (a
//! capability channel's UID would be forged on reconstruction, which is
//! exactly what §5 promises cannot happen).

use std::collections::VecDeque;

use eden_core::op::ops;
use eden_core::{EdenError, Result, Uid, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, Kernel, ReplyHandle};
use eden_transput::protocol::{Batch, ChannelId, GetChannelRequest, TransferRequest};
use eden_transput::transform::{Emitter, Transform};

use crate::make_filter;

/// The Eden type name of [`DurableFilterEject`].
pub const DURABLE_FILTER_TYPE: &str = "DurableFilter";

/// The identity of a filter in the `make_filter` registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSpec {
    /// Registry name, e.g. `"line-number"`.
    pub name: String,
    /// String arguments.
    pub args: Vec<String>,
}

impl FilterSpec {
    /// A spec with no arguments.
    pub fn new(name: &str) -> FilterSpec {
        FilterSpec {
            name: name.to_owned(),
            args: Vec::new(),
        }
    }

    /// A spec with arguments.
    pub fn with_args<I, S>(name: &str, args: I) -> FilterSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FilterSpec {
            name: name.to_owned(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    fn build(&self) -> Result<Box<dyn Transform>> {
        let args: Vec<&str> = self.args.iter().map(String::as_str).collect();
        make_filter(&self.name, &args)
    }

    fn to_value(&self) -> Value {
        Value::record([
            ("name", Value::str(self.name.clone())),
            (
                "args",
                Value::List(self.args.iter().map(|a| Value::str(a.clone())).collect()),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<FilterSpec> {
        Ok(FilterSpec {
            name: v.field("name")?.as_str()?.to_owned(),
            args: v
                .field("args")?
                .as_list()?
                .iter()
                .map(|a| a.as_str().map(str::to_owned))
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

/// A crash-recoverable read-only filter. See the module docs.
#[derive(Debug)]
pub struct DurableFilterEject {
    spec: FilterSpec,
    transform: Box<dyn Transform>,
    input: Uid,
    input_channel: u32,
    batch: usize,
    auto_checkpoint: bool,
    /// Output buffers: index 0 is the primary channel, then the
    /// transform's secondary channels in declaration order.
    buffers: Vec<VecDeque<Value>>,
    channel_names: Vec<String>,
    input_done: bool,
    flushed: bool,
}

impl DurableFilterEject {
    /// Build a durable filter pulling `input`'s primary channel.
    pub fn new(spec: FilterSpec, input: Uid, batch: usize) -> Result<DurableFilterEject> {
        Self::assemble(spec, input, 0, batch, true, None)
    }

    fn assemble(
        spec: FilterSpec,
        input: Uid,
        input_channel: u32,
        batch: usize,
        auto_checkpoint: bool,
        state: Option<&Value>,
    ) -> Result<DurableFilterEject> {
        let mut transform = spec.build()?;
        if let Some(state) = state {
            transform.restore(state)?;
        }
        let mut channel_names = vec![eden_transput::protocol::OUTPUT_NAME.to_owned()];
        channel_names.extend(transform.secondary_channels().iter().map(|s| s.to_string()));
        let buffers = (0..channel_names.len()).map(|_| VecDeque::new()).collect();
        Ok(DurableFilterEject {
            spec,
            transform,
            input,
            input_channel,
            batch: batch.max(1),
            auto_checkpoint,
            buffers,
            channel_names,
            input_done: false,
            flushed: false,
        })
    }

    /// Reactivation constructor for the kernel's type registry.
    pub fn from_passive(rep: Option<Value>) -> Result<Box<dyn EjectBehavior>> {
        let rep = rep.ok_or_else(|| {
            EdenError::CorruptCheckpoint("durable filter needs a representation".into())
        })?;
        let spec = FilterSpec::from_value(rep.field("spec")?)?;
        let state = rep.field_opt("state").cloned();
        let mut filter = Self::assemble(
            spec,
            rep.field("input")?.as_uid()?,
            rep.field("input_channel")?.as_int()? as u32,
            rep.field("batch")?.as_int()? as usize,
            rep.field("auto_checkpoint")?.as_bool()?,
            state.as_ref(),
        )?;
        filter.input_done = rep.field("input_done")?.as_bool()?;
        filter.flushed = rep.field("flushed")?.as_bool()?;
        for (idx, buffered) in rep.field("buffers")?.as_list()?.iter().enumerate() {
            if let Some(buffer) = filter.buffers.get_mut(idx) {
                *buffer = buffered.as_list()?.iter().cloned().collect();
            }
        }
        Ok(Box::new(filter))
    }

    /// Register the reactivation constructor on a kernel. Required before
    /// any durable filter can recover from a crash.
    pub fn register(kernel: &Kernel) {
        kernel.register_type(DURABLE_FILTER_TYPE, DurableFilterEject::from_passive);
    }

    fn channel_index(&self, channel: ChannelId) -> Result<usize> {
        match channel {
            ChannelId::Number(n) if (n as usize) < self.buffers.len() => Ok(n as usize),
            ChannelId::Number(n) => {
                Err(EdenError::NoSuchChannel(format!("no channel numbered {n}")))
            }
            ChannelId::Cap(_) => Err(EdenError::NotAuthorized(
                "durable filters use integer channel identifiers".into(),
            )),
        }
    }

    fn drain_emitter(&mut self, mut emitter: Emitter) {
        for item in emitter.take_primary() {
            self.buffers[0].push_back(item);
        }
        for (name, items) in emitter.take_secondary() {
            if let Some(idx) = self.channel_names.iter().position(|n| *n == name) {
                self.buffers[idx].extend(items);
            }
        }
    }

    fn fill(&mut self, ctx: &EjectContext, idx: usize, want: usize) {
        while self.buffers[idx].len() < want && !self.flushed {
            if self.input_done {
                let mut emitter = Emitter::new();
                self.transform.flush(&mut emitter);
                self.drain_emitter(emitter);
                self.flushed = true;
                break;
            }
            let req = TransferRequest {
                channel: ChannelId::Number(self.input_channel),
                max: self.batch,
                pos: None,
            };
            match ctx
                .invoke(self.input, ops::TRANSFER, req.to_value()).wait()
                .and_then(Batch::from_value)
            {
                Ok(batch) => {
                    let mut emitter = Emitter::new();
                    for item in batch.items {
                        self.transform.push(item, &mut emitter);
                    }
                    self.drain_emitter(emitter);
                    if batch.end {
                        self.input_done = true;
                    }
                }
                Err(_) => {
                    // Upstream failure ends the stream at the last
                    // consistent point.
                    self.input_done = true;
                }
            }
        }
    }
}

impl EjectBehavior for DurableFilterEject {
    fn type_name(&self) -> &'static str {
        DURABLE_FILTER_TYPE
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::TRANSFER => {
                let req = match TransferRequest::from_value(&inv.arg) {
                    Ok(r) => r,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                let idx = match self.channel_index(req.channel) {
                    Ok(idx) => idx,
                    Err(e) => {
                        reply.reply(Err(e));
                        return;
                    }
                };
                if idx == 0 {
                    self.fill(ctx, 0, req.max);
                }
                let buffer = &mut self.buffers[idx];
                let n = req.max.min(buffer.len());
                let items: Vec<Value> = buffer.drain(..n).collect();
                let end = self.flushed && self.buffers[idx].is_empty();
                // Checkpoint the post-delivery state *before* replying, so
                // a crash after the reply cannot resurrect already-served
                // records (no duplicates, per the module contract).
                if self.auto_checkpoint {
                    if let Some(rep) = self.passive_representation() {
                        let _ = ctx.checkpoint(&rep);
                    }
                }
                reply.reply(Ok(Batch { items, end }.to_value()));
            }
            ops::GET_CHANNEL => {
                let result = GetChannelRequest::from_value(&inv.arg).and_then(|req| {
                    self.channel_names
                        .iter()
                        .position(|n| *n == req.name)
                        .map(|idx| Value::from(ChannelId::Number(idx as u32)))
                        .ok_or_else(|| {
                            EdenError::NoSuchChannel(format!("no channel named `{}`", req.name))
                        })
                });
                reply.reply(result);
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }

    fn passive_representation(&self) -> Option<Value> {
        let state = self.transform.state().unwrap_or(Value::Unit);
        Some(Value::record([
            ("spec", self.spec.to_value()),
            ("state", state),
            ("input", Value::Uid(self.input)),
            ("input_channel", Value::Int(i64::from(self.input_channel))),
            ("batch", Value::Int(self.batch as i64)),
            ("auto_checkpoint", Value::Bool(self.auto_checkpoint)),
            ("input_done", Value::Bool(self.input_done)),
            ("flushed", Value::Bool(self.flushed)),
            (
                "buffers",
                Value::List(
                    self.buffers
                        .iter()
                        .map(|b| Value::List(b.iter().cloned().collect()))
                        .collect(),
                ),
            ),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_transput::source::{SourceEject, VecSource};

    fn lines_source(kernel: &Kernel, n: i64) -> Uid {
        kernel
            .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
                (0..n).map(|i| Value::str(format!("line {i}"))).collect(),
            )))))
            .unwrap()
    }

    fn transfer(kernel: &Kernel, target: Uid, max: usize) -> Batch {
        Batch::from_value(
            kernel
                .invoke(target, ops::TRANSFER, TransferRequest::primary(max).to_value()).wait()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn durable_filter_streams_normally() {
        let kernel = Kernel::new();
        DurableFilterEject::register(&kernel);
        let src = lines_source(&kernel, 6);
        let filter = kernel
            .spawn(Box::new(
                DurableFilterEject::new(FilterSpec::new("line-number"), src, 2).unwrap(),
            ))
            .unwrap();
        let mut out = Vec::new();
        loop {
            let b = transfer(&kernel, filter, 4);
            out.extend(b.items);
            if b.end {
                break;
            }
        }
        assert_eq!(out.len(), 6);
        assert!(out[5].as_str().unwrap().starts_with("     6"));
        kernel.shutdown();
    }

    #[test]
    fn crash_between_transfers_preserves_continuity() {
        let kernel = Kernel::new();
        DurableFilterEject::register(&kernel);
        let src = lines_source(&kernel, 8);
        let filter = kernel
            .spawn(Box::new(
                DurableFilterEject::new(FilterSpec::new("line-number"), src, 2).unwrap(),
            ))
            .unwrap();
        let first = transfer(&kernel, filter, 4);
        assert_eq!(first.items.len(), 4);
        // Fail-stop the filter between operations; the next Transfer
        // reactivates it from its auto-checkpoint.
        kernel.crash(filter).unwrap();
        let mut rest = Vec::new();
        loop {
            let b = transfer(&kernel, filter, 3);
            rest.extend(b.items);
            if b.end {
                break;
            }
        }
        assert_eq!(rest.len(), 4, "remaining records after recovery");
        // Numbering continues where the checkpoint left it: no repeats,
        // no resets.
        assert!(rest[0].as_str().unwrap().starts_with("     5"), "{rest:?}");
        assert!(rest[3].as_str().unwrap().starts_with("     8"));
        kernel.shutdown();
    }

    #[test]
    fn unknown_filter_spec_fails_to_build() {
        assert!(DurableFilterEject::new(FilterSpec::new("bogus"), Uid::fresh(), 2).is_err());
    }

    #[test]
    fn capability_channel_refused() {
        let kernel = Kernel::new();
        let src = lines_source(&kernel, 1);
        let filter = kernel
            .spawn(Box::new(
                DurableFilterEject::new(FilterSpec::new("copy"), src, 2).unwrap(),
            ))
            .unwrap();
        let err = kernel
            .invoke(
                filter,
                ops::TRANSFER,
                TransferRequest {
                    channel: ChannelId::Cap(Uid::fresh()),
                    max: 1,
                    pos: None,
                }
                .to_value(),
            ).wait()
            .unwrap_err();
        assert!(matches!(err, EdenError::NotAuthorized(_)));
        kernel.shutdown();
    }

    #[test]
    fn spec_value_roundtrip() {
        let spec = FilterSpec::with_args("grep", ["-v", "pat"]);
        assert_eq!(FilterSpec::from_value(&spec.to_value()).unwrap(), spec);
    }
}
