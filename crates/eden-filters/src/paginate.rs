//! The paginator from the paper's printing example (§4): "If a paginated
//! listing were required, the printer server would be requested to read
//! from the paginator, and the paginator to read from the file."

use eden_core::Value;
use eden_transput::{Emitter, Transform};

/// Breaks a line stream into pages with headers and form feeds.
#[derive(Debug)]
pub struct Paginator {
    title: String,
    lines_per_page: usize,
    page: u64,
    line_on_page: usize,
}

/// The form-feed pseudo-line emitted between pages.
pub const FORM_FEED: &str = "\u{c}";

impl Paginator {
    /// Pages of `lines_per_page` body lines, titled `title`.
    pub fn new(title: impl Into<String>, lines_per_page: usize) -> Paginator {
        Paginator {
            title: title.into(),
            lines_per_page: lines_per_page.max(1),
            page: 0,
            line_on_page: 0,
        }
    }

    fn header(&mut self, out: &mut Emitter) {
        self.page += 1;
        out.emit(Value::str(format!(
            "--- {} --- page {} ---",
            self.title, self.page
        )));
    }
}

impl Transform for Paginator {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        if self.line_on_page == 0 {
            if self.page > 0 {
                out.emit(Value::str(FORM_FEED));
            }
            self.header(out);
        }
        out.emit(item);
        self.line_on_page = (self.line_on_page + 1) % self.lines_per_page;
    }
    fn name(&self) -> &'static str {
        "paginator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_transput::transform::apply_offline;

    #[test]
    fn paginates_with_headers_and_feeds() {
        let input: Vec<Value> = (1..=5).map(|i| Value::str(format!("line {i}"))).collect();
        let (out, _) = apply_offline(&mut Paginator::new("doc", 2), input);
        let lines: Vec<&str> = out.iter().map(|v| v.as_str().unwrap()).collect();
        assert_eq!(
            lines,
            vec![
                "--- doc --- page 1 ---",
                "line 1",
                "line 2",
                FORM_FEED,
                "--- doc --- page 2 ---",
                "line 3",
                "line 4",
                FORM_FEED,
                "--- doc --- page 3 ---",
                "line 5",
            ]
        );
    }

    #[test]
    fn empty_input_emits_nothing() {
        let (out, _) = apply_offline(&mut Paginator::new("doc", 10), vec![]);
        assert!(out.is_empty());
    }

    #[test]
    fn single_full_page_has_no_trailing_feed() {
        let input: Vec<Value> = (0..3).map(Value::Int).collect();
        let (out, _) = apply_offline(&mut Paginator::new("t", 3), input);
        assert_eq!(out.len(), 4); // header + 3 lines
        assert_eq!(out[0].as_str().unwrap(), "--- t --- page 1 ---");
    }
}
