//! Line-oriented text filters — the bread-and-butter utilities of §3.
//!
//! Every filter here is a pure [`Transform`] over `Value::Str` lines, so it
//! can be mounted in any discipline. Non-string records pass through the
//! text filters untouched (streams are homogeneous in practice, §6, but a
//! filter must not panic on a stray record).

use eden_core::Value;
use eden_transput::{Emitter, Transform};

use crate::pattern::Pattern;

fn as_line(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// §3's motivating example: "a program whose output is a copy of its input
/// except that all lines beginning with 'C' have been omitted. Such a
/// filter might be used to strip comment lines from a Fortran program."
#[derive(Debug)]
pub struct StripComments {
    prefix: String,
}

impl StripComments {
    /// Drop lines starting with `prefix`.
    pub fn new(prefix: impl Into<String>) -> StripComments {
        StripComments {
            prefix: prefix.into(),
        }
    }

    /// The Fortran configuration from the paper.
    pub fn fortran() -> StripComments {
        StripComments::new("C")
    }
}

impl Transform for StripComments {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        match as_line(&item) {
            Some(line) if line.starts_with(&self.prefix) => {}
            _ => out.emit(item),
        }
    }
    fn name(&self) -> &'static str {
        "strip-comments"
    }
}

/// Keep (or delete) lines matching a glob pattern — the parameterised
/// filter of §3.
#[derive(Debug)]
pub struct Grep {
    pattern: Pattern,
    keep_matches: bool,
}

impl Grep {
    /// Keep only lines containing a match.
    pub fn matching(pattern: &str) -> Grep {
        Grep {
            pattern: Pattern::compile(pattern),
            keep_matches: true,
        }
    }

    /// Delete lines containing a match (the paper's "deletes all lines
    /// matching a pattern given as an argument").
    pub fn deleting(pattern: &str) -> Grep {
        Grep {
            pattern: Pattern::compile(pattern),
            keep_matches: false,
        }
    }
}

impl Transform for Grep {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        let matched = as_line(&item)
            .map(|l| self.pattern.contained_in(l))
            .unwrap_or(false);
        if matched == self.keep_matches {
            out.emit(item);
        }
    }
    fn name(&self) -> &'static str {
        "grep"
    }
}

/// Prefix each line with its (1-based) line number.
#[derive(Debug)]
pub struct LineNumber {
    next: u64,
}

impl LineNumber {
    /// Numbering starts at 1.
    pub fn new() -> LineNumber {
        LineNumber { next: 1 }
    }
}

impl Default for LineNumber {
    fn default() -> Self {
        LineNumber::new()
    }
}

impl Transform for LineNumber {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        match as_line(&item) {
            Some(line) => {
                out.emit(Value::str(format!("{:>6}  {line}", self.next)));
                self.next += 1;
            }
            None => out.emit(item),
        }
    }
    fn name(&self) -> &'static str {
        "line-number"
    }
    fn state(&self) -> Option<Value> {
        Some(Value::record([("next", Value::Int(self.next as i64))]))
    }
    fn restore(&mut self, state: &Value) -> eden_core::Result<()> {
        self.next = state.field("next")?.as_int()?.max(1) as u64;
        Ok(())
    }
}

/// Case folding.
#[derive(Debug)]
pub struct CaseFold {
    upper: bool,
}

impl CaseFold {
    /// Uppercase every line.
    pub fn upper() -> CaseFold {
        CaseFold { upper: true }
    }

    /// Lowercase every line.
    pub fn lower() -> CaseFold {
        CaseFold { upper: false }
    }
}

impl Transform for CaseFold {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        match as_line(&item) {
            Some(line) => out.emit(Value::str(if self.upper {
                line.to_uppercase()
            } else {
                line.to_lowercase()
            })),
            None => out.emit(item),
        }
    }
    fn name(&self) -> &'static str {
        "case-fold"
    }
}

/// Replace tabs with spaces to the next `width`-column tab stop.
#[derive(Debug)]
pub struct ExpandTabs {
    width: usize,
}

impl ExpandTabs {
    /// Tab stops every `width` columns (at least 1).
    pub fn new(width: usize) -> ExpandTabs {
        ExpandTabs {
            width: width.max(1),
        }
    }
}

impl Transform for ExpandTabs {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        match as_line(&item) {
            Some(line) => {
                let mut expanded = String::with_capacity(line.len());
                let mut col = 0usize;
                for c in line.chars() {
                    if c == '\t' {
                        let pad = self.width - (col % self.width);
                        expanded.extend(std::iter::repeat_n(' ', pad));
                        col += pad;
                    } else {
                        expanded.push(c);
                        col += 1;
                    }
                }
                out.emit(Value::str(expanded));
            }
            None => out.emit(item),
        }
    }
    fn name(&self) -> &'static str {
        "expand-tabs"
    }
}

/// Pass only the first `n` records, like `head`.
#[derive(Debug)]
pub struct Head {
    remaining: u64,
}

impl Head {
    /// Keep the first `n` records.
    pub fn new(n: u64) -> Head {
        Head { remaining: n }
    }
}

impl Transform for Head {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        if self.remaining > 0 {
            self.remaining -= 1;
            out.emit(item);
        }
    }
    fn name(&self) -> &'static str {
        "head"
    }
    fn state(&self) -> Option<Value> {
        Some(Value::record([(
            "remaining",
            Value::Int(self.remaining as i64),
        )]))
    }
    fn restore(&mut self, state: &Value) -> eden_core::Result<()> {
        self.remaining = state.field("remaining")?.as_int()?.max(0) as u64;
        Ok(())
    }
}

/// Pass only the last `n` records, like `tail` (buffers at most `n`).
#[derive(Debug)]
pub struct Tail {
    n: usize,
    window: std::collections::VecDeque<Value>,
}

impl Tail {
    /// Keep the last `n` records.
    pub fn new(n: usize) -> Tail {
        Tail {
            n,
            window: std::collections::VecDeque::new(),
        }
    }
}

impl Transform for Tail {
    fn push(&mut self, item: Value, _out: &mut Emitter) {
        if self.n == 0 {
            return;
        }
        if self.window.len() == self.n {
            self.window.pop_front();
        }
        self.window.push_back(item);
    }
    fn flush(&mut self, out: &mut Emitter) {
        for item in self.window.drain(..) {
            out.emit(item);
        }
    }
    fn name(&self) -> &'static str {
        "tail"
    }
}

/// Drop blank (empty or whitespace-only) lines.
#[derive(Debug)]
pub struct SqueezeBlank;

impl Transform for SqueezeBlank {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        match as_line(&item) {
            Some(line) if line.trim().is_empty() => {}
            _ => out.emit(item),
        }
    }
    fn name(&self) -> &'static str {
        "squeeze-blank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_transput::transform::apply_offline;

    fn lines(ls: &[&str]) -> Vec<Value> {
        ls.iter().map(|l| Value::str(*l)).collect()
    }

    fn run(t: &mut dyn Transform, input: &[&str]) -> Vec<Value> {
        apply_offline(t, lines(input)).0
    }

    #[test]
    fn strip_comments_fortran() {
        let out = run(
            &mut StripComments::fortran(),
            &["C this is a comment", "      X = 1", "C another", "      END"],
        );
        assert_eq!(out, lines(&["      X = 1", "      END"]));
    }

    #[test]
    fn grep_keeps_and_deletes() {
        let input = ["an error here", "all good", "error again"];
        assert_eq!(
            run(&mut Grep::matching("error"), &input),
            lines(&["an error here", "error again"])
        );
        assert_eq!(run(&mut Grep::deleting("error"), &input), lines(&["all good"]));
    }

    #[test]
    fn grep_with_glob() {
        let out = run(&mut Grep::matching("e?ror"), &["eXror", "error", "eror"]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn line_numbering() {
        let out = run(&mut LineNumber::new(), &["a", "b"]);
        assert_eq!(out[0].as_str().unwrap(), "     1  a");
        assert_eq!(out[1].as_str().unwrap(), "     2  b");
    }

    #[test]
    fn case_folding() {
        assert_eq!(run(&mut CaseFold::upper(), &["MiXeD"]), lines(&["MIXED"]));
        assert_eq!(run(&mut CaseFold::lower(), &["MiXeD"]), lines(&["mixed"]));
    }

    #[test]
    fn tabs_expand_to_stops() {
        let out = run(&mut ExpandTabs::new(4), &["a\tb", "\tx"]);
        assert_eq!(out, lines(&["a   b", "    x"]));
    }

    #[test]
    fn head_and_tail() {
        let input = ["1", "2", "3", "4", "5"];
        assert_eq!(run(&mut Head::new(2), &input), lines(&["1", "2"]));
        assert_eq!(run(&mut Tail::new(2), &input), lines(&["4", "5"]));
        assert_eq!(run(&mut Tail::new(0), &input), lines(&[]));
        assert_eq!(run(&mut Head::new(99), &input).len(), 5);
    }

    #[test]
    fn squeeze_blank() {
        let out = run(&mut SqueezeBlank, &["a", "", "  ", "b"]);
        assert_eq!(out, lines(&["a", "b"]));
    }

    #[test]
    fn non_string_records_pass_through() {
        let mut g = Grep::deleting("x");
        let (out, _) = apply_offline(&mut g, vec![Value::Int(7)]);
        assert_eq!(out, vec![Value::Int(7)]);
    }
}
