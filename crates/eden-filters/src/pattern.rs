//! A small glob-style pattern matcher for the filter library.
//!
//! §3: "a more useful program is one which deletes all lines matching a
//! pattern given as an argument." The 1983 toolbox would have used
//! ed-style patterns; we provide globs — `*` (any substring), `?` (any one
//! character), everything else literal — which are expressive enough for
//! all the paper's examples without pulling in a regex dependency.

/// A compiled glob pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    tokens: Vec<Token>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    /// A literal character.
    Literal(char),
    /// `?`: exactly one character.
    AnyOne,
    /// `*`: zero or more characters.
    AnyMany,
}

impl Pattern {
    /// Compile a glob. Never fails: every string is a valid glob.
    pub fn compile(pattern: &str) -> Pattern {
        let mut tokens = Vec::with_capacity(pattern.len());
        for c in pattern.chars() {
            match c {
                '?' => tokens.push(Token::AnyOne),
                '*' => {
                    // Collapse runs of `*`.
                    if tokens.last() != Some(&Token::AnyMany) {
                        tokens.push(Token::AnyMany);
                    }
                }
                other => tokens.push(Token::Literal(other)),
            }
        }
        Pattern { tokens }
    }

    /// Whether the whole of `text` matches the pattern.
    pub fn matches(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        self.match_from(0, &chars, 0)
    }

    /// Whether any substring of `text` matches (grep semantics): sugar for
    /// wrapping the pattern in `*...*`.
    pub fn contained_in(&self, text: &str) -> bool {
        let mut tokens = Vec::with_capacity(self.tokens.len() + 2);
        if self.tokens.first() != Some(&Token::AnyMany) {
            tokens.push(Token::AnyMany);
        }
        tokens.extend(self.tokens.iter().cloned());
        if tokens.last() != Some(&Token::AnyMany) {
            tokens.push(Token::AnyMany);
        }
        let wrapped = Pattern { tokens };
        wrapped.matches(text)
    }

    /// Iterative-with-backtracking glob match (the classic two-pointer
    /// algorithm, recursion-free so pathological patterns cannot overflow
    /// the stack).
    fn match_from(&self, mut ti: usize, chars: &[char], mut ci: usize) -> bool {
        let tokens = &self.tokens;
        let mut star: Option<(usize, usize)> = None; // (token after *, char pos)
        loop {
            if ti < tokens.len() {
                match &tokens[ti] {
                    Token::AnyMany => {
                        star = Some((ti + 1, ci));
                        ti += 1;
                        continue;
                    }
                    Token::AnyOne if ci < chars.len() => {
                        ti += 1;
                        ci += 1;
                        continue;
                    }
                    Token::Literal(l) if ci < chars.len() && chars[ci] == *l => {
                        ti += 1;
                        ci += 1;
                        continue;
                    }
                    _ => {}
                }
            } else if ci == chars.len() {
                return true;
            }
            // Mismatch: backtrack to the last `*`, consuming one more char.
            match star {
                Some((next_ti, star_ci)) if star_ci < chars.len() => {
                    ti = next_ti;
                    ci = star_ci + 1;
                    star = Some((next_ti, star_ci + 1));
                }
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let p = Pattern::compile("hello");
        assert!(p.matches("hello"));
        assert!(!p.matches("hello!"));
        assert!(!p.matches("hell"));
    }

    #[test]
    fn question_mark() {
        let p = Pattern::compile("h?llo");
        assert!(p.matches("hello"));
        assert!(p.matches("hallo"));
        assert!(!p.matches("hllo"));
    }

    #[test]
    fn star_matches_any_run() {
        let p = Pattern::compile("a*b");
        assert!(p.matches("ab"));
        assert!(p.matches("axxxb"));
        assert!(!p.matches("axxx"));
        assert!(Pattern::compile("*").matches(""));
        assert!(Pattern::compile("*").matches("anything"));
    }

    #[test]
    fn star_backtracking() {
        assert!(Pattern::compile("a*b*c").matches("aXbYbZc"));
        assert!(!Pattern::compile("a*b*c").matches("aXbYbZ"));
    }

    #[test]
    fn collapsed_stars() {
        assert_eq!(Pattern::compile("a**b"), Pattern::compile("a*b"));
    }

    #[test]
    fn contained_in_is_grep() {
        let p = Pattern::compile("err?r");
        assert!(p.contained_in("an error occurred"));
        assert!(!p.contained_in("all fine"));
        // Already-anchored patterns are unchanged by wrapping.
        assert!(Pattern::compile("*x*").contained_in("axb"));
    }

    #[test]
    fn pathological_pattern_terminates() {
        let p = Pattern::compile("*a*a*a*a*a*a*a*a*b");
        assert!(!p.matches(&"a".repeat(200)));
    }

    #[test]
    fn unicode_safe() {
        assert!(Pattern::compile("gr?ß").matches("grüß"));
        assert!(Pattern::compile("*ß").contained_in("straße x"));
    }
}
