//! A stream editor — §5's example of a filter with **multiple inputs**:
//! "stream editors that have a command input as well as a text input."
//!
//! The command language is a sed-flavoured subset:
//!
//! * `s/old/new/`  — replace every occurrence of `old` with `new`
//! * `d/pat/`      — delete lines containing glob `pat`
//! * `a/text/`     — append `text` after every line
//! * `q`           — pass nothing further (quit)
//!
//! In an Eden pipeline the command stream is itself a source Eject: the
//! wirer reads it (active input — easy in the read-only discipline) and
//! constructs the editor with the parsed script.

use eden_core::{EdenError, Result, Value};
use eden_transput::{Emitter, Transform};

use crate::pattern::Pattern;

/// One editing command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Replace all occurrences of `.0` with `.1`.
    Substitute(String, String),
    /// Delete lines containing the glob.
    Delete(Pattern),
    /// Append a line after every input line.
    AppendAfter(String),
    /// Stop passing input through.
    Quit,
}

impl Command {
    /// Parse one command line.
    pub fn parse(line: &str) -> Result<Command> {
        let line = line.trim();
        if line == "q" {
            return Ok(Command::Quit);
        }
        let (op, rest) = line.split_at(line.len().min(1));
        let parts = split_slashes(rest)?;
        match (op, parts.as_slice()) {
            ("s", [old, new]) if !old.is_empty() => {
                Ok(Command::Substitute(old.clone(), new.clone()))
            }
            ("d", [pat]) => Ok(Command::Delete(Pattern::compile(pat))),
            ("a", [text]) => Ok(Command::AppendAfter(text.clone())),
            _ => Err(EdenError::BadParameter(format!(
                "unparseable editor command: `{line}`"
            ))),
        }
    }
}

/// Split `/a/b/` into `["a", "b"]`, validating delimiters.
fn split_slashes(s: &str) -> Result<Vec<String>> {
    if !s.starts_with('/') || !s.ends_with('/') || s.len() < 2 {
        return Err(EdenError::BadParameter(format!(
            "expected /-delimited arguments, got `{s}`"
        )));
    }
    Ok(s[1..s.len() - 1].split('/').map(str::to_owned).collect())
}

/// The stream editor transform.
#[derive(Debug)]
pub struct StreamEditor {
    script: Vec<Command>,
    quit: bool,
}

impl StreamEditor {
    /// An editor running the given script on every line.
    pub fn new(script: Vec<Command>) -> StreamEditor {
        StreamEditor {
            script,
            quit: false,
        }
    }

    /// Parse a whole command stream (one command per record).
    pub fn from_command_lines<'a, I>(lines: I) -> Result<StreamEditor>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let script = lines
            .into_iter()
            .filter(|l| !l.trim().is_empty())
            .map(Command::parse)
            .collect::<Result<Vec<_>>>()?;
        Ok(StreamEditor::new(script))
    }
}

impl Transform for StreamEditor {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        if self.quit {
            return;
        }
        let line = match &item {
            Value::Str(s) => s.clone(),
            _ => {
                out.emit(item);
                return;
            }
        };
        let mut current = line;
        let mut deleted = false;
        let mut appends: Vec<String> = Vec::new();
        for cmd in &self.script {
            match cmd {
                Command::Substitute(old, new) => {
                    // Only materialise a fresh string when the pattern
                    // actually occurs; untouched lines keep sharing the
                    // decoded payload.
                    if current.as_str().contains(old.as_str()) {
                        current = current.as_str().replace(old.as_str(), new).into();
                    }
                }
                Command::Delete(pat) => {
                    if pat.contained_in(&current) {
                        deleted = true;
                        break;
                    }
                }
                Command::AppendAfter(text) => appends.push(text.clone()),
                Command::Quit => {
                    self.quit = true;
                    break;
                }
            }
        }
        if !deleted && !self.quit {
            out.emit(Value::Str(current));
            for text in appends {
                out.emit(Value::str(text));
            }
        }
    }
    fn name(&self) -> &'static str {
        "stream-editor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_transput::transform::apply_offline;

    fn lines(ls: &[&str]) -> Vec<Value> {
        ls.iter().map(|l| Value::str(*l)).collect()
    }

    #[test]
    fn parse_commands() {
        assert_eq!(
            Command::parse("s/a/b/").unwrap(),
            Command::Substitute("a".into(), "b".into())
        );
        assert!(matches!(Command::parse("d/x*/").unwrap(), Command::Delete(_)));
        assert_eq!(
            Command::parse("a/after/").unwrap(),
            Command::AppendAfter("after".into())
        );
        assert_eq!(Command::parse(" q ").unwrap(), Command::Quit);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Command::parse("nonsense").is_err());
        assert!(Command::parse("s/only-one/").is_err());
        assert!(Command::parse("s//empty-old/").is_err());
        assert!(Command::parse("x/a/").is_err());
    }

    #[test]
    fn substitute_and_delete() {
        let mut ed = StreamEditor::from_command_lines(["s/cat/dog/", "d/bird/"]).unwrap();
        let (out, _) = apply_offline(&mut ed, lines(&["the cat", "a bird", "catcat"]));
        assert_eq!(out, lines(&["the dog", "dogdog"]));
    }

    #[test]
    fn append_after() {
        let mut ed = StreamEditor::from_command_lines(["a/-- sep --/"]).unwrap();
        let (out, _) = apply_offline(&mut ed, lines(&["a", "b"]));
        assert_eq!(out, lines(&["a", "-- sep --", "b", "-- sep --"]));
    }

    #[test]
    fn quit_stops_output() {
        let mut ed = StreamEditor::new(vec![Command::Quit]);
        let (out, _) = apply_offline(&mut ed, lines(&["never", "seen"]));
        assert!(out.is_empty());
    }

    #[test]
    fn empty_script_is_identity() {
        let mut ed = StreamEditor::from_command_lines([]).unwrap();
        let (out, _) = apply_offline(&mut ed, lines(&["pass"]));
        assert_eq!(out, lines(&["pass"]));
    }

    #[test]
    fn substitutions_compose_in_order() {
        let mut ed = StreamEditor::from_command_lines(["s/a/b/", "s/b/c/"]).unwrap();
        let (out, _) = apply_offline(&mut ed, lines(&["a"]));
        assert_eq!(out, lines(&["c"]));
    }
}
