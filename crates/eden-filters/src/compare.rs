//! A file-comparison filter — §5's other multi-input example: "examples of
//! programs with multiple inputs include file comparison programs."
//!
//! [`Compare`] consumes the tuples produced by the read-only discipline's
//! `FanInMode::Zip` (each record is `Value::List([left, right])`) and
//! emits a diff line for every mismatching pair, plus a summary at flush.
//! This is exactly the shape fan-in takes in the paper: the comparator
//! holds *two* input UIDs and actively reads both.

use eden_core::Value;
use eden_transput::{Emitter, Transform};

/// Compares paired records from two zipped inputs.
#[derive(Default)]
#[derive(Debug)]
pub struct Compare {
    row: u64,
    differences: u64,
}

impl Compare {
    /// A fresh comparator.
    pub fn new() -> Compare {
        Compare::default()
    }

    fn render(v: &Value) -> String {
        match v {
            Value::Str(s) => s.to_string_owned(),
            other => format!("{other:?}"),
        }
    }
}

impl Transform for Compare {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        self.row += 1;
        let pair = match item.as_list() {
            Ok([left, right]) => Some((left.clone(), right.clone())),
            _ => None,
        };
        match pair {
            Some((left, right)) => {
                if left != right {
                    self.differences += 1;
                    out.emit(Value::str(format!(
                        "{}c{}\n< {}\n> {}",
                        self.row,
                        self.row,
                        Self::render(&left),
                        Self::render(&right)
                    )));
                }
            }
            None => {
                self.differences += 1;
                out.emit(Value::str(format!(
                    "{}?: unpaired record {}",
                    self.row,
                    Self::render(&item)
                )));
            }
        }
    }
    fn flush(&mut self, out: &mut Emitter) {
        out.emit(Value::str(if self.differences == 0 {
            format!("identical ({} rows)", self.row)
        } else {
            format!("{} difference(s) in {} rows", self.differences, self.row)
        }));
    }
    fn name(&self) -> &'static str {
        "compare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_transput::transform::apply_offline;

    fn pair(a: &str, b: &str) -> Value {
        Value::list(vec![Value::str(a), Value::str(b)])
    }

    #[test]
    fn identical_inputs_report_identical() {
        let (out, _) = apply_offline(&mut Compare::new(), vec![pair("x", "x"), pair("y", "y")]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_str().unwrap(), "identical (2 rows)");
    }

    #[test]
    fn differences_are_reported_with_row_numbers() {
        let (out, _) = apply_offline(&mut Compare::new(), vec![pair("a", "a"), pair("b", "B")]);
        assert_eq!(out.len(), 2);
        let diff = out[0].as_str().unwrap();
        assert!(diff.starts_with("2c2"));
        assert!(diff.contains("< b"));
        assert!(diff.contains("> B"));
        assert!(out[1].as_str().unwrap().contains("1 difference(s)"));
    }

    #[test]
    fn unpaired_records_flagged() {
        let (out, _) = apply_offline(&mut Compare::new(), vec![Value::str("loose")]);
        assert!(out[0].as_str().unwrap().contains("unpaired"));
    }
}
