//! Filters with **report streams** — the impure filters of §5.
//!
//! "It is also common for a program to produce a stream of *Reports* (i.e.
//! monitoring messages) in addition to its main output stream." These
//! transforms emit their main output on the primary channel and their
//! monitoring output on the `Report` channel, which the read-only
//! discipline exposes through channel identifiers (Figure 4) and the
//! write-only discipline through extra destinations (Figure 3).

use std::collections::BTreeSet;

use eden_core::Value;
use eden_transput::protocol::REPORT_NAME;
use eden_transput::{Emitter, Transform};

/// A spelling checker: passes its text through unchanged and reports each
/// unknown word once on the `Report` channel.
#[derive(Debug)]
pub struct SpellCheck {
    dictionary: BTreeSet<String>,
    reported: BTreeSet<String>,
    line_no: u64,
}

impl SpellCheck {
    /// Check against the given word list (case-insensitive).
    pub fn new<I, S>(dictionary: I) -> SpellCheck
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        SpellCheck {
            dictionary: dictionary
                .into_iter()
                .map(|w| w.as_ref().to_lowercase())
                .collect(),
            reported: BTreeSet::new(),
            line_no: 0,
        }
    }
}

impl Transform for SpellCheck {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        if let Value::Str(line) = &item {
            self.line_no += 1;
            for word in line.split(|c: char| !c.is_alphabetic()) {
                if word.is_empty() {
                    continue;
                }
                let lower = word.to_lowercase();
                if !self.dictionary.contains(&lower) && self.reported.insert(lower.clone()) {
                    out.emit_on(
                        REPORT_NAME,
                        Value::str(format!("line {}: unknown word `{word}`", self.line_no)),
                    );
                }
            }
        }
        out.emit(item);
    }
    fn flush(&mut self, out: &mut Emitter) {
        out.emit_on(
            REPORT_NAME,
            Value::str(format!("{} unknown word(s)", self.reported.len())),
        );
    }
    fn name(&self) -> &'static str {
        "spell-check"
    }
    fn secondary_channels(&self) -> Vec<&'static str> {
        vec![REPORT_NAME]
    }
}

/// A progress monitor: passes records through and reports a line every
/// `every` records and a total at the end.
#[derive(Debug)]
pub struct ProgressReporter {
    every: u64,
    seen: u64,
    label: String,
}

impl ProgressReporter {
    /// Report every `every` records under the given label.
    pub fn new(label: impl Into<String>, every: u64) -> ProgressReporter {
        ProgressReporter {
            every: every.max(1),
            seen: 0,
            label: label.into(),
        }
    }
}

impl Transform for ProgressReporter {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            out.emit_on(
                REPORT_NAME,
                Value::str(format!("{}: {} records", self.label, self.seen)),
            );
        }
        out.emit(item);
    }
    fn flush(&mut self, out: &mut Emitter) {
        out.emit_on(
            REPORT_NAME,
            Value::str(format!("{}: done, {} records total", self.label, self.seen)),
        );
    }
    fn name(&self) -> &'static str {
        "progress"
    }
    fn secondary_channels(&self) -> Vec<&'static str> {
        vec![REPORT_NAME]
    }
    fn state(&self) -> Option<Value> {
        Some(Value::record([("seen", Value::Int(self.seen as i64))]))
    }
    fn restore(&mut self, state: &Value) -> eden_core::Result<()> {
        self.seen = state.field("seen")?.as_int()?.max(0) as u64;
        Ok(())
    }
}

/// `tee`: emits every record on the primary channel *and* on a `Copy`
/// channel. In the read-only discipline this is how a stream is duplicated
/// without write-only fan-out.
#[derive(Debug)]
pub struct Tee;

/// The name of [`Tee`]'s duplicate channel.
pub const COPY_NAME: &str = "Copy";

impl Transform for Tee {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        out.emit_on(COPY_NAME, item.clone());
        out.emit(item);
    }
    fn name(&self) -> &'static str {
        "tee"
    }
    fn secondary_channels(&self) -> Vec<&'static str> {
        vec![COPY_NAME]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_transput::transform::apply_offline;

    fn lines(ls: &[&str]) -> Vec<Value> {
        ls.iter().map(|l| Value::str(*l)).collect()
    }

    #[test]
    fn spellcheck_passes_through_and_reports() {
        let mut sc = SpellCheck::new(["the", "cat", "sat"]);
        let (out, sec) = apply_offline(&mut sc, lines(&["the cat zat", "the cat sat"]));
        assert_eq!(out.len(), 2, "primary stream is a pure copy");
        let reports = &sec[REPORT_NAME];
        assert_eq!(reports.len(), 2); // one unknown word + summary
        assert!(reports[0].as_str().unwrap().contains("zat"));
        assert!(reports[1].as_str().unwrap().contains("1 unknown"));
    }

    #[test]
    fn spellcheck_reports_each_word_once() {
        let mut sc = SpellCheck::new(["a"]);
        let (_, sec) = apply_offline(&mut sc, lines(&["b b b", "b"]));
        // One report for `b`, one summary.
        assert_eq!(sec[REPORT_NAME].len(), 2);
    }

    #[test]
    fn progress_reports_cadence_and_total() {
        let mut pr = ProgressReporter::new("job", 2);
        let (out, sec) = apply_offline(&mut pr, (0..5).map(Value::Int).collect::<Vec<_>>());
        assert_eq!(out.len(), 5);
        let reports = &sec[REPORT_NAME];
        assert_eq!(reports.len(), 3); // at 2, at 4, and the total
        assert!(reports[2].as_str().unwrap().contains("5 records total"));
    }

    #[test]
    fn tee_duplicates() {
        let (out, sec) = apply_offline(&mut Tee, lines(&["x", "y"]));
        assert_eq!(out, lines(&["x", "y"]));
        assert_eq!(sec[COPY_NAME], lines(&["x", "y"]));
    }

    #[test]
    fn report_channels_declared() {
        assert_eq!(SpellCheck::new(["x"]).secondary_channels(), vec![REPORT_NAME]);
        assert_eq!(Tee.secondary_channels(), vec![COPY_NAME]);
    }
}
