//! Record-stream filters (§6).
//!
//! "Nothing I have said about Eden transput constrains Eden streams to be
//! streams of bytes. Streams of arbitrary records fit into the protocol
//! just as well, provided only that they are homogeneous." These filters
//! operate on `Value::Record` streams: projection, selection and
//! aggregation — a miniature query pipeline over the same transput
//! machinery that carries text.

use std::collections::BTreeMap;

use eden_core::Value;
use eden_transput::{Emitter, Transform};

/// Project each record onto a subset of its fields, in the given order.
/// Records missing a requested field get `Unit` there; non-records pass
/// through untouched.
#[derive(Debug)]
pub struct SelectFields {
    fields: Vec<String>,
}

impl SelectFields {
    /// Keep only `fields`.
    pub fn new<I, S>(fields: I) -> SelectFields
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SelectFields {
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }
}

impl Transform for SelectFields {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        if !matches!(item, Value::Record(_)) {
            out.emit(item);
            return;
        }
        let projected = self
            .fields
            .iter()
            .map(|name| {
                (
                    name.clone(),
                    item.field_opt(name).cloned().unwrap_or(Value::Unit),
                )
            })
            .collect::<Vec<_>>();
        out.emit(Value::record(projected));
    }
    fn name(&self) -> &'static str {
        "select-fields"
    }
}

/// The comparisons [`WhereField`] supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldCmp {
    /// Field equals the literal.
    Eq,
    /// Field differs from the literal.
    Ne,
    /// Field is an integer less than the literal.
    Lt,
    /// Field is an integer greater than the literal.
    Gt,
}

/// Keep records whose named field compares against a literal.
/// Records lacking the field (and non-records) are dropped.
#[derive(Debug)]
pub struct WhereField {
    field: String,
    cmp: FieldCmp,
    literal: Value,
}

impl WhereField {
    /// Keep records where `field <cmp> literal`.
    pub fn new(field: impl Into<String>, cmp: FieldCmp, literal: Value) -> WhereField {
        WhereField {
            field: field.into(),
            cmp,
            literal,
        }
    }

    fn matches(&self, item: &Value) -> bool {
        let Some(actual) = item.field_opt(&self.field) else {
            return false;
        };
        match self.cmp {
            FieldCmp::Eq => actual == &self.literal,
            FieldCmp::Ne => actual != &self.literal,
            FieldCmp::Lt => match (actual.as_int(), self.literal.as_int()) {
                (Ok(a), Ok(b)) => a < b,
                _ => false,
            },
            FieldCmp::Gt => match (actual.as_int(), self.literal.as_int()) {
                (Ok(a), Ok(b)) => a > b,
                _ => false,
            },
        }
    }
}

impl Transform for WhereField {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        if self.matches(&item) {
            out.emit(item);
        }
    }
    fn name(&self) -> &'static str {
        "where-field"
    }
}

/// Group records by a string-valued field and emit
/// `Record{key, count, sum}` per group at flush (sum over an optional
/// integer field), sorted by key.
#[derive(Debug)]
pub struct GroupAggregate {
    key_field: String,
    sum_field: Option<String>,
    groups: BTreeMap<String, (i64, i64)>,
}

impl GroupAggregate {
    /// Group by `key_field`, optionally summing `sum_field`.
    pub fn new(key_field: impl Into<String>, sum_field: Option<&str>) -> GroupAggregate {
        GroupAggregate {
            key_field: key_field.into(),
            sum_field: sum_field.map(str::to_owned),
            groups: BTreeMap::new(),
        }
    }
}

impl Transform for GroupAggregate {
    fn push(&mut self, item: Value, _out: &mut Emitter) {
        let Some(key) = item.field_opt(&self.key_field).and_then(|k| k.as_str().ok()) else {
            return;
        };
        let add = self
            .sum_field
            .as_deref()
            .and_then(|f| item.field_opt(f))
            .and_then(|v| v.as_int().ok())
            .unwrap_or(0);
        let entry = self.groups.entry(key.to_owned()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += add;
    }
    fn flush(&mut self, out: &mut Emitter) {
        for (key, (count, sum)) in std::mem::take(&mut self.groups) {
            out.emit(Value::record([
                ("key", Value::str(key)),
                ("count", Value::Int(count)),
                ("sum", Value::Int(sum)),
            ]));
        }
    }
    fn name(&self) -> &'static str {
        "group-aggregate"
    }
}

/// Render records as aligned text lines (for printing record pipelines).
#[derive(Debug)]
pub struct RenderRecords;

impl Transform for RenderRecords {
    fn push(&mut self, item: Value, out: &mut Emitter) {
        match &item {
            Value::Record(fields) => {
                let line = fields
                    .iter()
                    .map(|(k, v)| match v {
                        Value::Str(s) => format!("{k}={s}"),
                        Value::Int(i) => format!("{k}={i}"),
                        other => format!("{k}={other:?}"),
                    })
                    .collect::<Vec<_>>()
                    .join("  ");
                out.emit(Value::str(line));
            }
            _ => out.emit(item),
        }
    }
    fn name(&self) -> &'static str {
        "render-records"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_transput::transform::apply_offline;

    fn employee(name: &str, dept: &str, salary: i64) -> Value {
        Value::record([
            ("name", Value::str(name)),
            ("dept", Value::str(dept)),
            ("salary", Value::Int(salary)),
        ])
    }

    fn staff() -> Vec<Value> {
        vec![
            employee("ada", "eng", 120),
            employee("grace", "eng", 130),
            employee("alan", "research", 110),
        ]
    }

    #[test]
    fn select_projects_in_order() {
        let (out, _) = apply_offline(&mut SelectFields::new(["salary", "name"]), staff());
        match &out[0] {
            Value::Record(fields) => {
                assert_eq!(fields[0].0, "salary");
                assert_eq!(fields[1].0, "name");
                assert_eq!(fields.len(), 2);
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn select_missing_field_is_unit() {
        let (out, _) = apply_offline(&mut SelectFields::new(["ghost"]), staff());
        assert_eq!(out[0].field("ghost").unwrap(), &Value::Unit);
    }

    #[test]
    fn where_filters_by_comparison() {
        let (eng, _) = apply_offline(
            &mut WhereField::new("dept", FieldCmp::Eq, Value::str("eng")),
            staff(),
        );
        assert_eq!(eng.len(), 2);
        let (rich, _) = apply_offline(
            &mut WhereField::new("salary", FieldCmp::Gt, Value::Int(115)),
            staff(),
        );
        assert_eq!(rich.len(), 2);
        let (none, _) = apply_offline(
            &mut WhereField::new("salary", FieldCmp::Lt, Value::Int(100)),
            staff(),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn where_drops_non_records() {
        let (out, _) = apply_offline(
            &mut WhereField::new("x", FieldCmp::Ne, Value::Unit),
            vec![Value::Int(5)],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn group_aggregate_counts_and_sums() {
        let (out, _) = apply_offline(&mut GroupAggregate::new("dept", Some("salary")), staff());
        assert_eq!(out.len(), 2);
        let eng = &out[0];
        assert_eq!(eng.field("key").unwrap().as_str().unwrap(), "eng");
        assert_eq!(eng.field("count").unwrap().as_int().unwrap(), 2);
        assert_eq!(eng.field("sum").unwrap().as_int().unwrap(), 250);
    }

    #[test]
    fn render_makes_lines() {
        let (out, _) = apply_offline(&mut RenderRecords, staff());
        assert_eq!(
            out[0].as_str().unwrap(),
            "name=ada  dept=eng  salary=120"
        );
    }
}
