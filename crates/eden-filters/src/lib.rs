//! The filter library: the "large number of utilities" of §3, written as
//! pure [`Transform`]s so each can be mounted in any of the three
//! communication disciplines.
//!
//! | module | filters | paper hook |
//! |---|---|---|
//! | [`text`] | strip-comments, grep, line-number, case-fold, expand-tabs, head, tail, squeeze-blank | §3's Fortran comment stripper and pattern deleter |
//! | [`aggregate`] | wc, sort, uniq, word-frequency, RLE encode/decode | "text formatters ... spelling checkers" as flush-time filters |
//! | [`paginate`] | paginator | §4's printer/paginator example |
//! | [`report`] | spell-check, progress, tee | §5's report streams (Figures 3–4) |
//! | [`editor`] | sed-subset stream editor | §5's multi-input stream editor |
//! | [`compare`] | pairwise comparator | §5's file comparison program |
//! | [`pattern`] | glob matcher | the pattern arguments of §3 |
//!
//! [`Transform`]: eden_transput::Transform


pub mod aggregate;
pub mod compare;
pub mod durable;
pub mod editor;
pub mod paginate;
pub mod pattern;
pub mod records;
pub mod report;
pub mod text;

pub use aggregate::{RleDecode, RleEncode, SortLines, Uniq, WordCount, WordFrequency};
pub use compare::Compare;
pub use durable::{DurableFilterEject, FilterSpec, DURABLE_FILTER_TYPE};
pub use editor::{Command, StreamEditor};
pub use paginate::{Paginator, FORM_FEED};
pub use pattern::Pattern;
pub use records::{FieldCmp, GroupAggregate, RenderRecords, SelectFields, WhereField};
pub use report::{ProgressReporter, SpellCheck, Tee, COPY_NAME};
pub use text::{CaseFold, ExpandTabs, Grep, Head, LineNumber, SqueezeBlank, StripComments, Tail};

use eden_core::{EdenError, Result};
use eden_transput::Transform;

/// Construct a filter by name with string arguments — the registry the
/// shell uses. Returns the boxed transform.
///
/// Supported names: `copy`, `strip-comments [prefix]`, `grep PATTERN`,
/// `grep -v PATTERN`, `line-number`, `upcase`, `downcase`,
/// `expand-tabs [WIDTH]`, `head N`, `tail N`, `squeeze-blank`, `wc`,
/// `sort`, `uniq`, `word-frequency`, `rle-encode`, `rle-decode`,
/// `paginate TITLE LINES`, `spell-check WORD...`, `progress LABEL EVERY`,
/// `tee`, `sed CMD...`, `compare`.
pub fn make_filter(name: &str, args: &[&str]) -> Result<Box<dyn Transform>> {
    let bad = |msg: &str| EdenError::BadParameter(format!("{name}: {msg}"));
    let int_arg = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| bad(&format!("expected a number, got `{s}`")))
    };
    Ok(match (name, args) {
        ("copy", []) => Box::new(eden_transput::transform::Identity),
        ("strip-comments", []) => Box::new(StripComments::fortran()),
        ("strip-comments", [prefix]) => Box::new(StripComments::new(*prefix)),
        ("grep", [pattern]) => Box::new(Grep::matching(pattern)),
        ("grep", ["-v", pattern]) => Box::new(Grep::deleting(pattern)),
        ("line-number", []) => Box::new(LineNumber::new()),
        ("upcase", []) => Box::new(CaseFold::upper()),
        ("downcase", []) => Box::new(CaseFold::lower()),
        ("expand-tabs", []) => Box::new(ExpandTabs::new(8)),
        ("expand-tabs", [w]) => Box::new(ExpandTabs::new(int_arg(w)? as usize)),
        ("head", [n]) => Box::new(Head::new(int_arg(n)?)),
        ("tail", [n]) => Box::new(Tail::new(int_arg(n)? as usize)),
        ("squeeze-blank", []) => Box::new(SqueezeBlank),
        ("wc", []) => Box::new(WordCount::new()),
        ("sort", []) => Box::new(SortLines::new()),
        ("uniq", []) => Box::new(Uniq::new()),
        ("word-frequency", []) => Box::new(WordFrequency::new()),
        ("rle-encode", []) => Box::new(RleEncode::new()),
        ("rle-decode", []) => Box::new(RleDecode::new()),
        ("paginate", [title, lines]) => {
            Box::new(Paginator::new(*title, int_arg(lines)? as usize))
        }
        ("spell-check", words) if !words.is_empty() => Box::new(SpellCheck::new(words)),
        ("progress", [label, every]) => Box::new(ProgressReporter::new(*label, int_arg(every)?)),
        ("tee", []) => Box::new(Tee),
        ("sed", cmds) if !cmds.is_empty() => {
            Box::new(StreamEditor::from_command_lines(cmds.iter().copied())?)
        }
        ("compare", []) => Box::new(Compare::new()),
        ("select", fields) if !fields.is_empty() => {
            Box::new(SelectFields::new(fields.iter().copied()))
        }
        ("where", [clause]) => Box::new(parse_where(clause)?),
        ("group-by", [key]) => Box::new(GroupAggregate::new(*key, None)),
        ("group-by", [key, sum]) => Box::new(GroupAggregate::new(*key, Some(sum))),
        ("render-records", []) => Box::new(RenderRecords),
        _ => {
            return Err(EdenError::BadParameter(format!(
                "unknown filter `{name}` (or wrong arguments {args:?})"
            )))
        }
    })
}

/// Parse a `where` clause: `FIELD=VALUE`, `FIELD!=VALUE`, `FIELD<N`,
/// `FIELD>N`. Values parsing as integers compare numerically.
fn parse_where(clause: &str) -> Result<WhereField> {
    let (field, cmp, raw) = if let Some((f, v)) = clause.split_once("!=") {
        (f, FieldCmp::Ne, v)
    } else if let Some((f, v)) = clause.split_once('=') {
        (f, FieldCmp::Eq, v)
    } else if let Some((f, v)) = clause.split_once('<') {
        (f, FieldCmp::Lt, v)
    } else if let Some((f, v)) = clause.split_once('>') {
        (f, FieldCmp::Gt, v)
    } else {
        return Err(EdenError::BadParameter(format!(
            "where: expected FIELD[=|!=|<|>]VALUE, got `{clause}`"
        )));
    };
    if field.is_empty() {
        return Err(EdenError::BadParameter("where: empty field name".into()));
    }
    let literal = match raw.parse::<i64>() {
        Ok(i) => eden_core::Value::Int(i),
        Err(_) => eden_core::Value::str(raw),
    };
    Ok(WhereField::new(field, cmp, literal))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn where_clause_parsing() {
        assert!(make_filter("where", &["dept=eng"]).is_ok());
        assert!(make_filter("where", &["salary>100"]).is_ok());
        assert!(make_filter("where", &["salary<100"]).is_ok());
        assert!(make_filter("where", &["dept!=eng"]).is_ok());
        assert!(make_filter("where", &["nonsense"]).is_err());
        assert!(make_filter("where", &["=e"]).is_err());
        assert!(make_filter("select", &["a", "b"]).is_ok());
        assert!(make_filter("group-by", &["dept", "salary"]).is_ok());
        assert!(make_filter("render-records", &[]).is_ok());
    }

    #[test]
    fn registry_builds_known_filters() {
        for (name, args) in [
            ("copy", vec![]),
            ("strip-comments", vec![]),
            ("grep", vec!["pat"]),
            ("grep", vec!["-v", "pat"]),
            ("line-number", vec![]),
            ("upcase", vec![]),
            ("head", vec!["3"]),
            ("tail", vec!["3"]),
            ("wc", vec![]),
            ("sort", vec![]),
            ("uniq", vec![]),
            ("paginate", vec!["t", "10"]),
            ("spell-check", vec!["word"]),
            ("progress", vec!["x", "5"]),
            ("tee", vec![]),
            ("sed", vec!["s/a/b/"]),
            ("compare", vec![]),
        ] {
            assert!(
                make_filter(name, &args).is_ok(),
                "failed to build {name} {args:?}"
            );
        }
    }

    #[test]
    fn registry_rejects_unknown_and_malformed() {
        assert!(make_filter("bogus", &[]).is_err());
        assert!(make_filter("grep", &[]).is_err());
        assert!(make_filter("head", &["NaN"]).is_err());
        assert!(make_filter("sed", &["not-a-command"]).is_err());
    }
}
