//! Algebraic laws of the filter library, checked with proptest.

use eden_core::Value;
use eden_filters::{
    CaseFold, Grep, Head, Pattern, RleDecode, RleEncode, SortLines, SqueezeBlank, StripComments,
    Tail, Uniq,
};
use eden_transput::transform::{apply_offline, Transform};
use proptest::prelude::*;

fn lines_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[ -~]{0,30}", 0..40)
}

fn to_values(lines: &[String]) -> Vec<Value> {
    lines.iter().map(|l| Value::str(l.clone())).collect()
}

fn primary(t: &mut dyn Transform, input: Vec<Value>) -> Vec<Value> {
    apply_offline(t, input).0
}

proptest! {
    #[test]
    fn grep_is_idempotent(lines in lines_strategy(), pat in "[a-z]{1,4}") {
        let once = primary(&mut Grep::matching(&pat), to_values(&lines));
        let twice = primary(&mut Grep::matching(&pat), once.clone());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn grep_keep_and_delete_partition(lines in lines_strategy(), pat in "[a-z]{1,4}") {
        let kept = primary(&mut Grep::matching(&pat), to_values(&lines));
        let deleted = primary(&mut Grep::deleting(&pat), to_values(&lines));
        prop_assert_eq!(kept.len() + deleted.len(), lines.len());
    }

    #[test]
    fn strip_comments_idempotent(lines in lines_strategy()) {
        let once = primary(&mut StripComments::fortran(), to_values(&lines));
        let twice = primary(&mut StripComments::fortran(), once.clone());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn sort_output_is_sorted_permutation(lines in lines_strategy()) {
        let out = primary(&mut SortLines::new(), to_values(&lines));
        prop_assert_eq!(out.len(), lines.len());
        let strs: Vec<&str> = out.iter().map(|v| v.as_str().unwrap()).collect();
        prop_assert!(strs.windows(2).all(|w| w[0] <= w[1]));
        let mut expected: Vec<String> = lines.clone();
        expected.sort();
        let got: Vec<String> = strs.iter().map(|s| s.to_string()).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn sort_is_idempotent(lines in lines_strategy()) {
        let once = primary(&mut SortLines::new(), to_values(&lines));
        let twice = primary(&mut SortLines::new(), once.clone());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn uniq_never_adjacent_duplicates(lines in lines_strategy()) {
        let out = primary(&mut Uniq::new(), to_values(&lines));
        prop_assert!(out.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn rle_roundtrips(lines in proptest::collection::vec("[ab]{0,2}", 0..60)) {
        // Small alphabet to force runs.
        let input = to_values(&lines);
        let encoded = primary(&mut RleEncode::new(), input.clone());
        let decoded = primary(&mut RleDecode::new(), encoded.clone());
        prop_assert_eq!(decoded, input.clone());
        // Encoding never lengthens a stream (runs only shrink it).
        prop_assert!(encoded.len() <= input.len().max(1));
    }

    #[test]
    fn head_tail_bounds(lines in lines_strategy(), n in 0u64..10) {
        let head = primary(&mut Head::new(n), to_values(&lines));
        prop_assert!(head.len() <= n as usize);
        prop_assert_eq!(head.len(), (n as usize).min(lines.len()));
        let tail = primary(&mut Tail::new(n as usize), to_values(&lines));
        prop_assert_eq!(tail.len(), (n as usize).min(lines.len()));
    }

    #[test]
    fn head_is_prefix_tail_is_suffix(lines in lines_strategy(), n in 0u64..10) {
        let input = to_values(&lines);
        let head = primary(&mut Head::new(n), input.clone());
        prop_assert_eq!(&input[..head.len()], head.as_slice());
        let tail = primary(&mut Tail::new(n as usize), input.clone());
        prop_assert_eq!(&input[input.len() - tail.len()..], tail.as_slice());
    }

    #[test]
    fn case_fold_round_stability(lines in lines_strategy()) {
        // upper then upper == upper (idempotence of each fold).
        let up = primary(&mut CaseFold::upper(), to_values(&lines));
        let up2 = primary(&mut CaseFold::upper(), up.clone());
        prop_assert_eq!(up, up2);
    }

    #[test]
    fn squeeze_blank_removes_all_blanks(lines in lines_strategy()) {
        let out = primary(&mut SqueezeBlank, to_values(&lines));
        prop_assert!(out.iter().all(|v| !v.as_str().unwrap().trim().is_empty()));
    }

    #[test]
    fn pattern_literal_matches_itself(s in "[a-zA-Z0-9 ]{0,20}") {
        prop_assert!(Pattern::compile(&s).matches(&s));
    }

    #[test]
    fn pattern_star_prefix_suffix(s in "[a-z]{1,10}") {
        let (head, tail) = s.split_at(s.len() / 2);
        let prefix_pat = format!("{head}*");
        let suffix_pat = format!("*{tail}");
        let wrapped = format!("xx{s}yy");
        prop_assert!(Pattern::compile(&prefix_pat).matches(&s));
        prop_assert!(Pattern::compile(&suffix_pat).matches(&s));
        prop_assert!(Pattern::compile(&s).contained_in(&wrapped));
    }

    #[test]
    fn pattern_never_panics(pat in ".{0,20}", text in ".{0,40}") {
        let p = Pattern::compile(&pat);
        let _ = p.matches(&text);
        let _ = p.contained_in(&text);
    }
}
