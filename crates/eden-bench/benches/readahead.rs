//! Benchmark for E3: throughput versus read-ahead credit (§4's "buffer-up
//! some output ... all the Ejects in a pipeline can run concurrently").

use std::time::Duration as BenchDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_bench::runner::run_identity;
use eden_bench::workloads;
use eden_kernel::Kernel;
use eden_transput::Discipline;

fn readahead(c: &mut Criterion) {
    let kernel = Kernel::new();
    let mut group = c.benchmark_group("readahead");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));
    for k in [0usize, 16, 128] {
        group.bench_function(BenchmarkId::from_parameter(k), |b| {
            b.iter(|| {
                let run = run_identity(
                    &kernel,
                    Discipline::ReadOnly { read_ahead: k },
                    workloads::ints(1000),
                    4,
                    16,
                );
                assert_eq!(run.records_out, 1000);
            })
        });
    }
    // The write-only dual: push-ahead.
    for k in [0usize, 16, 128] {
        group.bench_function(BenchmarkId::new("push_ahead", k), |b| {
            b.iter(|| {
                let run = run_identity(
                    &kernel,
                    Discipline::WriteOnly { push_ahead: k },
                    workloads::ints(1000),
                    4,
                    16,
                );
                assert_eq!(run.records_out, 1000);
            })
        });
    }
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, readahead);
criterion_main!(benches);
