//! Benchmark for E10: directory operations and PATH-style concatenation.

use std::time::Duration as BenchDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_core::Value;
use eden_fs::{add_entry, lookup, DirConcatenatorEject, DirectoryEject};
use eden_kernel::Kernel;

fn directory(c: &mut Criterion) {
    let kernel = Kernel::new();
    let mut group = c.benchmark_group("directory");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));

    // Lookup in a populated directory.
    for size in [10usize, 1000] {
        let dir = kernel
            .spawn(Box::new(DirectoryEject::new()))
            .expect("spawn dir");
        for i in 0..size {
            add_entry(&kernel, dir, &format!("entry-{i:05}"), eden_core::Uid::fresh())
                .expect("add");
        }
        group.bench_function(BenchmarkId::new("lookup", size), |b| {
            b.iter(|| lookup(&kernel, dir, &format!("entry-{:05}", size / 2)).expect("hit"))
        });
    }

    // Worst-case concatenator lookup (hit in the last directory).
    for m in [2usize, 8] {
        let dirs: Vec<eden_core::Uid> = (0..m)
            .map(|_| kernel.spawn(Box::new(DirectoryEject::new())).expect("dir"))
            .collect();
        add_entry(&kernel, dirs[m - 1], "needle", eden_core::Uid::fresh()).expect("add");
        let path = kernel
            .spawn(Box::new(DirConcatenatorEject::new(dirs)))
            .expect("concat");
        group.bench_function(BenchmarkId::new("concatenator_lookup", m), |b| {
            b.iter(|| lookup(&kernel, path, "needle").expect("hit"))
        });
    }

    // AddEntry + DeleteEntry round trip.
    let dir = kernel
        .spawn(Box::new(DirectoryEject::new()))
        .expect("spawn dir");
    group.bench_function("add_delete", |b| {
        b.iter(|| {
            add_entry(&kernel, dir, "temp", eden_core::Uid::fresh()).expect("add");
            kernel
                .invoke(
                    dir,
                    eden_core::op::ops::DELETE_ENTRY,
                    Value::record([("name", Value::str("temp"))]),
                ).wait()
                .expect("delete");
        })
    });
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, directory);
criterion_main!(benches);
