//! Benchmark for E9: checkpoint cost and crash-reactivate latency.

use std::time::Duration as BenchDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_bench::workloads;
use eden_core::op::ops;
use eden_core::Value;
use eden_fs::{register_fs_types, FileEject};
use eden_kernel::Kernel;

fn spawn_file(kernel: &Kernel, records: usize) -> eden_core::Uid {
    let lines: Vec<String> = workloads::sized_lines(records, 32)
        .into_iter()
        .map(|v| v.as_str().expect("line").to_owned())
        .collect();
    kernel
        .spawn(Box::new(FileEject::from_lines(lines)))
        .expect("spawn file")
}

fn checkpoint(c: &mut Criterion) {
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));
    for records in [100usize, 10_000] {
        let file = spawn_file(&kernel, records);
        group.bench_function(BenchmarkId::new("checkpoint", records), |b| {
            b.iter(|| {
                kernel
                    .invoke(file, ops::CHECKPOINT, Value::Unit).wait()
                    .expect("checkpoint")
            })
        });
    }
    // Crash + reactivate-on-invocation: spawn, checkpoint once, then
    // measure the fault/recovery round trip.
    for records in [100usize, 10_000] {
        let file = spawn_file(&kernel, records);
        kernel
            .invoke(file, ops::CHECKPOINT, Value::Unit).wait()
            .expect("checkpoint");
        group.bench_function(BenchmarkId::new("crash_reactivate", records), |b| {
            b.iter(|| {
                kernel.crash(file).expect("crash");
                let len = kernel
                    .invoke(file, "Length", Value::Unit).wait()
                    .expect("reactivate");
                assert_eq!(len, Value::Int(records as i64));
            })
        });
    }
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, checkpoint);
criterion_main!(benches);
