//! Benchmark for E6: the runtime cost of capability channel identifiers
//! versus integers (§5's security/overhead trade).

use std::time::Duration as BenchDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_bench::runner::run_pipeline;
use eden_bench::workloads;
use eden_core::Value;
use eden_filters::SpellCheck;
use eden_kernel::Kernel;
use eden_transput::protocol::REPORT_NAME;
use eden_transput::transform::Transform;
use eden_transput::{ChannelPolicy, Discipline};

fn spell_stage() -> Vec<Box<dyn Transform>> {
    vec![Box::new(SpellCheck::new(workloads::dictionary())) as Box<dyn Transform>]
}

fn capability_channels(c: &mut Criterion) {
    let kernel = Kernel::new();
    let mut group = c.benchmark_group("capability_channels");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));
    for (label, policy) in [
        ("integer", ChannelPolicy::Integer),
        ("capability", ChannelPolicy::Capability),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let run = run_pipeline(
                    &kernel,
                    Discipline::ReadOnly { read_ahead: 0 },
                    workloads::prose(200, 5, 11),
                    spell_stage(),
                    16,
                    policy,
                    &[(0, REPORT_NAME)],
                );
                assert_eq!(run.records_out, 200);
                let _ = Value::Unit;
            })
        });
    }
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, capability_channels);
criterion_main!(benches);
