//! Registry contention under concurrent invocation — the overhead the
//! fast invocation plane removes.
//!
//! Two comparisons, both on the same binary:
//!
//! * `registry_contention/*`: M threads each hammer a private Echo Eject.
//!   `uncached-1shard` is the pre-PR invocation path — every invocation
//!   takes the (single) registry mutex and re-resolves the target.
//!   `cached-sharded` is the post-PR steady state — a route cache per
//!   caller, registry touched once.
//! * `concurrent_pipelines/*`: eight read-only identity pipelines run end
//!   to end at once under a modeled per-invocation rendezvous cost (the
//!   regime the paper lives in: Eden invocations took ~100ms, and
//!   Chrobot & Daszczuk's duality argument is that the rendezvous, not
//!   the data, dominates). `pre-pr-shape` is the seed configuration —
//!   single-shard registry, fixed batch. `fast-plane` opens every layer
//!   of this PR: sharded registry, cached routes, adaptive batching.

use std::time::Duration as BenchDuration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eden_core::{EdenError, Value};
use eden_kernel::{
    EjectBehavior, EjectContext, Invocation, InvokeOptions, Kernel, KernelConfig, ReplyHandle,
    RouteCache,
};
use eden_transput::transform::Identity;
use eden_transput::{Discipline, PipelineSpec};

struct Echo;

impl EjectBehavior for Echo {
    fn type_name(&self) -> &'static str {
        "Echo"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Echo" => reply.reply(Ok(inv.arg)),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

const CALLS_PER_THREAD: usize = 200;

fn kernel_with_shards(shards: usize) -> Kernel {
    Kernel::with_config(KernelConfig {
        registry_shards: shards,
        ..KernelConfig::default()
    })
}

/// M threads × CALLS_PER_THREAD invocations, each thread on its own Eject.
fn hammer(kernel: &Kernel, threads: usize, cached: bool) {
    let targets: Vec<_> = (0..threads)
        .map(|_| kernel.spawn(Box::new(Echo)).expect("spawn"))
        .collect();
    let workers: Vec<_> = targets
        .into_iter()
        .map(|target| {
            let kernel = kernel.clone();
            std::thread::spawn(move || {
                let mut cache = RouteCache::new();
                for i in 0..CALLS_PER_THREAD as i64 {
                    let pending = if cached {
                        kernel.invoke_with(target, "Echo", Value::Int(i), InvokeOptions::new().route_cache(&mut cache))
                    } else {
                        kernel.invoke(target, "Echo", Value::Int(i))
                    };
                    pending.wait().expect("echo");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
}

fn registry_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_contention");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(300));
    group.measurement_time(BenchDuration::from_secs(2));
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * CALLS_PER_THREAD) as u64));
        group.bench_function(BenchmarkId::new("uncached-1shard", threads), |b| {
            let kernel = kernel_with_shards(1);
            b.iter(|| hammer(&kernel, threads, false));
            kernel.shutdown();
        });
        group.bench_function(BenchmarkId::new("cached-sharded", threads), |b| {
            let kernel = kernel_with_shards(16);
            b.iter(|| hammer(&kernel, threads, true));
            kernel.shutdown();
        });
    }
    group.finish();
}

const PIPELINES: usize = 8;
const RECORDS: i64 = 600;
/// Modeled rendezvous cost per invocation. The real Eden's was ~100ms
/// (§6); two milliseconds keep the bench quick while preserving the
/// regime where the rendezvous dominates the data.
const RENDEZVOUS: BenchDuration = BenchDuration::from_millis(2);

/// Eight 2-filter identity pipelines running concurrently to completion.
fn run_pipelines(kernel: &Kernel, batch_max: usize) {
    let workers: Vec<_> = (0..PIPELINES)
        .map(|_| {
            let kernel = kernel.clone();
            std::thread::spawn(move || {
                let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 8 })
                    .source_vec((0..RECORDS).map(Value::Int).collect())
                    .batch(4)
                    .adaptive_batch(batch_max)
                    .stage(Box::new(Identity))
                    .stage(Box::new(Identity))
                    .build(&kernel)
                    .expect("build")
                    .run(BenchDuration::from_secs(120))
                    .expect("run");
                assert_eq!(run.records_out, RECORDS as u64);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("pipeline");
    }
}

fn concurrent_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_pipelines");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(300));
    group.measurement_time(BenchDuration::from_secs(4));
    group.throughput(Throughput::Elements(PIPELINES as u64 * RECORDS as u64));
    group.bench_function("pre-pr-shape", |b| {
        let kernel = Kernel::with_config(KernelConfig {
            registry_shards: 1,
            invocation_latency: Some(RENDEZVOUS),
            ..KernelConfig::default()
        });
        b.iter(|| run_pipelines(&kernel, 0));
        kernel.shutdown();
    });
    group.bench_function("fast-plane", |b| {
        let kernel = Kernel::with_config(KernelConfig {
            invocation_latency: Some(RENDEZVOUS),
            ..KernelConfig::default()
        });
        b.iter(|| run_pipelines(&kernel, 64));
        kernel.shutdown();
    });
    group.finish();
}

criterion_group!(benches, registry_contention, concurrent_pipelines);
criterion_main!(benches);
