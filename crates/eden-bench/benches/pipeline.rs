//! Benchmarks for E1/E2: per-datum invocation cost and pipeline
//! throughput across the three disciplines (Figures 1 and 2).

use std::time::Duration as BenchDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_bench::runner::run_identity;
use eden_bench::workloads;
use eden_kernel::Kernel;
use eden_transput::Discipline;

fn disciplines() -> [(&'static str, Discipline); 3] {
    [
        ("read-only", Discipline::ReadOnly { read_ahead: 0 }),
        ("write-only", Discipline::WriteOnly { push_ahead: 0 }),
        (
            "conventional",
            Discipline::Conventional { buffer_capacity: 32 },
        ),
    ]
}

/// E1 as wall clock: move 100 records through 4 filters, one record per
/// invocation. Read-only/write-only should run ~2x the conventional rate.
fn invocations_per_datum(c: &mut Criterion) {
    let kernel = Kernel::new();
    let mut group = c.benchmark_group("invocations_per_datum");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));
    for (label, discipline) in disciplines() {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let run = run_identity(&kernel, discipline, workloads::ints(100), 4, 1);
                assert_eq!(run.records_out, 100);
                run.metrics.invocations
            })
        });
    }
    group.finish();
    kernel.shutdown();
}

/// E2 as wall clock: 1000 records, batch 32, depth 1 vs 8.
fn pipeline_throughput(c: &mut Criterion) {
    let kernel = Kernel::new();
    let mut group = c.benchmark_group("pipeline_throughput");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));
    for depth in [1usize, 8] {
        for (label, discipline) in disciplines() {
            group.bench_function(BenchmarkId::new(label, depth), |b| {
                b.iter(|| {
                    let run =
                        run_identity(&kernel, discipline, workloads::ints(1000), depth, 32);
                    assert_eq!(run.records_out, 1000);
                })
            });
        }
    }
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, invocations_per_datum, pipeline_throughput);
criterion_main!(benches);
