//! Benchmark for E7: records per Transfer invocation.

use std::time::Duration as BenchDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eden_bench::runner::run_identity;
use eden_bench::workloads;
use eden_kernel::Kernel;
use eden_transput::Discipline;

fn batch_size(c: &mut Criterion) {
    let kernel = Kernel::new();
    let mut group = c.benchmark_group("batch_size");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));
    let records = 2000u64;
    group.throughput(Throughput::Elements(records));
    for batch in [1usize, 8, 64, 256] {
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            b.iter(|| {
                let run = run_identity(
                    &kernel,
                    Discipline::ReadOnly { read_ahead: 0 },
                    workloads::sized_lines(records as usize, 32),
                    2,
                    batch,
                );
                assert_eq!(run.records_out, records);
            })
        });
    }
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, batch_size);
criterion_main!(benches);
