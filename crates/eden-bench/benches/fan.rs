//! Benchmarks for E4: fan-in merges (read-only) and fan-out broadcasts
//! (write-only, and read-only via Tee channels).

use std::time::Duration;

use std::time::Duration as BenchDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_core::Value;
use eden_kernel::Kernel;
use eden_transput::collector::Collector;
use eden_transput::protocol::OUTPUT_NAME;
use eden_transput::read_only::{FanInMode, InputPort, PullFilterConfig, PullFilterEject};
use eden_transput::sink::{AcceptorSinkEject, SinkEject};
use eden_transput::source::{SourceEject, VecSource};
use eden_transput::transform::Identity;
use eden_transput::write_only::{OutputPort, OutputWiring, PushFilterEject, PushSourceEject};

const WAIT: Duration = Duration::from_secs(60);
const PER_SOURCE: i64 = 200;

fn fan_in(kernel: &Kernel, m: usize) {
    let inputs: Vec<InputPort> = (0..m as i64)
        .map(|i| {
            let src = kernel
                .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
                    (i * 1000..i * 1000 + PER_SOURCE).map(Value::Int).collect(),
                )))))
                .expect("source");
            InputPort::primary(src)
        })
        .collect();
    let filter = kernel
        .spawn(Box::new(PullFilterEject::with_config(
            Box::new(Identity),
            inputs,
            PullFilterConfig {
                fan_in: FanInMode::RoundRobin,
                batch: 16,
                ..Default::default()
            },
        )))
        .expect("filter");
    let c = Collector::null();
    let sink = kernel
        .spawn(Box::new(SinkEject::new(filter, 16, c.clone())))
        .expect("sink");
    c.wait_done(WAIT).expect("merge");
    assert_eq!(c.records_seen(), (m as i64 * PER_SOURCE) as u64);
    for uid in [filter, sink] {
        let _ = kernel.invoke(uid, eden_core::op::ops::DEACTIVATE, Value::Unit);
    }
}

fn fan_out(kernel: &Kernel, m: usize) {
    let collectors: Vec<Collector> = (0..m).map(|_| Collector::null()).collect();
    let mut wiring = OutputWiring::default();
    let mut ejects = Vec::new();
    for c in &collectors {
        let sink = kernel
            .spawn(Box::new(AcceptorSinkEject::new(c.clone())))
            .expect("acceptor");
        wiring.add(OUTPUT_NAME, OutputPort::primary(sink));
        ejects.push(sink);
    }
    let filter = kernel
        .spawn(Box::new(PushFilterEject::new(Box::new(Identity), wiring)))
        .expect("filter");
    let source = kernel
        .spawn(Box::new(PushSourceEject::new(
            Box::new(VecSource::new((0..PER_SOURCE).map(Value::Int).collect())),
            OutputWiring::primary_to(OutputPort::primary(filter)),
            16,
        )))
        .expect("source");
    kernel
        .invoke(source, "Start", Value::Unit).wait()
        .expect("start");
    for c in &collectors {
        c.wait_done(WAIT).expect("copy");
        assert_eq!(c.records_seen(), PER_SOURCE as u64);
    }
    ejects.push(filter);
    ejects.push(source);
    for uid in ejects {
        let _ = kernel.invoke(uid, eden_core::op::ops::DEACTIVATE, Value::Unit);
    }
}

fn fan(c: &mut Criterion) {
    let kernel = Kernel::new();
    let mut group = c.benchmark_group("fan");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));
    for m in [2usize, 8] {
        group.bench_function(BenchmarkId::new("read_only_fan_in", m), |b| {
            b.iter(|| fan_in(&kernel, m))
        });
        group.bench_function(BenchmarkId::new("write_only_fan_out", m), |b| {
            b.iter(|| fan_out(&kernel, m))
        });
    }
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, fan);
criterion_main!(benches);
