//! Ablation: what does durability cost?
//!
//! A durable filter auto-checkpoints after every Transfer; this bench
//! compares it against the plain (volatile) lazy filter on the same
//! stream, and measures the checkpoint-every-operation tax directly.

use std::time::Duration as BenchDuration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_core::op::ops;
use eden_core::Value;
use eden_filters::{DurableFilterEject, FilterSpec};
use eden_kernel::Kernel;
use eden_transput::protocol::{Batch, TransferRequest};
use eden_transput::read_only::{InputPort, PullFilterEject};
use eden_transput::source::{SourceEject, VecSource};

const RECORDS: i64 = 500;

fn drain(kernel: &Kernel, filter: eden_core::Uid, batch: usize) -> usize {
    let mut total = 0;
    loop {
        let b = Batch::from_value(
            kernel
                .invoke(filter, ops::TRANSFER, TransferRequest::primary(batch).to_value()).wait()
                .expect("transfer"),
        )
        .expect("batch");
        total += b.items.len();
        if b.end {
            break;
        }
    }
    total
}

fn source(kernel: &Kernel) -> eden_core::Uid {
    kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
            (0..RECORDS).map(|i| Value::str(format!("line {i}"))).collect(),
        )))))
        .expect("source")
}

fn durable_vs_volatile(c: &mut Criterion) {
    let kernel = Kernel::new();
    DurableFilterEject::register(&kernel);
    let mut group = c.benchmark_group("durable_filter");
    group.sample_size(10);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));
    for batch in [8usize, 64] {
        group.bench_function(BenchmarkId::new("volatile", batch), |b| {
            b.iter(|| {
                let src = source(&kernel);
                let filter = kernel
                    .spawn(Box::new(PullFilterEject::new(
                        Box::new(eden_filters::LineNumber::new()),
                        InputPort::primary(src),
                    )))
                    .expect("filter");
                let total = drain(&kernel, filter, batch);
                assert_eq!(total, RECORDS as usize);
                for uid in [src, filter] {
                    let _ = kernel.invoke(uid, ops::DEACTIVATE, Value::Unit);
                }
            })
        });
        group.bench_function(BenchmarkId::new("durable_ckpt_every_op", batch), |b| {
            b.iter(|| {
                let src = source(&kernel);
                let filter = kernel
                    .spawn(Box::new(
                        DurableFilterEject::new(FilterSpec::new("line-number"), src, batch)
                            .expect("durable filter"),
                    ))
                    .expect("spawn");
                let total = drain(&kernel, filter, batch);
                assert_eq!(total, RECORDS as usize);
                // Durable filters checkpointed, so deactivation leaves a
                // passive representation; remove it to keep the store flat.
                for uid in [src, filter] {
                    let _ = kernel.invoke(uid, ops::DEACTIVATE, Value::Unit);
                }
                kernel.stable_store().remove(filter);
            })
        });
    }
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, durable_vs_volatile);
criterion_main!(benches);
