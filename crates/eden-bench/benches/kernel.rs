//! Kernel microbenchmarks: the cost of invocation itself (the quantity
//! the paper's whole efficiency argument is denominated in), deferred
//! replies, internal messages, and Eject lifecycle.

use std::time::Duration as BenchDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use eden_core::{EdenError, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, Kernel, ReplyHandle};

struct Echo;

impl EjectBehavior for Echo {
    fn type_name(&self) -> &'static str {
        "Echo"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Echo" => reply.reply(Ok(inv.arg)),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// Parks then answers on the next poke: a deferred-reply round trip.
#[derive(Default)]
struct Parker {
    parked: Option<ReplyHandle>,
}

impl EjectBehavior for Parker {
    fn type_name(&self) -> &'static str {
        "Parker"
    }
    fn handle(&mut self, _ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Park" => {
                reply.mark_deferred();
                self.parked = Some(reply);
            }
            _ => {
                if let Some(parked) = self.parked.take() {
                    parked.reply(Ok(Value::Unit));
                }
                reply.reply(Ok(Value::Unit));
            }
        }
    }
}

fn kernel_microbench(c: &mut Criterion) {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).expect("spawn");
    let mut group = c.benchmark_group("kernel");
    group.sample_size(20);
    group.warm_up_time(BenchDuration::from_millis(400));
    group.measurement_time(BenchDuration::from_secs(2));

    group.bench_function("invoke_sync_roundtrip", |b| {
        b.iter(|| {
            kernel
                .invoke(echo, "Echo", Value::Int(42)).wait()
                .expect("echo")
        })
    });

    group.bench_function("invoke_async_pipelined_x32", |b| {
        b.iter(|| {
            let pendings: Vec<_> = (0..32)
                .map(|i| kernel.invoke(echo, "Echo", Value::Int(i)))
                .collect();
            for p in pendings {
                p.wait().expect("echo");
            }
        })
    });

    let parker = kernel.spawn(Box::new(Parker::default())).expect("spawn");
    group.bench_function("deferred_reply_roundtrip", |b| {
        b.iter(|| {
            let pending = kernel.invoke(parker, "Park", Value::Unit);
            kernel.invoke(parker, "Poke", Value::Unit).wait().expect("poke");
            pending.wait().expect("parked reply");
        })
    });

    group.bench_function("spawn_and_deactivate", |b| {
        b.iter(|| {
            let uid = kernel.spawn(Box::new(Echo)).expect("spawn");
            kernel
                .invoke(uid, eden_core::op::ops::DEACTIVATE, Value::Unit).wait()
                .expect("deactivate");
        })
    });
    group.finish();
    kernel.shutdown();
}

criterion_group!(benches, kernel_microbench);
criterion_main!(benches);
