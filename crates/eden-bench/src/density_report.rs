//! Density-plane report — the `--density-json` mode of the `experiments`
//! binary.
//!
//! Emits `BENCH_density.json` answering the scheduler tentpole's two
//! questions:
//!
//! * `resident`: how much memory and how many OS threads a parked
//!   read-only stream costs. The scheduler arm holds the full resident
//!   population (1M streams, 100k in `--smoke`); the threads arm holds a
//!   deliberately small sample (a million coordinator threads would not
//!   fit), and the per-Eject RSS slopes are compared directly.
//! * `goodput`: depth-4 identity-pipeline throughput, threads mode vs
//!   scheduler mode, plus the goodput-vs-workers curve for the pool.

use std::time::{Duration, Instant};

use eden_core::Value;
use eden_kernel::{
    EjectBehavior, EjectContext, Invocation, Kernel, ReplyHandle, SchedulerConfig,
};
use eden_transput::Discipline;

use crate::runner;

/// Workload dials for the density report.
#[derive(Debug, Clone)]
pub struct DensityConfig {
    /// Parked read-only streams held resident in the scheduler arm.
    pub resident: usize,
    /// Streams probed with a `Read` after the population parks.
    pub sample_reads: usize,
    /// Resident population for the thread-per-Eject baseline arm.
    pub threads_baseline: usize,
    /// Records pushed through each goodput pipeline.
    pub goodput_records: i64,
    /// Identity stages in the goodput pipelines.
    pub depth: usize,
    /// Worker-pool sizes for the goodput-vs-workers curve.
    pub workers_curve: Vec<usize>,
}

impl DensityConfig {
    /// CI-sized run: 100k resident streams.
    pub fn smoke() -> Self {
        DensityConfig {
            resident: 100_000,
            sample_reads: 256,
            threads_baseline: 1_000,
            goodput_records: 600,
            depth: 4,
            workers_curve: vec![1, 2, 4],
        }
    }

    /// Full run: the paper-scale 1M resident streams.
    pub fn full() -> Self {
        DensityConfig {
            resident: 1_000_000,
            sample_reads: 1024,
            threads_baseline: 4_000,
            goodput_records: 2_000,
            depth: 4,
            workers_curve: vec![1, 2, 4, 8],
        }
    }
}

/// A minimal read-only stream: replies to `Read` with the next integer.
/// One of these parked on its mailbox is the unit the density claim
/// prices.
struct ResidentStream {
    next: i64,
}

impl EjectBehavior for ResidentStream {
    fn type_name(&self) -> &'static str {
        "ResidentStream"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Read" => {
                let v = self.next;
                self.next += 1;
                reply.reply(Ok(Value::Int(v)));
            }
            _ => reply.reply(Err(eden_core::EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op.clone(),
            })),
        }
    }
}

/// `VmRSS` (kB) and `Threads` from `/proc/self/status`; zeros when the
/// file is unavailable (non-Linux), which the report records as-is.
fn proc_status() -> (u64, u64) {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let mut rss_kb = 0;
    let mut threads = 0;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss_kb = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            threads = rest.trim().parse().unwrap_or(0);
        }
    }
    (rss_kb, threads)
}

struct ResidentArm {
    count: usize,
    rss_before_kb: u64,
    rss_after_kb: u64,
    threads_before: u64,
    threads_after: u64,
    resident_ejects: u64,
    parked_ejects: u64,
    spawn_seconds: f64,
    probe_ok: usize,
    probe_total: usize,
}

impl ResidentArm {
    fn bytes_per_eject(&self) -> f64 {
        self.rss_after_kb.saturating_sub(self.rss_before_kb) as f64 * 1024.0
            / self.count.max(1) as f64
    }

    fn threads_per_eject(&self) -> f64 {
        self.threads_after.saturating_sub(self.threads_before) as f64 / self.count.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "      \"count\": {},\n",
                "      \"rss_before_kb\": {},\n",
                "      \"rss_after_kb\": {},\n",
                "      \"rss_bytes_per_eject\": {:.1},\n",
                "      \"threads_before\": {},\n",
                "      \"threads_after\": {},\n",
                "      \"threads_per_eject\": {:.4},\n",
                "      \"resident_ejects\": {},\n",
                "      \"parked_ejects\": {},\n",
                "      \"spawn_seconds\": {:.3},\n",
                "      \"probe_ok\": {},\n",
                "      \"probe_total\": {}\n",
                "    }}"
            ),
            self.count,
            self.rss_before_kb,
            self.rss_after_kb,
            self.bytes_per_eject(),
            self.threads_before,
            self.threads_after,
            self.threads_per_eject(),
            self.resident_ejects,
            self.parked_ejects,
            self.spawn_seconds,
            self.probe_ok,
            self.probe_total,
        )
    }
}

/// Hold `count` parked streams resident on `kernel`, measure the RSS and
/// thread deltas, and probe a sample with a `Read` to prove the parked
/// population is live, not leaked.
fn resident_arm(kernel: &Kernel, count: usize, sample_reads: usize) -> ResidentArm {
    let (rss_before_kb, threads_before) = proc_status();
    let t0 = Instant::now();
    let mut uids = Vec::with_capacity(count);
    for _ in 0..count {
        uids.push(
            kernel
                .spawn(Box::new(ResidentStream { next: 0 }))
                .expect("spawn resident stream"),
        );
    }
    // Wait for the population to drain through activation and park. In
    // threads mode there is nothing to wait for: parked_ejects stays zero
    // and the spawn loop itself is the rendezvous.
    if kernel.metrics_snapshot().sched.workers > 0 {
        let parked_deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let sched = kernel.metrics_snapshot().sched;
            if sched.parked_ejects >= count as u64 || Instant::now() > parked_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let spawn_seconds = t0.elapsed().as_secs_f64();
    let (rss_after_kb, threads_after) = proc_status();
    let snap = kernel.metrics_snapshot().sched;

    let probe_total = sample_reads.min(count);
    let stride = (count / probe_total.max(1)).max(1);
    let mut probe_ok = 0;
    for uid in uids.iter().step_by(stride).take(probe_total) {
        if kernel.invoke(*uid, "Read", Value::Unit).wait() == Ok(Value::Int(0)) {
            probe_ok += 1;
        }
    }
    ResidentArm {
        count,
        rss_before_kb,
        rss_after_kb,
        threads_before,
        threads_after,
        resident_ejects: snap.resident_ejects,
        parked_ejects: snap.parked_ejects,
        spawn_seconds,
        probe_ok,
        probe_total,
    }
}

/// Depth-`depth` identity-pipeline goodput (records/s) on `kernel`.
fn goodput(kernel: &Kernel, records: i64, depth: usize) -> f64 {
    let run = runner::run_identity(
        kernel,
        Discipline::ReadOnly { read_ahead: 8 },
        (0..records).map(Value::Int).collect(),
        depth,
        16,
    );
    assert_eq!(run.records_out, records as u64, "goodput pipeline lost records");
    run.records_out as f64 / run.wall.as_secs_f64().max(f64::EPSILON)
}

/// Run every arm and render `BENCH_density.json`.
pub fn density_report(cfg: &DensityConfig, smoke: bool) -> String {
    // Resident population, scheduler mode (the tentpole claim).
    let sched_kernel = Kernel::builder().build();
    let sched_arm = resident_arm(&sched_kernel, cfg.resident, cfg.sample_reads);
    sched_kernel.shutdown();

    // Thread-per-Eject baseline at a survivable population.
    let threads_kernel = Kernel::builder().threads_mode().build();
    let threads_arm = resident_arm(&threads_kernel, cfg.threads_baseline, cfg.sample_reads);
    threads_kernel.shutdown();

    // Goodput: threads mode vs default scheduler, then the workers curve.
    let threads_kernel = Kernel::builder().threads_mode().build();
    let threads_rps = goodput(&threads_kernel, cfg.goodput_records, cfg.depth);
    threads_kernel.shutdown();
    let sched_kernel = Kernel::builder().build();
    let sched_rps = goodput(&sched_kernel, cfg.goodput_records, cfg.depth);
    sched_kernel.shutdown();

    let mut curve_rows = Vec::new();
    for &workers in &cfg.workers_curve {
        let kernel = Kernel::builder()
            .scheduler(SchedulerConfig {
                workers,
                ..SchedulerConfig::default()
            })
            .build();
        let rps = goodput(&kernel, cfg.goodput_records, cfg.depth);
        kernel.shutdown();
        curve_rows.push(format!(
            "      {{ \"workers\": {workers}, \"records_per_second\": {rps:.1} }}"
        ));
    }

    format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"mode\": \"{}\",\n",
            "  \"resident\": {{\n",
            "    \"scheduler\": {},\n",
            "    \"threads_baseline\": {},\n",
            "    \"rss_bytes_per_eject_scheduler\": {:.1},\n",
            "    \"rss_bytes_per_eject_threads\": {:.1},\n",
            "    \"threads_per_eject_scheduler\": {:.4},\n",
            "    \"threads_per_eject_threads\": {:.4},\n",
            "    \"sublinear_vs_threads\": {}\n",
            "  }},\n",
            "  \"goodput\": {{\n",
            "    \"depth\": {},\n",
            "    \"records\": {},\n",
            "    \"threads_records_per_second\": {:.1},\n",
            "    \"scheduler_records_per_second\": {:.1},\n",
            "    \"scheduler_over_threads\": {:.3},\n",
            "    \"workers_curve\": [\n{}\n    ]\n",
            "  }}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        sched_arm.json(),
        threads_arm.json(),
        sched_arm.bytes_per_eject(),
        threads_arm.bytes_per_eject(),
        sched_arm.threads_per_eject(),
        threads_arm.threads_per_eject(),
        sched_arm.bytes_per_eject() < threads_arm.bytes_per_eject()
            && sched_arm.threads_per_eject() < threads_arm.threads_per_eject(),
        cfg.depth,
        cfg.goodput_records,
        threads_rps,
        sched_rps,
        sched_rps / threads_rps.max(f64::EPSILON),
        curve_rows.join(",\n"),
    )
}
