//! Density-plane report — the `--density-json` mode of the `experiments`
//! binary.
//!
//! Emits `BENCH_density.json` answering the scheduler tentpole's two
//! questions:
//!
//! * `resident`: how much memory and how many OS threads a parked
//!   read-only stream costs. The scheduler arm holds the full resident
//!   population (1M streams, 100k in `--smoke`); the threads arm holds a
//!   deliberately small sample (a million coordinator threads would not
//!   fit), and the per-Eject RSS slopes are compared directly.
//! * `goodput`: depth-4 identity-pipeline throughput, threads mode vs
//!   scheduler mode, plus the goodput-vs-workers curve for the pool.

use std::time::{Duration, Instant};

use eden_core::Value;
use eden_kernel::{
    EjectBehavior, EjectContext, Invocation, Kernel, ReplyHandle, SchedulerConfig,
};
use eden_transput::Discipline;

use crate::runner;

/// Workload dials for the density report.
#[derive(Debug, Clone)]
pub struct DensityConfig {
    /// Parked read-only streams held resident in the scheduler arm.
    pub resident: usize,
    /// Streams probed with a `Read` after the population parks.
    pub sample_reads: usize,
    /// Resident population for the thread-per-Eject baseline arm.
    pub threads_baseline: usize,
    /// Records pushed through each goodput pipeline.
    pub goodput_records: i64,
    /// Identity stages in the goodput pipelines.
    pub depth: usize,
    /// Worker-pool sizes for the goodput-vs-workers curve.
    pub workers_curve: Vec<usize>,
    /// Concurrent pipelines in the multi-pipeline arm.
    pub multi_pipelines: usize,
    /// Records pushed through *each* pipeline of the multi arm.
    pub multi_records: i64,
    /// Best-of-N rounds per curve point. The curve is sampled
    /// round-robin (every worker count once per round) so machine-wide
    /// drift lands on all points equally rather than skewing the tail.
    pub curve_samples: usize,
}

impl DensityConfig {
    /// CI-sized run: 100k resident streams.
    pub fn smoke() -> Self {
        DensityConfig {
            resident: 100_000,
            sample_reads: 256,
            threads_baseline: 1_000,
            goodput_records: 600,
            depth: 4,
            workers_curve: vec![1, 2, 4, 8],
            multi_pipelines: 8,
            multi_records: 10_000,
            curve_samples: 6,
        }
    }

    /// Full run: the paper-scale 1M resident streams.
    pub fn full() -> Self {
        DensityConfig {
            resident: 1_000_000,
            sample_reads: 1024,
            threads_baseline: 4_000,
            goodput_records: 20_000,
            depth: 4,
            workers_curve: vec![1, 2, 4, 8],
            multi_pipelines: 8,
            multi_records: 25_000,
            curve_samples: 14,
        }
    }
}

/// A minimal read-only stream: replies to `Read` with the next integer.
/// One of these parked on its mailbox is the unit the density claim
/// prices.
struct ResidentStream {
    next: i64,
}

impl EjectBehavior for ResidentStream {
    fn type_name(&self) -> &'static str {
        "ResidentStream"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Read" => {
                let v = self.next;
                self.next += 1;
                reply.reply(Ok(Value::Int(v)));
            }
            _ => reply.reply(Err(eden_core::EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op.clone(),
            })),
        }
    }
}

/// `VmRSS` (kB) and `Threads` from `/proc/self/status`; zeros when the
/// file is unavailable (non-Linux), which the report records as-is.
fn proc_status() -> (u64, u64) {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let mut rss_kb = 0;
    let mut threads = 0;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss_kb = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            threads = rest.trim().parse().unwrap_or(0);
        }
    }
    (rss_kb, threads)
}

struct ResidentArm {
    count: usize,
    rss_before_kb: u64,
    rss_after_kb: u64,
    threads_before: u64,
    threads_after: u64,
    resident_ejects: u64,
    parked_ejects: u64,
    spawn_seconds: f64,
    probe_ok: usize,
    probe_total: usize,
}

impl ResidentArm {
    fn bytes_per_eject(&self) -> f64 {
        self.rss_after_kb.saturating_sub(self.rss_before_kb) as f64 * 1024.0
            / self.count.max(1) as f64
    }

    fn threads_per_eject(&self) -> f64 {
        self.threads_after.saturating_sub(self.threads_before) as f64 / self.count.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "      \"count\": {},\n",
                "      \"rss_before_kb\": {},\n",
                "      \"rss_after_kb\": {},\n",
                "      \"rss_bytes_per_eject\": {:.1},\n",
                "      \"threads_before\": {},\n",
                "      \"threads_after\": {},\n",
                "      \"threads_per_eject\": {:.4},\n",
                "      \"resident_ejects\": {},\n",
                "      \"parked_ejects\": {},\n",
                "      \"spawn_seconds\": {:.3},\n",
                "      \"probe_ok\": {},\n",
                "      \"probe_total\": {}\n",
                "    }}"
            ),
            self.count,
            self.rss_before_kb,
            self.rss_after_kb,
            self.bytes_per_eject(),
            self.threads_before,
            self.threads_after,
            self.threads_per_eject(),
            self.resident_ejects,
            self.parked_ejects,
            self.spawn_seconds,
            self.probe_ok,
            self.probe_total,
        )
    }
}

/// Hold `count` parked streams resident on `kernel`, measure the RSS and
/// thread deltas, and probe a sample with a `Read` to prove the parked
/// population is live, not leaked.
fn resident_arm(kernel: &Kernel, count: usize, sample_reads: usize) -> ResidentArm {
    let (rss_before_kb, threads_before) = proc_status();
    let t0 = Instant::now();
    let mut uids = Vec::with_capacity(count);
    for _ in 0..count {
        uids.push(
            kernel
                .spawn(Box::new(ResidentStream { next: 0 }))
                .expect("spawn resident stream"),
        );
    }
    // Wait for the population to drain through activation and park. In
    // threads mode there is nothing to wait for: parked_ejects stays zero
    // and the spawn loop itself is the rendezvous.
    if kernel.metrics_snapshot().sched.workers > 0 {
        let parked_deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let sched = kernel.metrics_snapshot().sched;
            if sched.parked_ejects >= count as u64 || Instant::now() > parked_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let spawn_seconds = t0.elapsed().as_secs_f64();
    let (rss_after_kb, threads_after) = proc_status();
    let snap = kernel.metrics_snapshot().sched;

    let probe_total = sample_reads.min(count);
    let stride = (count / probe_total.max(1)).max(1);
    let mut probe_ok = 0;
    for uid in uids.iter().step_by(stride).take(probe_total) {
        if kernel.invoke(*uid, "Read", Value::Unit).wait() == Ok(Value::Int(0)) {
            probe_ok += 1;
        }
    }
    ResidentArm {
        count,
        rss_before_kb,
        rss_after_kb,
        threads_before,
        threads_after,
        resident_ejects: snap.resident_ejects,
        parked_ejects: snap.parked_ejects,
        spawn_seconds,
        probe_ok,
        probe_total,
    }
}

/// Depth-`depth` identity-pipeline goodput (records/s) on `kernel`.
fn goodput(kernel: &Kernel, records: i64, depth: usize) -> f64 {
    let run = runner::run_identity(
        kernel,
        Discipline::ReadOnly { read_ahead: 8 },
        (0..records).map(Value::Int).collect(),
        depth,
        16,
    );
    assert_eq!(run.records_out, records as u64, "goodput pipeline lost records");
    run.records_out as f64 / run.wall.as_secs_f64().max(f64::EPSILON)
}

/// Aggregate goodput (records/s) of `pipelines` concurrent depth-`depth`
/// identity pipelines racing on one kernel. This is the arm the workers
/// curve is judged on: a single pipeline leaves most of the pool idle by
/// construction, while eight concurrent ones give every worker something
/// to run and punish any dispatch path whose cost grows with pool size.
fn multi_goodput(kernel: &Kernel, records: i64, depth: usize, pipelines: usize) -> f64 {
    let t0 = Instant::now();
    let drivers: Vec<_> = (0..pipelines)
        .map(|_| {
            let kernel = kernel.clone();
            std::thread::spawn(move || {
                let run = runner::run_identity(
                    &kernel,
                    Discipline::ReadOnly { read_ahead: 8 },
                    (0..records).map(Value::Int).collect(),
                    depth,
                    16,
                );
                assert_eq!(
                    run.records_out, records as u64,
                    "multi-pipeline arm lost records"
                );
            })
        })
        .collect();
    for d in drivers {
        d.join().expect("multi-pipeline driver");
    }
    (records as f64 * pipelines as f64) / t0.elapsed().as_secs_f64().max(f64::EPSILON)
}

/// The rendered report plus the machine-readable curve the caller's
/// scaling guard judges (the experiments binary fails the run when the
/// multi-pipeline arm's widest pool loses to its single-worker point).
#[derive(Debug)]
pub struct DensityReport {
    /// The `BENCH_density.json` body.
    pub json: String,
    /// `(workers, records_per_second)` for the multi-pipeline arm
    /// (per-point medians, for display).
    pub multi_curve: Vec<(usize, f64)>,
    /// Median of the per-round paired differences between the widest
    /// pool and the single-worker point of the multi-pipeline arm
    /// (rec/s). The scaling guard judges this: pairing cancels host
    /// drift that unpaired medians would absorb.
    pub widest_paired_gain: f64,
}

/// Run every arm and render `BENCH_density.json`.
pub fn density_report(cfg: &DensityConfig, smoke: bool) -> DensityReport {
    // Resident population, scheduler mode (the tentpole claim).
    let sched_kernel = Kernel::builder().build();
    let sched_arm = resident_arm(&sched_kernel, cfg.resident, cfg.sample_reads);
    sched_kernel.shutdown();

    // Thread-per-Eject baseline at a survivable population.
    let threads_kernel = Kernel::builder().threads_mode().build();
    let threads_arm = resident_arm(&threads_kernel, cfg.threads_baseline, cfg.sample_reads);
    threads_kernel.shutdown();

    // Goodput: threads mode vs default scheduler, then the workers curve.
    let threads_kernel = Kernel::builder().threads_mode().build();
    let threads_rps = goodput(&threads_kernel, cfg.goodput_records, cfg.depth);
    threads_kernel.shutdown();
    let sched_kernel = Kernel::builder().build();
    let sched_rps = goodput(&sched_kernel, cfg.goodput_records, cfg.depth);
    sched_kernel.shutdown();

    // Workers curves, single- and multi-pipeline, best of N rounds.
    // Round-robin across pool sizes inside each round so a slow spell on
    // the host degrades every point, not whichever happened to run last;
    // alternate the direction per round so process-lifetime drift
    // (allocator state, page-cache warmth) doesn't always tax the same
    // end of the curve. Each point reports its per-round MEDIAN: the
    // curve's claim is about ordering between points, and a median
    // converges on the typical rate where a max would report whichever
    // point caught the luckiest host burst.
    let samples = cfg.curve_samples.max(1);
    let mut single_runs = vec![Vec::with_capacity(samples); cfg.workers_curve.len()];
    let mut multi_runs = vec![Vec::with_capacity(samples); cfg.workers_curve.len()];
    // Walking the curve in order (and back, on odd rounds) keeps every
    // adjacent pair of points sampled within seconds of each other,
    // which is what makes the paired differencing below cancel host
    // drift.
    let order: Vec<(usize, usize)> = cfg.workers_curve.iter().copied().enumerate().collect();
    for round in 0..samples {
        let pass: Vec<(usize, usize)> = if round % 2 == 0 {
            order.clone()
        } else {
            order.iter().rev().copied().collect()
        };
        for (i, workers) in pass {
            let kernel = Kernel::builder()
                .scheduler(SchedulerConfig {
                    workers,
                    ..SchedulerConfig::default()
                })
                .build();
            let s = goodput(&kernel, cfg.goodput_records, cfg.depth);
            let m = multi_goodput(&kernel, cfg.multi_records, cfg.depth, cfg.multi_pipelines);
            kernel.shutdown();
            single_runs[i].push(s);
            multi_runs[i].push(m);
        }
    }
    let median = |runs: &[f64]| -> f64 {
        let mut v = runs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("goodput is never NaN"));
        if v.len() % 2 == 1 {
            v[v.len() / 2]
        } else {
            (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
        }
    };
    let single_best: Vec<f64> = single_runs.iter().map(|r| median(r)).collect();
    let multi_best: Vec<f64> = multi_runs.iter().map(|r| median(r)).collect();
    let curve_rows: Vec<String> = cfg
        .workers_curve
        .iter()
        .zip(&single_best)
        .map(|(&workers, &rps)| {
            format!(
                "      {{ \"workers\": {workers}, \"records_per_second\": {rps:.1}, \
                 \"vs_one_worker\": {:.3} }}",
                rps / single_best[0].max(f64::EPSILON)
            )
        })
        .collect();
    let multi_rows: Vec<String> = cfg
        .workers_curve
        .iter()
        .zip(&multi_best)
        .map(|(&workers, &rps)| {
            format!(
                "        {{ \"workers\": {workers}, \"records_per_second\": {rps:.1}, \
                 \"vs_one_worker\": {:.3} }}",
                rps / multi_best[0].max(f64::EPSILON)
            )
        })
        .collect();
    let multi_scaling = multi_best.last().copied().unwrap_or(0.0)
        / multi_best.first().copied().unwrap_or(0.0).max(f64::EPSILON);
    // Ordering verdicts are judged on PAIRED per-round differences
    // between adjacent curve points, not on the point medians: the two
    // points of an adjacent pair are sampled seconds apart inside the
    // same round, so a machine-wide slow spell lands on both and
    // cancels in the difference, where it would skew unpaired medians
    // by more than the effect under test. The trimmed mean of the
    // diffs (unlike the median) also cancels linear drift exactly
    // under the alternating visit order, and the trim drops the
    // one-off spike a shared host throws in.
    let paired_gain = |a: usize, b: usize| -> f64 {
        let mut diffs: Vec<f64> = multi_runs[a]
            .iter()
            .zip(&multi_runs[b])
            .map(|(&lo, &hi)| hi - lo)
            .collect();
        diffs.sort_by(|x, y| x.partial_cmp(y).expect("goodput is never NaN"));
        let trim = diffs.len() / 4;
        let kept = &diffs[trim..diffs.len() - trim];
        kept.iter().sum::<f64>() / kept.len().max(1) as f64
    };
    let adjacent_gains: Vec<f64> = (1..cfg.workers_curve.len())
        .map(|i| paired_gain(i - 1, i))
        .collect();
    // Telescoping the adjacent gains estimates the widest pool's edge
    // over the single-worker point with every link drift-cancelled.
    let widest_paired_gain: f64 = adjacent_gains.iter().sum();
    // Non-decreasing within measurement resolution: a pair counts as
    // ordered when its drift-cancelled gain clears a band of 3% of the
    // single-worker point — the residual per-pair wobble of a shared
    // host, published alongside the verdict so the claim is auditable.
    let noise_band = multi_best.first().copied().unwrap_or(0.0) * 0.03;
    let multi_monotone = adjacent_gains.iter().all(|&g| g >= -noise_band);
    let multi_curve: Vec<(usize, f64)> = cfg
        .workers_curve
        .iter()
        .copied()
        .zip(multi_best.iter().copied())
        .collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"mode\": \"{}\",\n",
            "  \"resident\": {{\n",
            "    \"scheduler\": {},\n",
            "    \"threads_baseline\": {},\n",
            "    \"rss_bytes_per_eject_scheduler\": {:.1},\n",
            "    \"rss_bytes_per_eject_threads\": {:.1},\n",
            "    \"threads_per_eject_scheduler\": {:.4},\n",
            "    \"threads_per_eject_threads\": {:.4},\n",
            "    \"sublinear_vs_threads\": {}\n",
            "  }},\n",
            "  \"goodput\": {{\n",
            "    \"depth\": {},\n",
            "    \"records\": {},\n",
            "    \"threads_records_per_second\": {:.1},\n",
            "    \"scheduler_records_per_second\": {:.1},\n",
            "    \"scheduler_over_threads\": {:.3},\n",
            "    \"curve_samples\": {},\n",
            "    \"workers_curve\": [\n{}\n    ],\n",
            "    \"multi_pipeline\": {{\n",
            "      \"pipelines\": {},\n",
            "      \"records_per_pipeline\": {},\n",
            "      \"workers_curve\": [\n{}\n      ],\n",
            "      \"scaling_widest_over_one\": {:.3},\n",
            "      \"widest_paired_gain_rec_s\": {:.1},\n",
            "      \"adjacent_paired_gains_rec_s\": [{}],\n",
            "      \"noise_band_rec_s\": {:.1},\n",
            "      \"monotone_non_decreasing\": {}\n",
            "    }}\n",
            "  }}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        sched_arm.json(),
        threads_arm.json(),
        sched_arm.bytes_per_eject(),
        threads_arm.bytes_per_eject(),
        sched_arm.threads_per_eject(),
        threads_arm.threads_per_eject(),
        sched_arm.bytes_per_eject() < threads_arm.bytes_per_eject()
            && sched_arm.threads_per_eject() < threads_arm.threads_per_eject(),
        cfg.depth,
        cfg.goodput_records,
        threads_rps,
        sched_rps,
        sched_rps / threads_rps.max(f64::EPSILON),
        samples,
        curve_rows.join(",\n"),
        cfg.multi_pipelines,
        cfg.multi_records,
        multi_rows.join(",\n"),
        multi_scaling,
        widest_paired_gain,
        adjacent_gains
            .iter()
            .map(|g| format!("{g:.1}"))
            .collect::<Vec<_>>()
            .join(", "),
        noise_band,
        multi_monotone,
    );
    DensityReport {
        json,
        multi_curve,
        widest_paired_gain,
    }
}
