//! Synthetic workloads.
//!
//! The paper has no published traces (its evaluation is analytic), so the
//! workloads are synthetic text in the spirit of its examples: Fortran
//! decks with comment lines, prose with misspellings, integer record
//! streams. Everything is seeded and deterministic.

use eden_core::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Words used to build prose lines.
const VOCAB: [&str; 24] = [
    "the", "cat", "sat", "on", "mat", "dog", "ran", "fast", "bird", "flew", "high", "over",
    "tree", "river", "stone", "cloud", "wind", "light", "dark", "morning", "evening", "quick",
    "brown", "lazy",
];

/// Deterministic prose: `n` lines of 3–9 vocabulary words. Roughly one
/// line in `typo_every` contains a misspelled word (vowels doubled).
pub fn prose(n: usize, typo_every: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let words = rng.gen_range(3..=9);
            let mut line = String::new();
            for w in 0..words {
                if w > 0 {
                    line.push(' ');
                }
                let mut word = VOCAB[rng.gen_range(0..VOCAB.len())].to_owned();
                if typo_every > 0 && i % typo_every == 0 && w == 0 {
                    word = word.replace(['a', 'e', 'i', 'o', 'u'], "ee");
                }
                line.push_str(&word);
            }
            Value::str(line)
        })
        .collect()
}

/// The spell-check dictionary matching [`prose`]'s vocabulary.
pub fn dictionary() -> Vec<&'static str> {
    VOCAB.to_vec()
}

/// A Fortran-ish deck: every `comment_every`-th line is a `C` comment.
pub fn fortran_deck(n: usize, comment_every: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            if comment_every > 0 && i % comment_every == 0 {
                Value::str(format!("C     COMMENT LINE {i}"))
            } else {
                Value::str(format!("      CALL STEP({i})"))
            }
        })
        .collect()
}

/// A stream of integer records.
pub fn ints(n: i64) -> Vec<Value> {
    (0..n).map(Value::Int).collect()
}

/// Text lines of a fixed byte width (for byte-volume experiments).
pub fn sized_lines(n: usize, width: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            let mut s = format!("{i:08}:");
            while s.len() < width {
                s.push('x');
            }
            s.truncate(width.max(1));
            Value::str(s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prose_is_deterministic() {
        assert_eq!(prose(10, 3, 42), prose(10, 3, 42));
        assert_ne!(prose(10, 3, 42), prose(10, 3, 43));
    }

    #[test]
    fn prose_contains_typos() {
        let lines = prose(30, 3, 7);
        let typos = lines
            .iter()
            .filter(|l| l.as_str().unwrap().split(' ').any(|w| w.contains("ee") && !VOCAB.contains(&w)))
            .count();
        assert!(typos > 0);
    }

    #[test]
    fn fortran_deck_alternates() {
        let deck = fortran_deck(10, 2);
        assert!(deck[0].as_str().unwrap().starts_with('C'));
        assert!(deck[1].as_str().unwrap().contains("CALL"));
    }

    #[test]
    fn sized_lines_have_width() {
        for l in sized_lines(5, 64) {
            assert_eq!(l.as_str().unwrap().len(), 64);
        }
    }
}
