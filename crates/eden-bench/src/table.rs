//! Plain-text tables for the experiment harness.

use std::fmt;

/// A titled table with aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; ragged rows are padded with empty cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed after the table.
    pub notes: Vec<String>,
}

impl Table {
    /// An empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        fn cell(row: &[String], i: usize) -> &str {
            row.get(i).map(String::as_str).unwrap_or("")
        }
        for (i, w) in widths.iter_mut().enumerate() {
            *w = std::iter::once(cell(&self.headers, i).len())
                .chain(self.rows.iter().map(|r| cell(r, i).len()))
                .max()
                .unwrap_or(0);
        }
        writeln!(f, "## {}", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate() {
                write!(f, " {:<w$} |", cell(row, i), w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(["1", "short"]);
        t.row(["1000", "x"]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| n    | value |"));
        assert!(s.contains("| 1000 | x     |"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn ragged_rows_pad() {
        let mut t = Table::new("r", &["a", "b", "c"]);
        t.row(["only"]);
        let s = t.to_string();
        assert!(s.lines().count() >= 3);
    }
}
