//! Experiments E1–E3, E7, E8: the pipeline-cost claims of §4.

use eden_core::{CostModel, Value};
use eden_kernel::Kernel;
use eden_transput::read_only::{InputPort, PullFilterConfig, PullFilterEject};
use eden_transput::source::{CountingSource, SourceEject, VecSource};
use eden_transput::transform::Identity;
use eden_transput::Discipline;

use crate::runner::{fmt_f, fmt_krate, run_identity, DEADLINE};
use crate::table::Table;
use crate::workloads;

/// E1 — Figures 1 and 2, quantified: invocations per datum and entity
/// counts versus pipeline depth, for all three disciplines.
pub fn e1() -> Vec<Table> {
    let items: i64 = 200;
    let mut inv = Table::new(
        "E1: invocations per datum vs pipeline depth (batch=1)",
        &[
            "n (filters)",
            "read-only",
            "paper n+1",
            "write-only",
            "conventional",
            "paper 2n+2",
        ],
    );
    let mut ent = Table::new(
        "E1b: entities (Ejects) vs pipeline depth",
        &[
            "n (filters)",
            "read-only",
            "paper n+2",
            "write-only",
            "conventional",
            "paper 2n+3",
        ],
    );
    let kernel = Kernel::new();
    for n in [0usize, 1, 2, 4, 8] {
        let ro = run_identity(
            &kernel,
            Discipline::ReadOnly { read_ahead: 0 },
            workloads::ints(items),
            n,
            1,
        );
        let wo = run_identity(
            &kernel,
            Discipline::WriteOnly { push_ahead: 0 },
            workloads::ints(items),
            n,
            1,
        );
        let conv = run_identity(
            &kernel,
            Discipline::Conventional { buffer_capacity: 16 },
            workloads::ints(items),
            n,
            1,
        );
        inv.row([
            n.to_string(),
            fmt_f(ro.invocations_per_record()),
            (n + 1).to_string(),
            fmt_f(wo.invocations_per_record()),
            fmt_f(conv.invocations_per_record()),
            (2 * n + 2).to_string(),
        ]);
        ent.row([
            n.to_string(),
            ro.entities.to_string(),
            (n + 2).to_string(),
            wo.entities.to_string(),
            conv.entities.to_string(),
            (2 * n + 3).to_string(),
        ]);
    }
    kernel.shutdown();
    inv.note("write-only includes its single Start control invocation (+1/D per datum).");
    inv.note("conventional includes end-of-stream drain transfers (bounded, not per-datum).");
    vec![inv, ent]
}

/// E2 — "considerable savings of communications overhead ... with long
/// pipelines": throughput versus depth.
pub fn e2() -> Vec<Table> {
    let items: i64 = 3000;
    let batch = 32;
    let mut t = Table::new(
        "E2: throughput (krec/s) vs pipeline depth (3000 records, batch=32)",
        &[
            "n (filters)",
            "RO lazy",
            "RO ra=64",
            "WO sync",
            "WO pa=32",
            "conventional",
        ],
    );
    let kernel = Kernel::new();
    for n in [1usize, 2, 4, 8] {
        let mut cells = vec![n.to_string()];
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::ReadOnly { read_ahead: 64 },
            Discipline::WriteOnly { push_ahead: 0 },
            Discipline::WriteOnly { push_ahead: 32 },
            Discipline::Conventional { buffer_capacity: 64 },
        ] {
            let run = run_identity(&kernel, discipline, workloads::ints(items), n, batch);
            assert_eq!(run.records_out, items as u64);
            cells.push(fmt_krate(run.records_out, run.wall));
        }
        t.row(cells);
    }
    kernel.shutdown();
    t.note("expected shape: asymmetric disciplines degrade more slowly with depth than conventional.");

    // E2b: distributed placement — the paper's Ejects lived on several
    // VAXen; remote invocations pay an Ethernet surcharge in the model.
    let mut dist = Table::new(
        "E2b: distributed placement (depth 4, 1000 records, batch=8, eden-1983 cost model)",
        &[
            "nodes",
            "discipline",
            "invocations",
            "remote",
            "modeled ms",
        ],
    );
    let model = CostModel::eden_1983();
    let kernel = Kernel::new();
    for nodes in [1u16, 2, 6] {
        for discipline in [
            Discipline::ReadOnly { read_ahead: 0 },
            Discipline::Conventional { buffer_capacity: 16 },
        ] {
            let mut builder =
                eden_transput::PipelineSpec::new(discipline)
                    .source_vec(workloads::ints(1000))
                    .batch(8)
                    .over_nodes(nodes);
            for _ in 0..4 {
                builder = builder.stage(Box::new(Identity));
            }
            let run = builder
                .build(&kernel)
                .expect("build")
                .run(crate::runner::DEADLINE)
                .expect("run");
            dist.row([
                nodes.to_string(),
                discipline.label().to_string(),
                run.metrics.invocations.to_string(),
                run.metrics.remote_invocations.to_string(),
                fmt_f(model.modeled_ns(&run.metrics) / 1e6),
            ]);
        }
    }
    kernel.shutdown();
    dist.note("with round-robin placement every hop is remote; read-only halves both the invocations and the Ethernet crossings.");

    // E2c: the same comparison with *real* injected latency — when
    // invocation is expensive in wall-clock terms (the paper's regime),
    // halving the invocations halves the time.
    let mut lat = Table::new(
        "E2c: wall clock with 200us injected invocation latency (depth 4, 400 records)",
        &["discipline", "invocations", "wall ms", "krec/s"],
    );
    let slow = Kernel::with_config(eden_kernel::KernelConfig {
        invocation_latency: Some(std::time::Duration::from_micros(200)),
        ..Default::default()
    });
    for (label, discipline, window) in [
        ("read-only (lazy)", Discipline::ReadOnly { read_ahead: 0 }, 1usize),
        ("read-only ra=32", Discipline::ReadOnly { read_ahead: 32 }, 1),
        ("write-only w=1", Discipline::WriteOnly { push_ahead: 0 }, 1),
        ("write-only w=8", Discipline::WriteOnly { push_ahead: 8 }, 8),
        (
            "conventional",
            Discipline::Conventional { buffer_capacity: 16 },
            1,
        ),
    ] {
        let mut builder = eden_transput::PipelineSpec::new(discipline)
            .source_vec(workloads::ints(400))
            .batch(8)
            .write_window(window);
        for _ in 0..4 {
            builder = builder.stage(Box::new(Identity));
        }
        let run = builder
            .build(&slow)
            .expect("build")
            .run(crate::runner::DEADLINE)
            .expect("run");
        lat.row([
            label.to_string(),
            run.metrics.invocations.to_string(),
            fmt_f(run.wall.as_secs_f64() * 1000.0),
            fmt_krate(run.records_out, run.wall),
        ]);
    }
    slow.shutdown();
    lat.note("the table IS §4's concurrency paragraph: fully-lazy read-only loses to conventional (pipes overlap latency per stage), but with 'buffer-up some output' (read-ahead / write windows) the asymmetric disciplines overlap latency too and their 2x invocation saving becomes a ~2x wall-clock win.");
    vec![t, dist, lat]
}

/// E3 — laziness and bounded anticipation (§4).
pub fn e3() -> Vec<Table> {
    let mut lazy = Table::new(
        "E3a: records pulled from the source BEFORE any sink demand",
        &["filter read_ahead", "records pre-pulled", "bound (ra+batch)"],
    );
    let kernel = Kernel::new();
    for read_ahead in [0usize, 8, 32, 128] {
        let (counting, pulled) =
            CountingSource::new(VecSource::new((0..10_000).map(Value::Int).collect()));
        let source = kernel
            .spawn(Box::new(SourceEject::new(Box::new(counting))))
            .expect("spawn source");
        let filter = kernel
            .spawn(Box::new(PullFilterEject::with_config(
                Box::new(Identity),
                vec![InputPort::primary(source)],
                PullFilterConfig {
                    read_ahead,
                    batch: 8,
                    ..Default::default()
                },
            )))
            .expect("spawn filter");
        // Give any prefetch worker time to do all it is ever going to do.
        std::thread::sleep(std::time::Duration::from_millis(150));
        let pre = pulled.load(std::sync::atomic::Ordering::Relaxed);
        lazy.row([
            read_ahead.to_string(),
            pre.to_string(),
            (read_ahead + 8).to_string(),
        ]);
        assert!(pre <= (read_ahead + 8) as u64, "anticipation must be bounded");
        // Tear down.
        let _ = kernel.invoke(filter, eden_core::op::ops::DEACTIVATE, Value::Unit);
        let _ = kernel.invoke(source, eden_core::op::ops::DEACTIVATE, Value::Unit);
    }
    lazy.note("read_ahead=0 reproduces 'no data flows until a sink is connected'.");

    let mut thr = Table::new(
        "E3b: throughput (krec/s) vs read-ahead credit k (depth 4, 3000 records)",
        &["k", "krec/s", "internal msgs"],
    );
    for k in [0usize, 4, 16, 64, 256] {
        let run = run_identity(
            &kernel,
            Discipline::ReadOnly { read_ahead: k },
            workloads::ints(3000),
            4,
            16,
        );
        thr.row([
            k.to_string(),
            fmt_krate(run.records_out, run.wall),
            run.metrics.internal_messages.to_string(),
        ]);
    }
    kernel.shutdown();
    thr.note("k=0 is fully lazy (serial demand); k>0 buys concurrency with intra-Eject messages.");
    vec![lazy, thr]
}

/// E7 — batching: "each Eject in a pipeline should read some input and
/// buffer-up some output" as a records-per-Transfer sweep.
pub fn e7() -> Vec<Table> {
    let items: i64 = 4000;
    let mut t = Table::new(
        "E7: batch size sweep (read-only, depth 2, 4000 records)",
        &["batch", "invocations", "krec/s", "bytes moved"],
    );
    let kernel = Kernel::new();
    for batch in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let run = run_identity(
            &kernel,
            Discipline::ReadOnly { read_ahead: 0 },
            workloads::sized_lines(items as usize, 32),
            2,
            batch,
        );
        t.row([
            batch.to_string(),
            run.metrics.invocations.to_string(),
            fmt_krate(run.records_out, run.wall),
            run.metrics.bytes_total().to_string(),
        ]);
    }
    kernel.shutdown();
    t.note("invocations fall as 1/batch; bytes moved stay constant.");
    vec![t]
}

/// E8 — "the cost of an invocation must inevitably be higher than that of
/// a system call": sweep the invocation : internal-message cost ratio and
/// watch the asymmetric discipline's advantage appear.
pub fn e8() -> Vec<Table> {
    let items: i64 = 2000;
    let depth = 4;
    let batch = 8;
    let kernel = Kernel::new();
    // Measure the event mix once per discipline. The read-ahead variant
    // is the paper's recommended configuration: fewer invocations, more
    // intra-Eject communication.
    let ro = run_identity(
        &kernel,
        Discipline::ReadOnly { read_ahead: 32 },
        workloads::ints(items),
        depth,
        batch,
    );
    let wo = run_identity(
        &kernel,
        Discipline::WriteOnly { push_ahead: 32 },
        workloads::ints(items),
        depth,
        batch,
    );
    let conv = run_identity(
        &kernel,
        Discipline::Conventional { buffer_capacity: 32 },
        workloads::ints(items),
        depth,
        batch,
    );
    kernel.shutdown();
    let mut t = Table::new(
        "E8: modeled cost vs invocation:internal-IPC cost ratio (depth 4)",
        &[
            "ratio",
            "RO modeled ms",
            "WO modeled ms",
            "conv modeled ms",
            "conv/RO",
        ],
    );
    t.note(format!(
        "event mix — RO: {} inv + {} internal; WO: {} inv + {} internal; conv: {} inv + {} internal",
        ro.metrics.invocations,
        ro.metrics.internal_messages,
        wo.metrics.invocations,
        wo.metrics.internal_messages,
        conv.metrics.invocations,
        conv.metrics.internal_messages,
    ));
    for ratio in [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
        let model = CostModel::with_ratio(ratio);
        let ro_ms = model.modeled_ns(&ro.metrics) / 1e6;
        let wo_ms = model.modeled_ns(&wo.metrics) / 1e6;
        let conv_ms = model.modeled_ns(&conv.metrics) / 1e6;
        t.row([
            fmt_f(ratio),
            fmt_f(ro_ms),
            fmt_f(wo_ms),
            fmt_f(conv_ms),
            fmt_f(conv_ms / ro_ms),
        ]);
    }
    t.note("as the ratio grows the advantage approaches the paper's (2n+2)/(n+1) = 2x for n=4 → 1.67x...2x.");
    let _ = DEADLINE;
    vec![t]
}
