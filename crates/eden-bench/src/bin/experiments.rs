//! Deterministic experiment harness: prints the table(s) for each
//! experiment in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p eden-bench --release --bin experiments [ids...]`
//! where each id is `e1`..`e10`; no argument (or `all`) runs everything.
//! `--json` instead measures the pipeline/contention workloads and writes
//! `BENCH_pipeline.json` plus the payload-plane report `BENCH_payload.json`
//! (machine-readable, tracked across PRs); combine it with ids to also
//! print those tables. `--payload-json` writes only `BENCH_payload.json`,
//! `--chaos-json` runs the fault-plane chaos arms and writes
//! `BENCH_chaos.json`, `--obs-json` measures the observability-plane
//! overhead and writes `BENCH_obs.json`, `--density-json` measures
//! resident-stream density and scheduler goodput and writes
//! `BENCH_density.json`, `--durability-json` measures the log-structured
//! durable stable store (cold-restart recovery, fsync-policy goodput,
//! chaos with a durable backend) and writes `BENCH_durability.json`,
//! `--overload-json` runs the open-loop overload sweep (chat/pubsub and
//! tail-f scenarios, every shed policy, offered load past saturation)
//! and writes `BENCH_overload.json`, and `--smoke` shrinks the workloads
//! for CI.

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let payload_json = args.iter().any(|a| a == "--payload-json");
    let chaos_json = args.iter().any(|a| a == "--chaos-json");
    let obs_json = args.iter().any(|a| a == "--obs-json");
    let density_json = args.iter().any(|a| a == "--density-json");
    let durability_json = args.iter().any(|a| a == "--durability-json");
    let overload_json = args.iter().any(|a| a == "--overload-json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let id_args: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if json {
        let t0 = Instant::now();
        let report = eden_bench::json_report::pipeline_report();
        std::fs::write("BENCH_pipeline.json", &report).expect("write BENCH_pipeline.json");
        println!(
            "wrote BENCH_pipeline.json ({:.2}s)",
            t0.elapsed().as_secs_f64()
        );
    }
    if json || payload_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::payload_report::PayloadConfig::smoke()
        } else {
            eden_bench::payload_report::PayloadConfig::full()
        };
        let report = eden_bench::payload_report::payload_report(&cfg);
        std::fs::write("BENCH_payload.json", &report).expect("write BENCH_payload.json");
        println!(
            "wrote BENCH_payload.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
    }
    if chaos_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::chaos_report::ChaosConfig::smoke()
        } else {
            eden_bench::chaos_report::ChaosConfig::full()
        };
        let report = eden_bench::chaos_report::chaos_report(&cfg);
        std::fs::write("BENCH_chaos.json", &report).expect("write BENCH_chaos.json");
        println!(
            "wrote BENCH_chaos.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
    }
    if obs_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::obs_report::ObsConfigDims::smoke()
        } else {
            eden_bench::obs_report::ObsConfigDims::full()
        };
        let report = eden_bench::obs_report::obs_report(&cfg);
        std::fs::write("BENCH_obs.json", &report).expect("write BENCH_obs.json");
        println!(
            "wrote BENCH_obs.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
    }
    if durability_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::durability_report::DurabilityConfig::smoke()
        } else {
            eden_bench::durability_report::DurabilityConfig::full()
        };
        let report = eden_bench::durability_report::durability_report(&cfg);
        std::fs::write("BENCH_durability.json", &report).expect("write BENCH_durability.json");
        println!(
            "wrote BENCH_durability.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
    }
    if density_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::density_report::DensityConfig::smoke()
        } else {
            eden_bench::density_report::DensityConfig::full()
        };
        let report = eden_bench::density_report::density_report(&cfg, smoke);
        std::fs::write("BENCH_density.json", &report.json).expect("write BENCH_density.json");
        println!(
            "wrote BENCH_density.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
        // Scaling guard: the multi-pipeline arm's widest pool must not
        // lose to its single-worker point. Judged after the JSON is
        // written so a failing run still leaves the curve on disk.
        //
        // The verdict uses the drift-cancelling paired gain with a 10%
        // tolerance band: a shared host wobbles individual samples by
        // ±5% even after pairing, while the failure mode this guard
        // exists to catch — worker scaling collapsing into the old
        // inverted curve — showed up as a 28% deficit. Ten percent
        // rejects noise at better than 2 sigma and still flags a real
        // collapse on the first run.
        if let (Some(&(w_lo, lo)), Some(&(w_hi, hi))) =
            (report.multi_curve.first(), report.multi_curve.last())
        {
            let tolerance = lo * 0.10;
            println!(
                "density scaling guard: multi-pipeline goodput \
                 workers={w_lo}: {lo:.1} rec/s, workers={w_hi}: {hi:.1} rec/s \
                 (paired per-round gain {:+.1} rec/s, tolerance -{tolerance:.1})",
                report.widest_paired_gain,
            );
            if report.widest_paired_gain < -tolerance {
                eprintln!(
                    "FAIL: scheduler scaling regressed — workers={w_hi} multi-pipeline \
                     goodput {hi:.1} rec/s vs workers={w_lo} goodput {lo:.1} rec/s, \
                     paired per-round gain {:.1} rec/s is below -{tolerance:.1} \
                     (10% of the single-worker point)",
                    report.widest_paired_gain,
                );
                std::process::exit(1);
            }
        }
    }
    if overload_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::overload_report::OverloadConfig::smoke()
        } else {
            eden_bench::overload_report::OverloadConfig::full()
        };
        let report = eden_bench::overload_report::overload_report(&cfg, smoke);
        std::fs::write("BENCH_overload.json", &report.json).expect("write BENCH_overload.json");
        println!(
            "wrote BENCH_overload.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
        // Graceful-knee guard, judged after the JSON is written so a
        // failing run still leaves the curves on disk. Two claims:
        //
        // * RejectNewest is graceful: on-time goodput at the highest
        //   offered multiple (2× saturation) stays within 10% of that
        //   policy's peak — shedding the excess keeps admitted work
        //   fresh, so the curve flattens instead of folding over.
        // * Park collapses: with senders wedging behind the full mailbox
        //   the schedule slips without bound, so on-time goodput at 2×
        //   falls under half of the RejectNewest peak. If Park ever
        //   stops collapsing, the open-loop driver is no longer open
        //   loop — that is as much a harness bug as a kernel regression.
        let peak = |curve: &[(f64, f64)]| curve.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
        let at_max = |curve: &[(f64, f64)]| {
            curve
                .iter()
                .cloned()
                .max_by(|a, b| a.0.partial_cmp(&b.0).expect("offered multiple is never NaN"))
                .map(|(_, g)| g)
                .unwrap_or(0.0)
        };
        let rn_peak = peak(&report.chat_reject_newest);
        let rn_at_2x = at_max(&report.chat_reject_newest);
        let park_at_2x = at_max(&report.chat_park);
        println!(
            "overload knee guard: chat reject-newest peak {rn_peak:.1} rec/s, \
             at-2x {rn_at_2x:.1} rec/s ({:.1}% of peak); park at-2x {park_at_2x:.1} rec/s",
            100.0 * rn_at_2x / rn_peak.max(f64::EPSILON),
        );
        let mut knee_failed = false;
        if rn_at_2x < rn_peak * 0.90 {
            eprintln!(
                "FAIL: overload knee is not graceful — RejectNewest goodput at 2x \
                 saturation ({rn_at_2x:.1} rec/s) fell below 90% of its peak \
                 ({rn_peak:.1} rec/s)"
            );
            knee_failed = true;
        }
        if park_at_2x >= rn_peak * 0.50 {
            eprintln!(
                "FAIL: Park baseline did not collapse — goodput at 2x saturation \
                 ({park_at_2x:.1} rec/s) is at least half the RejectNewest peak \
                 ({rn_peak:.1} rec/s), so the open-loop driver is not exposing \
                 the standoff"
            );
            knee_failed = true;
        }
        if knee_failed {
            std::process::exit(1);
        }
    }
    if (json
        || payload_json
        || chaos_json
        || obs_json
        || density_json
        || durability_json
        || overload_json)
        && id_args.is_empty()
    {
        return;
    }
    let ids: Vec<&str> = if id_args.is_empty() || id_args.contains(&"all") {
        eden_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        id_args
    };
    println!("# Asymmetric Stream Communication — experiment harness\n");
    let overall = Instant::now();
    let mut failed = false;
    for id in ids {
        let t0 = Instant::now();
        match eden_bench::run_experiment(id) {
            Some(tables) => {
                for table in &tables {
                    println!("{table}");
                }
                println!("({id} took {:.2}s)\n", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id: {id} (want e1..e10 or all)");
                failed = true;
            }
        }
    }
    println!("total: {:.2}s", overall.elapsed().as_secs_f64());
    if failed {
        std::process::exit(2);
    }
}
