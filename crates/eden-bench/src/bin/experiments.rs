//! Deterministic experiment harness: prints the table(s) for each
//! experiment in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p eden-bench --release --bin experiments [ids...]`
//! where each id is `e1`..`e10`; no argument (or `all`) runs everything.

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        eden_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("# Asymmetric Stream Communication — experiment harness\n");
    let overall = Instant::now();
    let mut failed = false;
    for id in ids {
        let t0 = Instant::now();
        match eden_bench::run_experiment(id) {
            Some(tables) => {
                for table in &tables {
                    println!("{table}");
                }
                println!("({id} took {:.2}s)\n", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id: {id} (want e1..e10 or all)");
                failed = true;
            }
        }
    }
    println!("total: {:.2}s", overall.elapsed().as_secs_f64());
    if failed {
        std::process::exit(2);
    }
}
