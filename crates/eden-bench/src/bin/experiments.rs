//! Deterministic experiment harness: prints the table(s) for each
//! experiment in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p eden-bench --release --bin experiments [ids...]`
//! where each id is `e1`..`e10`; no argument (or `all`) runs everything.
//! `--json` instead measures the pipeline/contention workloads and writes
//! `BENCH_pipeline.json` plus the payload-plane report `BENCH_payload.json`
//! (machine-readable, tracked across PRs); combine it with ids to also
//! print those tables. `--payload-json` writes only `BENCH_payload.json`,
//! `--chaos-json` runs the fault-plane chaos arms and writes
//! `BENCH_chaos.json`, `--obs-json` measures the observability-plane
//! overhead and writes `BENCH_obs.json`, `--density-json` measures
//! resident-stream density and scheduler goodput and writes
//! `BENCH_density.json`, `--durability-json` measures the log-structured
//! durable stable store (cold-restart recovery, fsync-policy goodput,
//! chaos with a durable backend) and writes `BENCH_durability.json`, and
//! `--smoke` shrinks the workloads for CI.

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let payload_json = args.iter().any(|a| a == "--payload-json");
    let chaos_json = args.iter().any(|a| a == "--chaos-json");
    let obs_json = args.iter().any(|a| a == "--obs-json");
    let density_json = args.iter().any(|a| a == "--density-json");
    let durability_json = args.iter().any(|a| a == "--durability-json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let id_args: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if json {
        let t0 = Instant::now();
        let report = eden_bench::json_report::pipeline_report();
        std::fs::write("BENCH_pipeline.json", &report).expect("write BENCH_pipeline.json");
        println!(
            "wrote BENCH_pipeline.json ({:.2}s)",
            t0.elapsed().as_secs_f64()
        );
    }
    if json || payload_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::payload_report::PayloadConfig::smoke()
        } else {
            eden_bench::payload_report::PayloadConfig::full()
        };
        let report = eden_bench::payload_report::payload_report(&cfg);
        std::fs::write("BENCH_payload.json", &report).expect("write BENCH_payload.json");
        println!(
            "wrote BENCH_payload.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
    }
    if chaos_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::chaos_report::ChaosConfig::smoke()
        } else {
            eden_bench::chaos_report::ChaosConfig::full()
        };
        let report = eden_bench::chaos_report::chaos_report(&cfg);
        std::fs::write("BENCH_chaos.json", &report).expect("write BENCH_chaos.json");
        println!(
            "wrote BENCH_chaos.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
    }
    if obs_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::obs_report::ObsConfigDims::smoke()
        } else {
            eden_bench::obs_report::ObsConfigDims::full()
        };
        let report = eden_bench::obs_report::obs_report(&cfg);
        std::fs::write("BENCH_obs.json", &report).expect("write BENCH_obs.json");
        println!(
            "wrote BENCH_obs.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
    }
    if durability_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::durability_report::DurabilityConfig::smoke()
        } else {
            eden_bench::durability_report::DurabilityConfig::full()
        };
        let report = eden_bench::durability_report::durability_report(&cfg);
        std::fs::write("BENCH_durability.json", &report).expect("write BENCH_durability.json");
        println!(
            "wrote BENCH_durability.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
    }
    if density_json {
        let t0 = Instant::now();
        let cfg = if smoke {
            eden_bench::density_report::DensityConfig::smoke()
        } else {
            eden_bench::density_report::DensityConfig::full()
        };
        let report = eden_bench::density_report::density_report(&cfg, smoke);
        std::fs::write("BENCH_density.json", &report.json).expect("write BENCH_density.json");
        println!(
            "wrote BENCH_density.json ({:.2}s{})",
            t0.elapsed().as_secs_f64(),
            if smoke { ", smoke" } else { "" }
        );
        // Scaling guard: the multi-pipeline arm's widest pool must not
        // lose to its single-worker point. Judged after the JSON is
        // written so a failing run still leaves the curve on disk.
        //
        // The verdict uses the drift-cancelling paired gain with a 10%
        // tolerance band: a shared host wobbles individual samples by
        // ±5% even after pairing, while the failure mode this guard
        // exists to catch — worker scaling collapsing into the old
        // inverted curve — showed up as a 28% deficit. Ten percent
        // rejects noise at better than 2 sigma and still flags a real
        // collapse on the first run.
        if let (Some(&(w_lo, lo)), Some(&(w_hi, hi))) =
            (report.multi_curve.first(), report.multi_curve.last())
        {
            let tolerance = lo * 0.10;
            println!(
                "density scaling guard: multi-pipeline goodput \
                 workers={w_lo}: {lo:.1} rec/s, workers={w_hi}: {hi:.1} rec/s \
                 (paired per-round gain {:+.1} rec/s, tolerance -{tolerance:.1})",
                report.widest_paired_gain,
            );
            if report.widest_paired_gain < -tolerance {
                eprintln!(
                    "FAIL: scheduler scaling regressed — workers={w_hi} multi-pipeline \
                     goodput {hi:.1} rec/s vs workers={w_lo} goodput {lo:.1} rec/s, \
                     paired per-round gain {:.1} rec/s is below -{tolerance:.1} \
                     (10% of the single-worker point)",
                    report.widest_paired_gain,
                );
                std::process::exit(1);
            }
        }
    }
    if (json || payload_json || chaos_json || obs_json || density_json || durability_json)
        && id_args.is_empty()
    {
        return;
    }
    let ids: Vec<&str> = if id_args.is_empty() || id_args.contains(&"all") {
        eden_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        id_args
    };
    println!("# Asymmetric Stream Communication — experiment harness\n");
    let overall = Instant::now();
    let mut failed = false;
    for id in ids {
        let t0 = Instant::now();
        match eden_bench::run_experiment(id) {
            Some(tables) => {
                for table in &tables {
                    println!("{table}");
                }
                println!("({id} took {:.2}s)\n", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id: {id} (want e1..e10 or all)");
                failed = true;
            }
        }
    }
    println!("total: {:.2}s", overall.elapsed().as_secs_f64());
    if failed {
        std::process::exit(2);
    }
}
