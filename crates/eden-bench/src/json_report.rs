//! Machine-readable benchmark report — the `--json` mode of the
//! `experiments` binary.
//!
//! Emits `BENCH_pipeline.json` with two sections so the performance
//! trajectory can be tracked across PRs without scraping tables:
//!
//! * `pipelines`: single identity pipelines per discipline — throughput
//!   plus the invocation counts the paper argues about (n+1 vs 2n+2),
//!   and the route-cache hit/miss split.
//! * `contention`: the fast-invocation-plane experiment — eight
//!   concurrent read-only pipelines under a modeled rendezvous cost,
//!   pre-PR shape (single-shard registry, fixed batch) against the full
//!   fast plane (sharded registry, cached routes, adaptive batching).

use std::time::{Duration, Instant};

use eden_core::Value;
use eden_kernel::{Kernel, KernelConfig};
use eden_transput::transform::Identity;
use eden_transput::{ChannelPolicy, Discipline, PipelineSpec};

use crate::runner::DEADLINE;

/// Records per measured pipeline.
const RECORDS: i64 = 2000;
/// Identity filters between source and sink.
const DEPTH: usize = 4;
/// Base batch size (also the adaptive dial's floor).
const BATCH: usize = 4;
/// Adaptive dial ceiling for the fast-plane rows.
const BATCH_MAX: usize = 64;

/// Concurrent pipelines in the contention section.
const CONTENTION_PIPELINES: usize = 8;
/// Records per concurrent pipeline.
const CONTENTION_RECORDS: i64 = 600;
/// Modeled per-invocation rendezvous cost for the contention section.
/// The real Eden's was ~100ms (§6); 2ms keeps the run quick while
/// preserving the regime where the rendezvous dominates the data.
const RENDEZVOUS: Duration = Duration::from_millis(2);
/// Timed samples per contention arm (after one warm-up); the median is
/// reported.
const CONTENTION_SAMPLES: usize = 3;

struct PipelineRow {
    name: &'static str,
    discipline: &'static str,
    batch_max: usize,
    records_out: u64,
    invocations: u64,
    invocations_per_record: f64,
    route_cache_hits: u64,
    route_cache_misses: u64,
    wall_seconds: f64,
    krecords_per_second: f64,
}

fn measure_pipeline(name: &'static str, discipline: Discipline, batch_max: usize) -> PipelineRow {
    let kernel = Kernel::new();
    let mut builder = PipelineSpec::new(discipline)
        .source_vec((0..RECORDS).map(Value::Int).collect())
        .batch(BATCH)
        .adaptive_batch(batch_max)
        .policy(ChannelPolicy::Integer);
    for _ in 0..DEPTH {
        builder = builder.stage(Box::new(Identity));
    }
    let run = builder
        .build(&kernel)
        .expect("pipeline builds")
        .run(DEADLINE)
        .expect("pipeline completes");
    kernel.shutdown();
    assert_eq!(run.records_out, RECORDS as u64, "{name} lost records");
    let secs = run.wall.as_secs_f64();
    PipelineRow {
        name,
        discipline: discipline.label(),
        batch_max,
        records_out: run.records_out,
        invocations: run.metrics.invocations,
        invocations_per_record: run.invocations_per_record(),
        route_cache_hits: run.metrics.route_cache_hits,
        route_cache_misses: run.metrics.route_cache_misses,
        wall_seconds: secs,
        krecords_per_second: if secs > 0.0 {
            run.records_out as f64 / secs / 1000.0
        } else {
            f64::INFINITY
        },
    }
}

/// One end-to-end run of the contention workload; returns the wall time.
fn contention_run(kernel: &Kernel, batch_max: usize) -> Duration {
    let t0 = Instant::now();
    let workers: Vec<_> = (0..CONTENTION_PIPELINES)
        .map(|_| {
            let kernel = kernel.clone();
            std::thread::spawn(move || {
                let run = PipelineSpec::new(Discipline::ReadOnly { read_ahead: 8 })
                    .source_vec((0..CONTENTION_RECORDS).map(Value::Int).collect())
                    .batch(BATCH)
                    .adaptive_batch(batch_max)
                    .stage(Box::new(Identity))
                    .stage(Box::new(Identity))
                    .build(&kernel)
                    .expect("pipeline builds")
                    .run(DEADLINE)
                    .expect("pipeline completes");
                assert_eq!(run.records_out, CONTENTION_RECORDS as u64);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("pipeline thread");
    }
    t0.elapsed()
}

fn contention_arm(config: KernelConfig, batch_max: usize) -> f64 {
    let kernel = Kernel::with_config(config);
    contention_run(&kernel, batch_max); // warm-up
    let mut samples: Vec<f64> = (0..CONTENTION_SAMPLES)
        .map(|_| contention_run(&kernel, batch_max).as_secs_f64())
        .collect();
    kernel.shutdown();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn json_pipeline(row: &PipelineRow) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"discipline\": \"{}\",\n",
            "      \"batch\": {},\n",
            "      \"batch_max\": {},\n",
            "      \"records_out\": {},\n",
            "      \"invocations\": {},\n",
            "      \"invocations_per_record\": {:.4},\n",
            "      \"route_cache_hits\": {},\n",
            "      \"route_cache_misses\": {},\n",
            "      \"wall_seconds\": {:.6},\n",
            "      \"krecords_per_second\": {:.2}\n",
            "    }}"
        ),
        row.name,
        row.discipline,
        BATCH,
        row.batch_max,
        row.records_out,
        row.invocations,
        row.invocations_per_record,
        row.route_cache_hits,
        row.route_cache_misses,
        row.wall_seconds,
        row.krecords_per_second,
    )
}

/// Run the measurements and render the full `BENCH_pipeline.json` text.
pub fn pipeline_report() -> String {
    let rows = [
        measure_pipeline("read-only", Discipline::ReadOnly { read_ahead: 0 }, 0),
        measure_pipeline("read-only-ra8", Discipline::ReadOnly { read_ahead: 8 }, 0),
        measure_pipeline("write-only", Discipline::WriteOnly { push_ahead: 4 }, 0),
        measure_pipeline(
            "conventional",
            Discipline::Conventional { buffer_capacity: 4 },
            0,
        ),
        measure_pipeline(
            "fast-plane",
            Discipline::ReadOnly { read_ahead: 8 },
            BATCH_MAX,
        ),
    ];

    let pre = contention_arm(
        KernelConfig {
            registry_shards: 1,
            invocation_latency: Some(RENDEZVOUS),
            ..KernelConfig::default()
        },
        0,
    );
    let fast = contention_arm(
        KernelConfig {
            invocation_latency: Some(RENDEZVOUS),
            ..KernelConfig::default()
        },
        BATCH_MAX,
    );
    let total = (CONTENTION_PIPELINES as f64) * (CONTENTION_RECORDS as f64);
    let krate = |secs: f64| total / secs / 1000.0;

    let pipelines = rows
        .iter()
        .map(json_pipeline)
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"records\": {records},\n",
            "  \"depth\": {depth},\n",
            "  \"batch\": {batch},\n",
            "  \"pipelines\": [\n{pipelines}\n  ],\n",
            "  \"contention\": {{\n",
            "    \"pipelines\": {cp},\n",
            "    \"records_per_pipeline\": {cr},\n",
            "    \"rendezvous_ms\": {rv},\n",
            "    \"pre_pr_shape\": {{ \"wall_seconds\": {pw:.6}, ",
            "\"krecords_per_second\": {pk:.2} }},\n",
            "    \"fast_plane\": {{ \"wall_seconds\": {fw:.6}, ",
            "\"krecords_per_second\": {fk:.2} }},\n",
            "    \"speedup\": {sp:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        records = RECORDS,
        depth = DEPTH,
        batch = BATCH,
        pipelines = pipelines,
        cp = CONTENTION_PIPELINES,
        cr = CONTENTION_RECORDS,
        rv = RENDEZVOUS.as_millis(),
        pw = pre,
        pk = krate(pre),
        fw = fast,
        fk = krate(fast),
        sp = pre / fast,
    )
}
