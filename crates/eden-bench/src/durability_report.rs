//! Durability benchmark — the `--durability-json` mode of the
//! `experiments` binary (experiment E18).
//!
//! Three arms, all against the log-structured durable backend on the real
//! filing system (`RealFs`, rooted under `target/` so a run leaves no
//! stray state):
//!
//! 1. **Cold-restart recovery.** Populate the log with one checkpoint per
//!    stream (100k tracked, 10k in smoke), drop every handle, and measure
//!    a cold open: the segment replay wall time, then the per-stream
//!    reactivation latency (p50/p99) of invoking every recovered UID on a
//!    fresh kernel seeded from the replayed store.
//! 2. **Fsync cost vs goodput.** The same checkpoint write workload under
//!    each [`FsyncPolicy`] — `Always`, `EveryN(8)`, `EveryN(64)`,
//!    `Interval(2ms)` — reporting stores/second and the fsync count the
//!    group committer actually issued.
//! 3. **Chaos with a durable backend.** The fault-plane chaos arms
//!    (crash + drop faults on the stream operations) rerun with the
//!    kernel's stable store backed by the durable log instead of
//!    memory: recovery reads reactivated state back through real
//!    segment files, and the exactly-once ledger (zero lost, zero
//!    duplicated) must still hold.
//!
//! Everything but wall-clock timing is deterministic: fault schedules are
//! seeded, the record population is fixed, and the backend's version
//! counters make replay order-free.

use std::time::Instant;

use eden_core::{wire, EdenError, Uid, Value};
use eden_kernel::{
    EjectBehavior, EjectContext, FsyncPolicy, Invocation, Kernel, ReplyHandle, StableStore,
};
use eden_transput::RecoveryDiscipline;

use crate::chaos_report::{self, ChaosConfig};

/// Workload knobs for the durability report.
#[derive(Debug)]
pub struct DurabilityConfig {
    /// Passive streams checkpointed for the cold-restart arm.
    pub streams: usize,
    /// Checkpoint writes per fsync-policy goodput arm.
    pub stores: usize,
    /// Writer threads sharing the group committer in the goodput arm.
    pub writers: usize,
    /// Records per chaos arm.
    pub chaos_records: i64,
}

impl DurabilityConfig {
    /// The tracked configuration: the acceptance target of 100k streams.
    pub fn full() -> DurabilityConfig {
        DurabilityConfig {
            streams: 100_000,
            stores: 12_000,
            writers: 8,
            chaos_records: 300,
        }
    }

    /// A CI-sized workload (seconds, not minutes).
    pub fn smoke() -> DurabilityConfig {
        DurabilityConfig {
            streams: 10_000,
            stores: 2_000,
            writers: 8,
            chaos_records: 120,
        }
    }
}

/// A checkpointed stream stand-in: its whole state is the `Value` it was
/// recovered with, served back on `Get`.
struct BenchStream {
    state: Value,
}

impl EjectBehavior for BenchStream {
    fn type_name(&self) -> &'static str {
        "BenchStream"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Get" => reply.reply(Ok(self.state.clone())),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// One stream's checkpoint payload: a small record, like a real stage's
/// position-plus-buffer state.
fn stream_state(i: usize) -> Value {
    Value::record([
        ("seq", Value::Int(i as i64)),
        ("pos", Value::Int((i * 7) as i64)),
        ("tag", Value::str(format!("stream-{i}"))),
    ])
}

/// A scratch directory under `target/` (always inside the repo), fresh per
/// label, removed by the caller when the arm is done.
fn scratch_dir(label: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target")
        .join("durability-bench")
        .join(format!("{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn policy_label(p: FsyncPolicy) -> String {
    match p {
        FsyncPolicy::Always => "always".into(),
        FsyncPolicy::EveryN(n) => format!("every-{n}"),
        FsyncPolicy::Interval(d) => format!("interval-{}ms", d.as_millis()),
    }
}

/// Write `n` checkpoints into `store` from `writers` threads (the group
/// committer coalesces them), returning the wall seconds.
fn populate(store: &StableStore, uids: &[Uid], writers: usize) -> f64 {
    let t0 = Instant::now();
    let per = uids.len().div_ceil(writers.max(1));
    std::thread::scope(|s| {
        for (w, chunk) in uids.chunks(per.max(1)).enumerate() {
            let store = store.clone();
            s.spawn(move || {
                for (j, &uid) in chunk.iter().enumerate() {
                    let state = stream_state(w * per + j);
                    store
                        .store(uid, "BenchStream", wire::encode(&state).into())
                        .expect("durable store");
                }
            });
        }
    });
    store.flush().expect("flush");
    t0.elapsed().as_secs_f64()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct RecoveryArm {
    streams: usize,
    populate_seconds: f64,
    log_bytes: u64,
    segments_live: u64,
    replay_seconds: f64,
    reactivate_all_seconds: f64,
    reactivation_p50_ms: f64,
    reactivation_p99_ms: f64,
}

/// Arm 1: cold-restart recovery of `cfg.streams` passive streams.
fn recovery_arm(cfg: &DurabilityConfig) -> RecoveryArm {
    let dir = scratch_dir("recovery");
    let uids: Vec<Uid> = (0..cfg.streams).map(|_| Uid::fresh()).collect();

    // Populate, then drop every handle: the only survivor is the log.
    let (populate_seconds, log_bytes, segments_live) = {
        let store = StableStore::durable(&dir, FsyncPolicy::EveryN(64)).expect("open store");
        let secs = populate(&store, &uids, cfg.writers);
        let stats = store.stats();
        (secs, stats.log_bytes, stats.segments_live)
    };

    // Cold restart: replay the segments...
    let t0 = Instant::now();
    let store = StableStore::durable(&dir, FsyncPolicy::EveryN(64)).expect("reopen store");
    let replay_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(store.len(), cfg.streams, "replay must recover every stream");

    // ...seed a fresh kernel with the recovered store, and reactivate
    // every stream by invoking it (activation-on-invocation, §1).
    let kernel = Kernel::builder().stable_store(store).build();
    kernel.register_type("BenchStream", |state| {
        let state = state.ok_or_else(|| {
            EdenError::Application("BenchStream reactivates from its checkpoint".into())
        })?;
        Ok(Box::new(BenchStream { state }))
    });
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(uids.len());
    let t0 = Instant::now();
    for (i, &uid) in uids.iter().enumerate() {
        let t = Instant::now();
        let got = kernel
            .invoke(uid, "Get", Value::Unit)
            .wait()
            .expect("reactivate stream");
        latencies_ms.push(t.elapsed().as_secs_f64() * 1000.0);
        if i % (cfg.streams / 4).max(1) == 0 {
            assert_eq!(got, stream_state(i), "recovered state must be exact");
        }
    }
    let reactivate_all_seconds = t0.elapsed().as_secs_f64();
    let m = kernel.metrics().snapshot();
    assert!(
        m.reactivations >= uids.len() as u64,
        "every invocation must reactivate a passive stream"
    );
    kernel.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    latencies_ms.sort_by(f64::total_cmp);
    RecoveryArm {
        streams: cfg.streams,
        populate_seconds,
        log_bytes,
        segments_live,
        replay_seconds,
        reactivate_all_seconds,
        reactivation_p50_ms: percentile(&latencies_ms, 0.50),
        reactivation_p99_ms: percentile(&latencies_ms, 0.99),
    }
}

struct GoodputArm {
    policy: String,
    stores: usize,
    wall_seconds: f64,
    stores_per_second: f64,
    fsyncs: u64,
}

/// Arm 2: checkpoint goodput under each fsync policy.
fn goodput_arm(policy: FsyncPolicy, cfg: &DurabilityConfig) -> GoodputArm {
    let label = policy_label(policy);
    let dir = scratch_dir(&format!("goodput-{label}"));
    let uids: Vec<Uid> = (0..cfg.stores).map(|_| Uid::fresh()).collect();
    let store = StableStore::durable(&dir, policy).expect("open store");
    let wall_seconds = populate(&store, &uids, cfg.writers);
    let stats = store.stats();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    GoodputArm {
        policy: label,
        stores: cfg.stores,
        wall_seconds,
        stores_per_second: cfg.stores as f64 / wall_seconds,
        fsyncs: stats.fsyncs,
    }
}

/// Arm 3: the chaos workload on a kernel whose stable store is durable.
fn durable_chaos(cfg: &DurabilityConfig) -> Vec<String> {
    let chaos_cfg = ChaosConfig {
        records: cfg.chaos_records,
        batch: 5,
        timeout: std::time::Duration::from_secs(120),
    };
    let arms = [
        (RecoveryDiscipline::ReadOnly, "read-only"),
        (RecoveryDiscipline::WriteOnly, "write-only"),
        (RecoveryDiscipline::Conventional, "conventional"),
    ];
    let mut out = Vec::new();
    for (discipline, label) in arms {
        let dir = scratch_dir(&format!("chaos-{label}"));
        let store = StableStore::durable(&dir, FsyncPolicy::EveryN(8)).expect("open store");
        let kernel = Kernel::builder().stable_store(store).build();
        let arm = chaos_report::run_arm_on(kernel, discipline, label, 0.01, &chaos_cfg);
        assert_eq!(
            (arm.lost, arm.duplicated),
            (0, 0),
            "durable chaos arm {label}: exactly-once must hold"
        );
        out.push(chaos_report::json_arm(&arm));
        let _ = std::fs::remove_dir_all(&dir);
    }
    out
}

/// Run the durability measurement and render `BENCH_durability.json`.
pub fn durability_report(cfg: &DurabilityConfig) -> String {
    let recovery = recovery_arm(cfg);
    let policies = [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(8),
        FsyncPolicy::EveryN(64),
        FsyncPolicy::Interval(std::time::Duration::from_millis(2)),
    ];
    let goodput: Vec<GoodputArm> = policies.iter().map(|&p| goodput_arm(p, cfg)).collect();
    let chaos = durable_chaos(cfg);

    let goodput_json = goodput
        .iter()
        .map(|g| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"fsync_policy\": \"{}\",\n",
                    "      \"stores\": {},\n",
                    "      \"wall_seconds\": {:.6},\n",
                    "      \"stores_per_second\": {:.1},\n",
                    "      \"fsyncs\": {}\n",
                    "    }}"
                ),
                g.policy, g.stores, g.wall_seconds, g.stores_per_second, g.fsyncs
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"durability\",\n",
            "  \"backend\": \"log-structured segments, group commit, RealFs\",\n",
            "  \"cold_restart\": {{\n",
            "    \"streams\": {},\n",
            "    \"populate_seconds\": {:.6},\n",
            "    \"log_bytes\": {},\n",
            "    \"segments_live\": {},\n",
            "    \"replay_wall_seconds\": {:.6},\n",
            "    \"reactivate_all_wall_seconds\": {:.6},\n",
            "    \"reactivation_p50_ms\": {:.4},\n",
            "    \"reactivation_p99_ms\": {:.4}\n",
            "  }},\n",
            "  \"fsync_goodput\": [\n{}\n  ],\n",
            "  \"durable_chaos_fault_rate\": 0.01,\n",
            "  \"durable_chaos\": [\n{}\n  ]\n",
            "}}\n"
        ),
        recovery.streams,
        recovery.populate_seconds,
        recovery.log_bytes,
        recovery.segments_live,
        recovery.replay_seconds,
        recovery.reactivate_all_seconds,
        recovery.reactivation_p50_ms,
        recovery.reactivation_p99_ms,
        goodput_json,
        chaos.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_restart_arm_recovers_a_small_population() {
        let cfg = DurabilityConfig {
            streams: 200,
            stores: 50,
            writers: 4,
            chaos_records: 0,
        };
        let arm = recovery_arm(&cfg);
        assert_eq!(arm.streams, 200);
        assert!(arm.replay_seconds >= 0.0);
        assert!(arm.reactivation_p99_ms >= arm.reactivation_p50_ms);
        assert!(arm.log_bytes > 0);
    }

    #[test]
    fn goodput_arm_counts_fsyncs_per_policy() {
        let cfg = DurabilityConfig {
            streams: 0,
            stores: 300,
            writers: 4,
            chaos_records: 0,
        };
        let always = goodput_arm(FsyncPolicy::Always, &cfg);
        let lazy = goodput_arm(FsyncPolicy::EveryN(64), &cfg);
        assert!(always.fsyncs > lazy.fsyncs, "Always must fsync more");
        assert!(always.stores_per_second > 0.0);
    }
}
