//! Chaos benchmark — the `--chaos-json` mode of the `experiments` binary.
//!
//! Runs the recoverable pipeline of every discipline under injected fault
//! rates of 0%, 0.1%, 1% and 5% on the stream operations (Transfer and
//! Write), split evenly between crash faults (the target Eject fail-stops
//! and must be reactivated from its checkpoint) and drop faults (the
//! invocation vanishes and the retry policy re-sends it). For each arm it
//! reports goodput (records through the complete pipeline per wall-clock
//! second), the fault-plane counters, the lost/duplicated record counts
//! (both must be zero — recovery is exactly-once, not best-effort), and
//! the p50/p99 recovery latency: the time from a crash fault firing to the
//! kernel reactivating an Eject from stable storage.
//!
//! Everything is deterministic per (discipline, fault rate) pair except
//! wall-clock timing: the fault schedule derives from a fixed seed, so a
//! rerun injects byte-for-byte the same faults.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use eden_core::{Value};
use eden_kernel::{FaultKind, FaultPlan, FaultRule, Kernel};
use eden_transput::transform::{map_fn, Transform};
use eden_transput::{
    install_recovery, run_recoverable_pipeline, RecoveryDiscipline, TransformRegistry,
};

/// Fault rates measured per arm (probability per stream invocation).
pub const FAULT_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

/// The three disciplines, with their report labels.
const DISCIPLINES: [(RecoveryDiscipline, &str); 3] = [
    (RecoveryDiscipline::ReadOnly, "read-only"),
    (RecoveryDiscipline::WriteOnly, "write-only"),
    (RecoveryDiscipline::Conventional, "conventional"),
];

/// Workload knobs for the chaos report.
#[derive(Debug)]
pub struct ChaosConfig {
    /// Records pushed through each pipeline arm.
    pub records: i64,
    /// Stream batch size.
    pub batch: usize,
    /// Per-arm deadline.
    pub timeout: Duration,
}

impl ChaosConfig {
    /// The tracked configuration: enough records that the 0.1% arm still
    /// sees faults.
    pub fn full() -> ChaosConfig {
        ChaosConfig {
            records: 600,
            batch: 5,
            timeout: Duration::from_secs(120),
        }
    }

    /// A CI-sized workload (seconds, not minutes).
    pub fn smoke() -> ChaosConfig {
        ChaosConfig {
            records: 120,
            batch: 5,
            timeout: Duration::from_secs(60),
        }
    }
}

fn double() -> Box<dyn Transform> {
    Box::new(map_fn("double", |v| Value::Int(v.as_int().unwrap() * 2)))
}

fn inc() -> Box<dyn Transform> {
    Box::new(map_fn("inc", |v| Value::Int(v.as_int().unwrap() + 1)))
}

fn registry() -> TransformRegistry {
    TransformRegistry::new(&[("double", double), ("inc", inc)])
}

fn expected(records: i64) -> Vec<Value> {
    (0..records).map(|i| Value::Int(i * 2 + 1)).collect()
}

/// The plan for one arm: crash and drop faults, each at `rate`, on both
/// stream operations. Seeded so each (discipline, rate) pair replays the
/// same schedule on every run.
fn plan(rate: f64, seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule(FaultRule::new(FaultKind::CrashTarget).on_op("Transfer").with_probability(rate))
        .rule(FaultRule::new(FaultKind::CrashTarget).on_op("Write").with_probability(rate))
        .rule(FaultRule::new(FaultKind::Drop).on_op("Transfer").with_probability(rate))
        .rule(FaultRule::new(FaultKind::Drop).on_op("Write").with_probability(rate))
}

pub(crate) struct ChaosArm {
    pub(crate) discipline: &'static str,
    pub(crate) fault_rate: f64,
    pub(crate) records_out: usize,
    pub(crate) lost: usize,
    pub(crate) duplicated: usize,
    pub(crate) wall_seconds: f64,
    pub(crate) goodput: f64,
    pub(crate) faults_injected: u64,
    pub(crate) crashes: u64,
    pub(crate) retries: u64,
    pub(crate) reactivations: u64,
    pub(crate) recovered_streams: u64,
    pub(crate) recovery_p50_ms: f64,
    pub(crate) recovery_p99_ms: f64,
    pub(crate) recovery_samples: usize,
}

/// Multiset difference: how many of `want` never arrived (lost) and how
/// many arrivals exceed their wanted multiplicity (duplicated).
fn lost_and_duplicated(want: &[Value], got: &[Value]) -> (usize, usize) {
    use std::collections::HashMap;
    let mut counts: HashMap<String, i64> = HashMap::new();
    for v in want {
        *counts.entry(format!("{v:?}")).or_default() += 1;
    }
    let mut duplicated = 0usize;
    for v in got {
        let c = counts.entry(format!("{v:?}")).or_default();
        *c -= 1;
        if *c < 0 {
            duplicated += 1;
        }
    }
    let lost = counts.values().filter(|c| **c > 0).sum::<i64>() as usize;
    (lost, duplicated)
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// Run one (discipline, fault rate) arm and measure it.
///
/// Recovery latency is sampled from outside the kernel: while the
/// pipeline runs on a helper thread, the driver polls the metrics
/// counters; each observed crash starts a clock, each observed
/// reactivation stops the oldest outstanding one. The poll interval
/// (200µs) bounds the measurement error well below the latencies being
/// measured (retry backoff starts at 1ms).
fn run_arm(
    discipline: RecoveryDiscipline,
    label: &'static str,
    rate: f64,
    cfg: &ChaosConfig,
) -> ChaosArm {
    run_arm_on(Kernel::new(), discipline, label, rate, cfg)
}

/// Run one arm on a caller-built kernel — the durability report passes a
/// kernel whose stable store is the log-structured durable backend, so the
/// same chaos workload exercises checkpoint-before-reply against real
/// group-committed storage.
pub(crate) fn run_arm_on(
    kernel: Kernel,
    discipline: RecoveryDiscipline,
    label: &'static str,
    rate: f64,
    cfg: &ChaosConfig,
) -> ChaosArm {
    let reg = registry();
    install_recovery(&kernel, &reg);
    if rate > 0.0 {
        let seed = 0xc8a0_5000 + (discipline as u64) * 101 + (rate * 10_000.0) as u64;
        kernel.install_faults(plan(rate, seed));
    }
    let base = kernel.metrics().snapshot();

    let items: Vec<Value> = (0..cfg.records).map(Value::Int).collect();
    let (tx, rx) = mpsc::channel();
    let worker = {
        let kernel = kernel.clone();
        let timeout = cfg.timeout;
        let batch = cfg.batch;
        let reg = registry();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let run =
                run_recoverable_pipeline(&kernel, discipline, items, &["double", "inc"], &reg, batch, timeout);
            let wall = t0.elapsed();
            let _ = tx.send(());
            (run, wall)
        })
    };

    // Sample crash→reactivation latency until the pipeline finishes.
    let mut pending_crashes: Vec<Instant> = Vec::new();
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut seen_crashes = base.crashes;
    let mut seen_reactivations = base.reactivations;
    loop {
        let s = kernel.metrics().snapshot();
        let now = Instant::now();
        for _ in seen_crashes..s.crashes {
            pending_crashes.push(now);
        }
        seen_crashes = s.crashes;
        for _ in seen_reactivations..s.reactivations {
            if !pending_crashes.is_empty() {
                let started = pending_crashes.remove(0);
                latencies_ms.push((now - started).as_secs_f64() * 1000.0);
            }
        }
        seen_reactivations = s.reactivations;
        match rx.recv_timeout(Duration::from_micros(200)) {
            Ok(()) => break,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    let (run, wall) = worker.join().expect("chaos arm thread");
    let run = run.unwrap_or_else(|e| panic!("chaos arm {label} at rate {rate} failed: {e}"));
    let m = kernel.metrics().snapshot().since(&base);
    kernel.shutdown();

    let want = expected(cfg.records);
    let (lost, duplicated) = lost_and_duplicated(&want, &run.output);
    latencies_ms.sort_by(f64::total_cmp);
    let secs = wall.as_secs_f64();
    ChaosArm {
        discipline: label,
        fault_rate: rate,
        records_out: run.output.len(),
        lost,
        duplicated,
        wall_seconds: secs,
        goodput: cfg.records as f64 / secs,
        faults_injected: m.faults_injected,
        crashes: m.crashes,
        retries: m.retries,
        reactivations: m.reactivations,
        recovered_streams: m.recovered_streams,
        recovery_p50_ms: percentile(&latencies_ms, 0.50),
        recovery_p99_ms: percentile(&latencies_ms, 0.99),
        recovery_samples: latencies_ms.len(),
    }
}

pub(crate) fn json_arm(a: &ChaosArm) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"discipline\": \"{}\",\n",
            "      \"fault_rate\": {},\n",
            "      \"records_out\": {},\n",
            "      \"lost_records\": {},\n",
            "      \"duplicated_records\": {},\n",
            "      \"wall_seconds\": {:.6},\n",
            "      \"goodput_records_per_second\": {:.2},\n",
            "      \"faults_injected\": {},\n",
            "      \"crashes\": {},\n",
            "      \"retries\": {},\n",
            "      \"reactivations\": {},\n",
            "      \"recovered_streams\": {},\n",
            "      \"recovery_latency_p50_ms\": {:.3},\n",
            "      \"recovery_latency_p99_ms\": {:.3},\n",
            "      \"recovery_samples\": {}\n",
            "    }}"
        ),
        a.discipline,
        a.fault_rate,
        a.records_out,
        a.lost,
        a.duplicated,
        a.wall_seconds,
        a.goodput,
        a.faults_injected,
        a.crashes,
        a.retries,
        a.reactivations,
        a.recovered_streams,
        a.recovery_p50_ms,
        a.recovery_p99_ms,
        a.recovery_samples,
    )
}

/// Run the chaos measurement and render the full `BENCH_chaos.json` text.
pub fn chaos_report(cfg: &ChaosConfig) -> String {
    let mut arms = Vec::new();
    for (discipline, label) in DISCIPLINES {
        for rate in FAULT_RATES {
            arms.push(run_arm(discipline, label, rate, cfg));
        }
    }
    let body = arms.iter().map(json_arm).collect::<Vec<_>>().join(",\n");
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"chaos\",\n",
            "  \"records_per_arm\": {},\n",
            "  \"batch\": {},\n",
            "  \"fault_kinds\": \"crash+drop on Transfer/Write, each at fault_rate\",\n",
            "  \"arms\": [\n{}\n  ]\n",
            "}}\n"
        ),
        cfg.records, cfg.batch, body
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_diff_counts_lost_and_duplicated() {
        let want = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let got = vec![Value::Int(1), Value::Int(1), Value::Int(3)];
        assert_eq!(lost_and_duplicated(&want, &got), (1, 1));
        assert_eq!(lost_and_duplicated(&want, &want.clone()), (0, 0));
    }

    #[test]
    fn percentiles_of_empty_and_singleton() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[4.0], 0.5), 4.0);
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
    }

    #[test]
    fn one_chaos_arm_is_exactly_once() {
        // A single faulted arm end to end: the acceptance property — zero
        // lost, zero duplicated — plus live fault-plane counters.
        let cfg = ChaosConfig {
            records: 60,
            batch: 5,
            timeout: Duration::from_secs(60),
        };
        let arm = run_arm(RecoveryDiscipline::ReadOnly, "read-only", 0.01, &cfg);
        assert_eq!(arm.lost, 0);
        assert_eq!(arm.duplicated, 0);
        assert_eq!(arm.records_out, 60);
        assert!(arm.goodput > 0.0);
    }
}
