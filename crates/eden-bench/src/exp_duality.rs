//! Experiments E4–E6: the fan-in/fan-out duality, report streams
//! (Figures 3 and 4), and capability-channel security (§5).

use std::time::Duration;

use eden_core::op::ops;
use eden_core::{EdenError, Uid, Value};
use eden_filters::SpellCheck;
use eden_kernel::Kernel;
use eden_transput::collector::Collector;
use eden_transput::protocol::{
    Batch, ChannelId, GetChannelRequest, TransferRequest, REPORT_NAME,
};
use eden_transput::read_only::{FanInMode, InputPort, PullFilterConfig, PullFilterEject};
use eden_transput::sink::{AcceptorSinkEject, SinkEject};
use eden_transput::source::{SourceEject, VecSource};
use eden_transput::transform::Identity;
use eden_transput::write_only::{OutputPort, OutputWiring, PushFilterEject, PushSourceEject};
use eden_transput::{ChannelPolicy, Discipline};

use crate::runner::run_pipeline;
use crate::table::Table;
use crate::workloads;

const WAIT: Duration = Duration::from_secs(60);

fn int_source(kernel: &Kernel, range: std::ops::Range<i64>) -> Uid {
    kernel
        .spawn(Box::new(SourceEject::new(Box::new(VecSource::new(
            range.map(Value::Int).collect(),
        )))))
        .expect("spawn source")
}

/// E4 — the duality table of §5, measured.
pub fn e4() -> Vec<Table> {
    let mut t = Table::new(
        "E4: fan-in / fan-out by discipline (m = 4 peers, 40 records each)",
        &["configuration", "outcome", "records per peer", "invocations"],
    );
    let kernel = Kernel::new();
    let m = 4usize;
    let per = 40i64;

    // Read-only fan-in: one filter, m input UIDs.
    {
        let before = kernel.metrics().snapshot();
        let inputs: Vec<InputPort> = (0..m)
            .map(|i| InputPort::primary(int_source(&kernel, (i as i64 * 100)..(i as i64 * 100 + per))))
            .collect();
        let filter = kernel
            .spawn(Box::new(PullFilterEject::with_config(
                Box::new(Identity),
                inputs,
                PullFilterConfig {
                    fan_in: FanInMode::RoundRobin,
                    batch: 8,
                    ..Default::default()
                },
            )))
            .expect("filter");
        let c = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::new(filter, 8, c.clone())))
            .expect("sink");
        let merged = c.wait_done(WAIT).expect("merge completes");
        let delta = kernel.metrics().snapshot().since(&before);
        assert_eq!(merged.len(), m * per as usize);
        t.row([
            "read-only fan-IN (m sources, 1 filter)".to_string(),
            "merged, ordered round-robin".to_string(),
            format!("{} total", merged.len()),
            delta.invocations.to_string(),
        ]);
    }

    // Read-only fan-out attempt without channels: the stream splits.
    {
        let source = int_source(&kernel, 0..(per * m as i64));
        let filter = kernel
            .spawn(Box::new(PullFilterEject::new(
                Box::new(Identity),
                InputPort::primary(source),
            )))
            .expect("filter");
        let collectors: Vec<Collector> = (0..m).map(|_| Collector::new()).collect();
        for c in &collectors {
            kernel
                .spawn(Box::new(SinkEject::new(filter, 8, c.clone())))
                .expect("sink");
        }
        let counts: Vec<usize> = collectors
            .iter()
            .map(|c| c.wait_done(WAIT).expect("done").len())
            .collect();
        let total: usize = counts.iter().sum();
        assert_eq!(total, (per * m as i64) as usize);
        t.row([
            "read-only fan-OUT, no channels (m sinks, 1 channel)".to_string(),
            "SPLIT — each record reaches exactly one sink (§5)".to_string(),
            format!("{counts:?}"),
            "-".to_string(),
        ]);
    }

    // Read-only fan-out with channel identifiers (Tee).
    {
        let source = int_source(&kernel, 0..per);
        let filter = kernel
            .spawn(Box::new(PullFilterEject::new(
                Box::new(eden_filters::Tee),
                InputPort::primary(source),
            )))
            .expect("filter");
        let copy_id = ChannelId::try_from(
            &kernel
                .invoke(
                    filter,
                    ops::GET_CHANNEL,
                    GetChannelRequest {
                        name: eden_filters::COPY_NAME.to_owned(),
                    }
                    .to_value(),
                ).wait()
                .expect("get channel"),
        )
        .expect("channel id");
        let main = Collector::new();
        let copy = Collector::new();
        kernel
            .spawn(Box::new(SinkEject::on_channel(filter, copy_id, 8, copy.clone())))
            .expect("copy sink");
        kernel
            .spawn(Box::new(SinkEject::new(filter, 8, main.clone())))
            .expect("main sink");
        let a = main.wait_done(WAIT).expect("main").len();
        let b = copy.wait_done(WAIT).expect("copy").len();
        assert_eq!(a, b);
        t.row([
            "read-only fan-OUT via channel ids (Figure 4 machinery)".to_string(),
            "DUPLICATED — every sink sees the full stream".to_string(),
            format!("[{a}, {b}]"),
            "-".to_string(),
        ]);
    }

    // Write-only fan-out: m destinations on one channel.
    {
        let before = kernel.metrics().snapshot();
        let collectors: Vec<Collector> = (0..m).map(|_| Collector::new()).collect();
        let mut wiring = OutputWiring::default();
        for c in &collectors {
            let sink = kernel
                .spawn(Box::new(AcceptorSinkEject::new(c.clone())))
                .expect("acceptor");
            wiring.add(eden_transput::protocol::OUTPUT_NAME, OutputPort::primary(sink));
        }
        let filter = kernel
            .spawn(Box::new(PushFilterEject::new(Box::new(Identity), wiring)))
            .expect("push filter");
        let source = kernel
            .spawn(Box::new(PushSourceEject::new(
                Box::new(VecSource::new((0..per).map(Value::Int).collect())),
                OutputWiring::primary_to(OutputPort::primary(filter)),
                8,
            )))
            .expect("push source");
        kernel
            .invoke(source, "Start", Value::Unit).wait()
            .expect("start");
        let counts: Vec<usize> = collectors
            .iter()
            .map(|c| c.wait_done(WAIT).expect("done").len())
            .collect();
        let delta = kernel.metrics().snapshot().since(&before);
        assert!(counts.iter().all(|&c| c == per as usize));
        t.row([
            "write-only fan-OUT (1 filter, m sinks)".to_string(),
            "DUPLICATED — natural in the dual (§5)".to_string(),
            format!("{counts:?}"),
            delta.invocations.to_string(),
        ]);
    }

    // Write-only fan-in: indistinguishable writers.
    {
        let c = Collector::new();
        let sink = kernel
            .spawn(Box::new(AcceptorSinkEject::new(c.clone())))
            .expect("acceptor");
        let mut pendings = Vec::new();
        for i in 0..m as i64 {
            let src = kernel
                .spawn(Box::new(PushSourceEject::new(
                    Box::new(VecSource::new(
                        ((i * 100)..(i * 100 + per)).map(Value::Int).collect(),
                    )),
                    OutputWiring::primary_to(OutputPort::primary(sink)),
                    8,
                )))
                .expect("push source");
            pendings.push(kernel.invoke(src, "Start", Value::Unit));
        }
        let got = c.wait_done(WAIT).expect("done");
        for p in pendings {
            let _ = p.wait_timeout(WAIT);
        }
        t.row([
            "write-only fan-IN attempt (m writers, 1 acceptor)".to_string(),
            "UNATTRIBUTABLE MERGE — first end closes all (§5)".to_string(),
            format!("{} arrived before first end", got.len()),
            "-".to_string(),
        ]);
    }
    kernel.shutdown();
    vec![t]
}

/// E5 — Figure 3 (write-only + pushed reports) vs Figure 4 (read-only +
/// channel identifiers), on the same spell-checking workload.
pub fn e5() -> Vec<Table> {
    let mut t = Table::new(
        "E5: report streams — Figure 3 vs Figure 4 (500 prose lines, 1 spell-check filter)",
        &[
            "configuration",
            "entities",
            "invocations",
            "deferred replies",
            "report lines",
        ],
    );
    let kernel = Kernel::new();
    let configs: [(&str, Discipline, ChannelPolicy); 4] = [
        (
            "Figure 3: write-only, report pushed to extra acceptor",
            Discipline::WriteOnly { push_ahead: 0 },
            ChannelPolicy::Integer,
        ),
        (
            "Figure 4: read-only, Read(Report) via integer channel id",
            Discipline::ReadOnly { read_ahead: 0 },
            ChannelPolicy::Integer,
        ),
        (
            "Figure 4 + capability channel identifiers",
            Discipline::ReadOnly { read_ahead: 0 },
            ChannelPolicy::Capability,
        ),
        (
            "conventional: report via its own pipe + reader",
            Discipline::Conventional { buffer_capacity: 16 },
            ChannelPolicy::Integer,
        ),
    ];
    let mut report_lines: Vec<Vec<Value>> = Vec::new();
    for (label, discipline, policy) in configs {
        let run = run_pipeline(
            &kernel,
            discipline,
            workloads::prose(500, 5, 77),
            vec![Box::new(SpellCheck::new(workloads::dictionary()))],
            8,
            policy,
            &[(0, REPORT_NAME)],
        );
        let report = run.report(0, REPORT_NAME).unwrap_or(&[]).to_vec();
        t.row([
            label.to_string(),
            run.entities.to_string(),
            run.metrics.invocations.to_string(),
            run.metrics.deferred_replies.to_string(),
            report.len().to_string(),
        ]);
        report_lines.push(report);
    }
    kernel.shutdown();
    // Every configuration reports the same misspellings.
    for pair in report_lines.windows(2) {
        assert_eq!(pair[0], pair[1], "report streams must agree across figures");
    }
    t.note("all four configurations produce byte-identical report windows.");
    t.note("conventional needs extra passive-buffer Ejects; Figure 4 needs none.");
    vec![t]
}

/// E6 — capability channels: who can read what, and at what setup cost.
pub fn e6() -> Vec<Table> {
    let mut t = Table::new(
        "E6: channel access control (§5)",
        &["policy", "access attempt", "result"],
    );
    let kernel = Kernel::new();
    for policy in [ChannelPolicy::Integer, ChannelPolicy::Capability] {
        let source = int_source(&kernel, 0..10);
        let filter = kernel
            .spawn(Box::new(PullFilterEject::with_config(
                Box::new(SpellCheck::new(["known"])),
                vec![InputPort::primary(source)],
                PullFilterConfig {
                    policy,
                    ..Default::default()
                },
            )))
            .expect("filter");
        let policy_name = match policy {
            ChannelPolicy::Integer => "integer",
            ChannelPolicy::Capability => "capability",
        };
        let attempt = |channel: ChannelId| -> String {
            match kernel
                .invoke(
                    filter,
                    ops::TRANSFER,
                    TransferRequest { channel, max: 4, pos: None }.to_value(),
                ).wait()
                .and_then(Batch::from_value)
            {
                Ok(_) => "GRANTED".to_string(),
                Err(EdenError::NoSuchChannel(_)) => "refused (no such channel)".to_string(),
                Err(EdenError::NotAuthorized(_)) => "refused (not authorized)".to_string(),
                Err(e) => format!("refused ({e})"),
            }
        };
        t.row([policy_name.to_string(), "guessed integer 0".into(), attempt(ChannelId::Number(0))]);
        t.row([policy_name.to_string(), "guessed integer 1 (the report stream)".into(), attempt(ChannelId::Number(1))]);
        t.row([
            policy_name.to_string(),
            "forged capability UID".into(),
            attempt(ChannelId::Cap(Uid::fresh())),
        ]);
        // The honest connection protocol: obtain both identifiers via
        // GetChannel, drain the primary (report data only materialises
        // under primary demand — lazy transput), then read the report.
        let get = |name: &str| -> ChannelId {
            kernel
                .invoke(
                    filter,
                    ops::GET_CHANNEL,
                    GetChannelRequest {
                        name: name.to_owned(),
                    }
                    .to_value(),
                ).wait()
                .and_then(|v| ChannelId::try_from(&v))
                .expect("GetChannel")
        };
        let output = get(eden_transput::protocol::OUTPUT_NAME);
        loop {
            let batch = kernel
                .invoke(
                    filter,
                    ops::TRANSFER,
                    TransferRequest {
                        channel: output,
                        max: 16,
                        pos: None,
                    }
                    .to_value(),
                ).wait()
                .and_then(Batch::from_value)
                .expect("drain primary");
            if batch.end {
                break;
            }
        }
        t.row([
            policy_name.to_string(),
            "identifier granted via GetChannel".into(),
            attempt(get(REPORT_NAME)),
        ]);
    }
    kernel.shutdown();
    t.note("setup cost of the capability scheme: one GetChannel invocation per (reader, channel) pair.");
    vec![t]
}
