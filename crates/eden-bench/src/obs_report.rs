//! The observability-plane benchmark — `--obs-json` mode, `BENCH_obs.json`.
//!
//! The observability plane's contract is that it is affordable: span
//! recording and per-stage histograms sharded enough that turning them on
//! costs a few percent on a depth-3 identity pipeline, and compiled-out
//! enough (one `Option` check on the invoke path) that leaving them off
//! costs nothing measurable. This report quantifies both claims with three
//! arms over the same workload:
//!
//! * `baseline`: a kernel with `ObsConfig::off()` (the default);
//! * `histograms`: per-stage latency histograms on, spans off;
//! * `spans_on`: `ObsConfig::full()` — spans and histograms.
//!
//! The measurement is *paired*: every round runs the three arms
//! back-to-back, so slow stretches of machine time (a background compile,
//! a thermal dip) hit the round's baseline and its instrumented arms
//! alike, and the per-round wall ratio cancels the drift. `overhead_pct`
//! in the JSON is the median of the per-round ratios over `samples`
//! rounds (a warm-up round is discarded); `wall_seconds_best` per arm is
//! the best observed wall, the stable floor estimator for a fixed
//! workload. The acceptance bar is < 5 % for spans-on at full size. The
//! number is recorded rather than asserted — CI machines are noisy — but
//! the structural facts (spans recorded ≥ the analytic invocation count,
//! stage histograms populated, output intact) are asserted on every run.

use std::time::Instant;

use eden_core::Value;
use eden_kernel::{Kernel, KernelConfig, ObsConfig};
use eden_transput::Discipline;

use crate::runner::run_identity;

/// Workload dimensions; `smoke()` keeps CI runs to well under a second.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfigDims {
    /// Records per run.
    pub records: usize,
    /// Identity stages in the pipeline.
    pub depth: usize,
    /// Records per Transfer.
    pub batch: usize,
    /// Measured samples per arm (a warm-up run precedes them).
    pub samples: usize,
}

impl ObsConfigDims {
    /// The full-size configuration: enough batch rounds that the data
    /// phase dominates pipeline setup and teardown.
    pub fn full() -> ObsConfigDims {
        ObsConfigDims {
            records: 40_000,
            depth: 3,
            batch: 16,
            samples: 18,
        }
    }

    /// The smoke configuration: same shape, small enough for CI.
    pub fn smoke() -> ObsConfigDims {
        ObsConfigDims {
            records: 2_000,
            depth: 3,
            batch: 16,
            samples: 3,
        }
    }
}

/// One measured arm: best-of-N wall seconds plus the observability
/// counters from the final sample.
struct ArmStats {
    wall_seconds_best: f64,
    spans_recorded: u64,
    spans_dropped: u64,
    stages_seen: usize,
}

impl ArmStats {
    fn new() -> ArmStats {
        ArmStats {
            wall_seconds_best: f64::INFINITY,
            spans_recorded: 0,
            spans_dropped: 0,
            stages_seen: 0,
        }
    }
}

/// One timed pipeline run under `obs`; returns the wall seconds and folds
/// the best wall into `arm` unless this is the warm-up pass.
fn run_once(cfg: &ObsConfigDims, obs: ObsConfig, arm: &mut ArmStats, warm_up: bool) -> f64 {
    let kernel = Kernel::with_config(KernelConfig {
        observability: obs,
        ..Default::default()
    });
    let input: Vec<Value> = (0..cfg.records as i64).map(Value::Int).collect();
    let t0 = Instant::now();
    let run = run_identity(
        &kernel,
        Discipline::ReadOnly { read_ahead: 0 },
        input,
        cfg.depth,
        cfg.batch,
    );
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        run.records_out, cfg.records as u64,
        "observability must not perturb the stream"
    );
    if !warm_up {
        arm.wall_seconds_best = arm.wall_seconds_best.min(wall);
    }
    let snap = kernel.metrics_snapshot();
    arm.spans_recorded = snap.spans_recorded;
    arm.spans_dropped = snap.spans_dropped;
    arm.stages_seen = snap.stages.len();
    kernel.shutdown();
    wall
}

/// The median of the per-round overhead ratios, as a percentage.
fn median_overhead_pct(ratios: &mut [f64]) -> f64 {
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

fn json_arm(arm: &ArmStats) -> String {
    format!(
        concat!(
            "{{ \"wall_seconds_best\": {:.6}, \"spans_recorded\": {}, ",
            "\"spans_dropped\": {}, \"stages_seen\": {} }}"
        ),
        arm.wall_seconds_best, arm.spans_recorded, arm.spans_dropped, arm.stages_seen,
    )
}

/// Run the observability-plane measurements and render `BENCH_obs.json`.
///
/// Panics if the structural invariants fail: the baseline arm must record
/// no spans, and the spans-on arm must record at least the analytic
/// `(depth + 1) * ceil(records / batch)` invocation spans of the read-only
/// data phase.
pub fn obs_report(cfg: &ObsConfigDims) -> String {
    let hist_only = ObsConfig {
        histograms: true,
        ..ObsConfig::off()
    };
    let configs = [ObsConfig::off(), hist_only, ObsConfig::full()];
    let mut stats = [ArmStats::new(), ArmStats::new(), ArmStats::new()];
    let mut hist_ratios = Vec::with_capacity(cfg.samples);
    let mut span_ratios = Vec::with_capacity(cfg.samples);
    for sample in 0..cfg.samples + 1 {
        let warm_up = sample == 0;
        let mut walls = [0.0f64; 3];
        // Rotate the order within the round: the position of a run inside
        // a round measurably shifts its wall (allocator and scheduler
        // state carried over from the previous run), so each arm must
        // occupy each position equally often for the bias to cancel.
        for k in 0..3 {
            let j = (sample + k) % 3;
            walls[j] = run_once(cfg, configs[j], &mut stats[j], warm_up);
        }
        if !warm_up {
            hist_ratios.push(walls[1] / walls[0].max(f64::EPSILON));
            span_ratios.push(walls[2] / walls[0].max(f64::EPSILON));
        }
    }
    let [baseline, histograms, spans_on] = stats;

    assert_eq!(
        baseline.spans_recorded, 0,
        "the off arm must not record spans"
    );
    // n+1 hops per batch round, plus end-of-stream detection rounds; the
    // lower bound is the analytic data-phase count.
    let analytic = ((cfg.depth + 1) * cfg.records.div_ceil(cfg.batch)) as u64;
    assert!(
        spans_on.spans_recorded + spans_on.spans_dropped >= analytic,
        "spans-on arm saw {} spans (+{} dropped), analytic floor is {analytic}",
        spans_on.spans_recorded,
        spans_on.spans_dropped,
    );
    assert!(
        spans_on.stages_seen > 0,
        "spans-on arm populated no stage histograms"
    );

    let hov = median_overhead_pct(&mut hist_ratios);
    let sov = median_overhead_pct(&mut span_ratios);
    // Absolute per-span cost: the machine-independent number — the relative
    // percentage depends on how expensive this machine makes a baseline
    // invocation.
    let spans_completed = (spans_on.spans_recorded + spans_on.spans_dropped).max(1);
    let per_span_ns = sov / 100.0 * baseline.wall_seconds_best * 1e9 / spans_completed as f64;

    format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"records\": {records},\n",
            "  \"depth\": {depth},\n",
            "  \"batch\": {batch},\n",
            "  \"samples\": {samples},\n",
            "  \"baseline\": {base},\n",
            "  \"histograms\": {hist},\n",
            "  \"spans_on\": {spans},\n",
            "  \"histograms_overhead_pct\": {hov:.2},\n",
            "  \"spans_on_overhead_pct\": {sov:.2},\n",
            "  \"spans_on_per_span_ns\": {psn:.0},\n",
            "  \"analytic_span_floor\": {floor}\n",
            "}}\n"
        ),
        records = cfg.records,
        depth = cfg.depth,
        batch = cfg.batch,
        samples = cfg.samples,
        base = json_arm(&baseline),
        hist = json_arm(&histograms),
        spans = json_arm(&spans_on),
        hov = hov,
        sov = sov,
        psn = per_span_ns,
        floor = analytic,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_renders_and_upholds_invariants() {
        let cfg = ObsConfigDims {
            records: 60,
            depth: 2,
            batch: 4,
            samples: 1,
        };
        let report = obs_report(&cfg);
        assert!(report.contains("\"spans_on_overhead_pct\""));
        assert!(report.contains("\"analytic_span_floor\""));
        // The JSON is hand-rolled; check it is at least brace-balanced.
        assert_eq!(
            report.matches('{').count(),
            report.matches('}').count(),
            "unbalanced JSON: {report}"
        );
    }

    #[test]
    fn best_of_keeps_the_minimum() {
        let mut arm = ArmStats::new();
        let cfg = ObsConfigDims {
            records: 8,
            depth: 1,
            batch: 4,
            samples: 2,
        };
        run_once(&cfg, ObsConfig::off(), &mut arm, false);
        assert!(arm.wall_seconds_best.is_finite());
        let first = arm.wall_seconds_best;
        run_once(&cfg, ObsConfig::off(), &mut arm, false);
        assert!(arm.wall_seconds_best <= first);
    }
}
