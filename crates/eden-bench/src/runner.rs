//! Shared helpers for building and measuring pipelines.

use std::time::Duration;

use eden_core::Value;
use eden_kernel::Kernel;
use eden_transput::transform::{Identity, Transform};
use eden_transput::{ChannelPolicy, Discipline, PipelineSpec, PipelineRun};

/// Generous deadline for experiment pipelines.
pub const DEADLINE: Duration = Duration::from_secs(120);

/// Build `depth` identity stages.
pub fn identity_stages(depth: usize) -> Vec<Box<dyn Transform>> {
    (0..depth)
        .map(|_| Box::new(Identity) as Box<dyn Transform>)
        .collect()
}

/// Run a pipeline of the given stages over `input` and return the run.
pub fn run_pipeline(
    kernel: &Kernel,
    discipline: Discipline,
    input: Vec<Value>,
    stages: Vec<Box<dyn Transform>>,
    batch: usize,
    policy: ChannelPolicy,
    taps: &[(usize, &str)],
) -> PipelineRun {
    let mut builder = PipelineSpec::new(discipline)
        .source_vec(input)
        .batch(batch)
        .policy(policy);
    for stage in stages {
        builder = builder.stage(stage);
    }
    for (idx, channel) in taps {
        builder = builder.tap(*idx, channel);
    }
    builder
        .build(kernel)
        .expect("pipeline builds")
        .run(DEADLINE)
        .expect("pipeline completes")
}

/// Run an identity pipeline (the cost-measurement workhorse).
pub fn run_identity(
    kernel: &Kernel,
    discipline: Discipline,
    input: Vec<Value>,
    depth: usize,
    batch: usize,
) -> PipelineRun {
    run_pipeline(
        kernel,
        discipline,
        input,
        identity_stages(depth),
        batch,
        ChannelPolicy::Integer,
        &[],
    )
}

/// Format a float with sensible precision for tables.
pub fn fmt_f(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format records/second as kilo-records/second.
pub fn fmt_krate(records: u64, wall: Duration) -> String {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        return "inf".into();
    }
    format!("{:.1}", records as f64 / secs / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_run_copies_input() {
        let kernel = Kernel::new();
        let input: Vec<Value> = (0..10).map(Value::Int).collect();
        let run = run_identity(
            &kernel,
            Discipline::ReadOnly { read_ahead: 0 },
            input.clone(),
            2,
            4,
        );
        assert_eq!(run.output, input);
        kernel.shutdown();
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_f(0.5), "0.50");
        assert_eq!(fmt_f(42.0), "42.0");
        assert_eq!(fmt_f(1234.4), "1234");
        assert_eq!(fmt_f(f64::INFINITY), "inf");
    }
}
