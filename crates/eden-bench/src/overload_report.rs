//! Overload-plane report — the `--overload-json` mode of the
//! `experiments` binary.
//!
//! Every other bench in this crate is closed-loop: clients wait for each
//! reply before issuing the next request, so offered load can never
//! exceed service capacity and the system never meets its collapse
//! point. This report is the open-loop complement. A driver fires
//! invocations at *fixed arrival rates* — on schedule, whether or not
//! earlier requests have completed — and sweeps the offered rate past
//! saturation, once per [`ShedPolicy`]:
//!
//! * **chat/pubsub**: publishers post to a `ChatRoom` stream Eject that
//!   keeps a bounded history ring and fans each message out to its
//!   subscribers' mailboxes.
//! * **tail -f**: an appender streams lines into a `TailLog` Eject while
//!   a follower polls `ReadFrom` with a cursor, retrying on
//!   [`Overloaded`](eden_core::EdenError::Overloaded) — the
//!   retryable-shed loop acting as client-side rate control.
//!
//! Goodput counts a reply only if it is `Ok` **and** lands within the
//! SLA measured from the request's *scheduled* arrival time. Under
//! `Park` the driver itself wedges behind the full mailbox, schedules
//! slip without bound, and on-time goodput collapses past the knee;
//! under `RejectNewest` the excess is turned away in microseconds and
//! goodput holds at the service capacity. The experiments binary fails
//! loud when that contrast disappears (the graceful-knee guard).
//!
//! Kernel-side latencies (mailbox wait and service time) come from the
//! obs plane's per-(Eject, op) histograms, not from the driver's clock,
//! so queueing inside the kernel is reported separately from the
//! sender-side stall that `Park` adds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_core::{EdenError, Value};
use eden_kernel::{
    EjectBehavior, EjectContext, Invocation, Kernel, ObsConfig, ReplyHandle, ShedPolicy,
};

/// Workload dials for the overload report.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Open-loop arrivals per (scenario, policy, offered-load) point.
    pub requests_per_point: usize,
    /// Closed-loop requests per client in the saturation calibration.
    pub calibration_requests: usize,
    /// Concurrent clients in the saturation calibration.
    pub calibration_clients: usize,
    /// Busy work per request inside the bottleneck Eject. This sets the
    /// saturation rate by construction (µ ≈ 1/spin), keeping the knee at
    /// the same offered multiple across hosts.
    pub service_spin: Duration,
    /// Fan-out targets in the chat scenario.
    pub subscribers: usize,
    /// Bounded mailbox capacity for every sweep kernel.
    pub mailbox_capacity: usize,
    /// On-time window measured from each request's scheduled arrival;
    /// also the invocation deadline under `DeadlineDrop`.
    pub sla: Duration,
    /// Offered-load multiples of the calibrated saturation rate. Must
    /// span the knee: some points below 1.0, some above.
    pub offered_multiples: Vec<f64>,
    /// Open-loop driver threads (each owns a slice of the schedule).
    pub driver_threads: usize,
    /// Hard cap on waiting out one straggler reply during drain.
    pub drain_cap: Duration,
}

impl OverloadConfig {
    /// CI-sized run. The request count must comfortably exceed
    /// `2 · µ · sla` (the number of requests a `Park` backlog serves
    /// before every completion is late) or the Park arm will not have
    /// collapsed by the end of the window.
    pub fn smoke() -> Self {
        OverloadConfig {
            requests_per_point: 2_500,
            calibration_requests: 300,
            calibration_clients: 4,
            service_spin: Duration::from_micros(500),
            subscribers: 4,
            mailbox_capacity: 64,
            sla: Duration::from_millis(100),
            offered_multiples: vec![0.5, 0.8, 1.0, 1.5, 2.0],
            driver_threads: 2,
            drain_cap: Duration::from_secs(15),
        }
    }

    /// Full run: longer windows, finer sweep.
    pub fn full() -> Self {
        OverloadConfig {
            requests_per_point: 12_000,
            calibration_requests: 1_000,
            calibration_clients: 4,
            service_spin: Duration::from_micros(500),
            subscribers: 8,
            mailbox_capacity: 64,
            sla: Duration::from_millis(150),
            offered_multiples: vec![0.5, 0.8, 1.0, 1.2, 1.5, 2.0],
            driver_threads: 2,
            drain_cap: Duration::from_secs(60),
        }
    }
}

/// Which workload a sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Chat,
    TailF,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Chat => "chat",
            Scenario::TailF => "tail_f",
        }
    }

    /// The op the open-loop driver fires at the bottleneck Eject.
    fn op(self) -> &'static str {
        match self {
            Scenario::Chat => "Publish",
            Scenario::TailF => "Append",
        }
    }
}

fn policy_label(policy: ShedPolicy) -> &'static str {
    match policy {
        ShedPolicy::Park => "park",
        ShedPolicy::RejectNewest => "reject-newest",
        ShedPolicy::RejectOldest => "reject-oldest",
        ShedPolicy::DeadlineDrop => "deadline-drop",
    }
}

/// Burn CPU for `d` — the stand-in for real per-message work, chosen
/// over `sleep` so the bottleneck's service rate is what saturates
/// rather than timer resolution.
fn spin_for(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// How much chat history a room retains (the stream is bounded, as a
/// real room's scrollback is).
const CHAT_HISTORY: usize = 256;

/// The chat/pubsub bottleneck: `Publish` appends to a bounded history
/// ring, burns the configured service time, and fans the message out to
/// every subscriber (fire-and-forget — a slow subscriber must not stall
/// the room).
struct ChatRoom {
    subscribers: Vec<eden_core::Uid>,
    history: std::collections::VecDeque<Value>,
    spin: Duration,
    published: i64,
}

impl EjectBehavior for ChatRoom {
    fn type_name(&self) -> &'static str {
        "ChatRoom"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Publish" => {
                spin_for(self.spin);
                if self.history.len() >= CHAT_HISTORY {
                    self.history.pop_front();
                }
                self.history.push_back(inv.arg.clone());
                for sub in &self.subscribers {
                    drop(ctx.invoke(*sub, "Deliver", inv.arg.clone()));
                }
                self.published += 1;
                reply.reply(Ok(Value::Int(self.published)));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op.clone(),
            })),
        }
    }
}

/// A chat subscriber: counts deliveries into a shared ledger so the
/// report can show fan-out survived the shed storm.
struct Subscriber {
    delivered: Arc<AtomicU64>,
}

impl EjectBehavior for Subscriber {
    fn type_name(&self) -> &'static str {
        "Subscriber"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Deliver" => {
                self.delivered.fetch_add(1, Ordering::Relaxed);
                reply.reply(Ok(Value::Unit));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op.clone(),
            })),
        }
    }
}

/// The tail-f bottleneck: `Append` burns the service time and extends
/// the line count; `ReadFrom(cursor)` replies with the current length so
/// the follower can advance. Reads share the bounded mailbox with the
/// append storm — under shedding policies the follower sees
/// `Overloaded` and retries.
struct TailLog {
    lines: i64,
    spin: Duration,
}

impl EjectBehavior for TailLog {
    fn type_name(&self) -> &'static str {
        "TailLog"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Append" => {
                spin_for(self.spin);
                self.lines += 1;
                reply.reply(Ok(Value::Int(self.lines)));
            }
            "ReadFrom" => reply.reply(Ok(Value::Int(self.lines))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op.clone(),
            })),
        }
    }
}

/// Sleep until `t`. Pure `sleep`, never a busy spin: the driver shares
/// cores with the service under test (a single core, in CI), so a
/// spinning driver would starve the bottleneck Eject and manufacture a
/// collapse the kernel is not responsible for. The ~100µs wakeup jitter
/// this costs is noise against the interarrival gaps in use, and a late
/// wakeup returns immediately — the open-loop driver catches up by
/// bursting, it never thins the offered load.
fn sleep_until(t: Instant) {
    loop {
        let now = Instant::now();
        if now >= t {
            return;
        }
        std::thread::sleep(t - now);
    }
}

fn spawn_scenario(kernel: &Kernel, scenario: Scenario, cfg: &OverloadConfig) -> ScenarioHandles {
    match scenario {
        Scenario::Chat => {
            let delivered = Arc::new(AtomicU64::new(0));
            let subscribers: Vec<_> = (0..cfg.subscribers)
                .map(|_| {
                    kernel
                        .spawn(Box::new(Subscriber {
                            delivered: Arc::clone(&delivered),
                        }))
                        .expect("spawn subscriber")
                })
                .collect();
            let room = kernel
                .spawn(Box::new(ChatRoom {
                    subscribers,
                    history: std::collections::VecDeque::new(),
                    spin: cfg.service_spin,
                    published: 0,
                }))
                .expect("spawn chat room");
            ScenarioHandles {
                target: room,
                delivered: Some(delivered),
            }
        }
        Scenario::TailF => {
            let log = kernel
                .spawn(Box::new(TailLog {
                    lines: 0,
                    spin: cfg.service_spin,
                }))
                .expect("spawn tail log");
            ScenarioHandles {
                target: log,
                delivered: None,
            }
        }
    }
}

struct ScenarioHandles {
    target: eden_core::Uid,
    delivered: Option<Arc<AtomicU64>>,
}

/// Closed-loop saturation probe: a few clients hammer the bottleneck op
/// synchronously on an unbounded kernel; the aggregate rate is µ, the
/// anchor the offered-load multiples scale from.
fn calibrate(scenario: Scenario, cfg: &OverloadConfig) -> f64 {
    let kernel = Kernel::builder().build();
    let handles = spawn_scenario(&kernel, scenario, cfg);
    let per_client = cfg.calibration_requests;
    let t0 = Instant::now();
    let clients: Vec<_> = (0..cfg.calibration_clients)
        .map(|_| {
            let kernel = kernel.clone();
            let target = handles.target;
            let op = scenario.op();
            std::thread::spawn(move || {
                for i in 0..per_client {
                    kernel
                        .invoke(target, op, Value::Int(i as i64))
                        .wait()
                        .expect("calibration invoke");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("calibration client");
    }
    let total = (cfg.calibration_clients * per_client) as f64;
    let rate = total / t0.elapsed().as_secs_f64().max(f64::EPSILON);
    kernel.shutdown();
    rate
}

/// One (scenario, policy, offered-rate) measurement.
struct PointRow {
    offered_multiple: f64,
    offered_rps: f64,
    sent: u64,
    ok_on_time: u64,
    ok_late: u64,
    shed: u64,
    timed_out: u64,
    other_errors: u64,
    goodput_rps: f64,
    driver_ok_p50_ms: f64,
    driver_ok_p99_ms: f64,
    obs_queue_p50_us: f64,
    obs_queue_p99_us: f64,
    obs_service_p50_us: f64,
    obs_service_p99_us: f64,
    sheds_newest: u64,
    sheds_oldest: u64,
    sheds_expired: u64,
    sheds_park_timeout: u64,
    queue_depth_max: u64,
    fanout_delivered: u64,
    follower_lines: u64,
    follower_retries: u64,
}

impl PointRow {
    fn json(&self, scenario: Scenario) -> String {
        let extra = match scenario {
            Scenario::Chat => format!(", \"fanout_delivered\": {}", self.fanout_delivered),
            Scenario::TailF => format!(
                ", \"follower_lines\": {}, \"follower_retries\": {}",
                self.follower_lines, self.follower_retries
            ),
        };
        format!(
            concat!(
                "{{ \"offered_multiple\": {:.2}, \"offered_rps\": {:.1}, ",
                "\"sent\": {}, \"ok_on_time\": {}, \"ok_late\": {}, \"shed\": {}, ",
                "\"timed_out\": {}, \"other_errors\": {}, \"goodput_rps\": {:.1}, ",
                "\"driver_ok_p50_ms\": {:.2}, \"driver_ok_p99_ms\": {:.2}, ",
                "\"obs_queue_p50_us\": {:.1}, \"obs_queue_p99_us\": {:.1}, ",
                "\"obs_service_p50_us\": {:.1}, \"obs_service_p99_us\": {:.1}, ",
                "\"sheds\": {{ \"reject-newest\": {}, \"reject-oldest\": {}, ",
                "\"deadline-drop\": {}, \"park-timeout\": {} }}, ",
                "\"queue_depth_max\": {}{} }}"
            ),
            self.offered_multiple,
            self.offered_rps,
            self.sent,
            self.ok_on_time,
            self.ok_late,
            self.shed,
            self.timed_out,
            self.other_errors,
            self.goodput_rps,
            self.driver_ok_p50_ms,
            self.driver_ok_p99_ms,
            self.obs_queue_p50_us,
            self.obs_queue_p99_us,
            self.obs_service_p50_us,
            self.obs_service_p99_us,
            self.sheds_newest,
            self.sheds_oldest,
            self.sheds_expired,
            self.sheds_park_timeout,
            self.queue_depth_max,
            extra,
        )
    }
}

/// Quantile of a sorted slice (nearest-rank), in the slice's unit.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run one open-loop point: fire `requests_per_point` invocations at
/// `rate` per second, classify every completion, and fold in the obs
/// plane's kernel-side histograms.
fn run_point(
    scenario: Scenario,
    policy: ShedPolicy,
    multiple: f64,
    rate: f64,
    cfg: &OverloadConfig,
) -> PointRow {
    let kernel = Kernel::builder()
        .mailbox_capacity(cfg.mailbox_capacity)
        .shed_policy(policy)
        .observability(ObsConfig {
            spans: false,
            histograms: true,
            ..ObsConfig::off()
        })
        .build();
    let handles = spawn_scenario(&kernel, scenario, cfg);
    let target = handles.target;
    let op = scenario.op();
    let total = cfg.requests_per_point;
    let period = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let start = Instant::now() + Duration::from_millis(20);

    // The tail-f follower: closed-loop polls sharing the bounded mailbox
    // with the append storm, retrying on Overloaded with a short pause —
    // the retryable-shed contract exercised end to end.
    let stop = Arc::new(AtomicBool::new(false));
    let follower = (scenario == Scenario::TailF).then(|| {
        let kernel = kernel.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let (mut lines, mut retries) = (0u64, 0u64);
            while !stop.load(Ordering::Acquire) {
                match kernel
                    .invoke(target, "ReadFrom", Value::Int(lines as i64))
                    .wait_timeout(Duration::from_secs(5))
                {
                    Ok(Value::Int(len)) => lines = len.max(0) as u64,
                    Ok(_) => {}
                    Err(EdenError::Overloaded { .. }) => {
                        retries += 1;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            (lines, retries)
        })
    });

    // Each driver thread owns the schedule slice `i ≡ t (mod threads)`
    // and hands every in-flight reply to its own collector, so a reply
    // wait never delays the next scheduled send — only `Park` inside the
    // send itself can slip the schedule, which is exactly the effect
    // under measurement.
    struct DriveStats {
        ok_on_time: u64,
        ok_late: u64,
        shed: u64,
        timed_out: u64,
        other_errors: u64,
        ok_latencies_ms: Vec<f64>,
    }
    let threads = cfg.driver_threads.max(1);
    let drivers: Vec<_> = (0..threads)
        .map(|t| {
            let kernel = kernel.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let (tx, rx) = std::sync::mpsc::channel::<(
                    eden_kernel::PendingReply,
                    Instant,
                )>();
                let collector = std::thread::spawn(move || {
                    let mut stats = DriveStats {
                        ok_on_time: 0,
                        ok_late: 0,
                        shed: 0,
                        timed_out: 0,
                        other_errors: 0,
                        ok_latencies_ms: Vec::new(),
                    };
                    for (pending, due) in rx {
                        let outcome = pending.wait_timeout(cfg.drain_cap);
                        let latency = Instant::now().saturating_duration_since(due);
                        match outcome {
                            Ok(_) => {
                                stats
                                    .ok_latencies_ms
                                    .push(latency.as_secs_f64() * 1_000.0);
                                if latency <= cfg.sla {
                                    stats.ok_on_time += 1;
                                } else {
                                    stats.ok_late += 1;
                                }
                            }
                            Err(EdenError::Overloaded { .. }) => stats.shed += 1,
                            Err(EdenError::Timeout) => stats.timed_out += 1,
                            Err(_) => stats.other_errors += 1,
                        }
                    }
                    stats
                });
                let mut sent = 0u64;
                for i in (t..total).step_by(threads) {
                    let due = start + period.mul_f64(i as f64);
                    sleep_until(due);
                    let pending = match policy {
                        // The deadline is what DeadlineDrop keys off —
                        // and it bounds a Park inside the send, so this
                        // arm also exercises the deadline-aware park.
                        ShedPolicy::DeadlineDrop => kernel.invoke_with(
                            target,
                            op,
                            Value::Int(i as i64),
                            eden_kernel::InvokeOptions::new().deadline(cfg.sla),
                        ),
                        _ => kernel.invoke(target, op, Value::Int(i as i64)),
                    };
                    sent += 1;
                    if tx.send((pending, due)).is_err() {
                        break;
                    }
                }
                drop(tx);
                (sent, collector.join().expect("collector"))
            })
        })
        .collect();

    let mut sent = 0u64;
    let mut ok_on_time = 0u64;
    let mut ok_late = 0u64;
    let mut shed = 0u64;
    let mut timed_out = 0u64;
    let mut other_errors = 0u64;
    let mut ok_latencies_ms: Vec<f64> = Vec::new();
    let mut queue_depth_max = 0u64;
    // Sample the queue-depth gauge while the storm runs; the drivers
    // finish independently so the sampler just rides along.
    let done = Arc::new(AtomicBool::new(false));
    let sampler = {
        let kernel = kernel.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut max = 0u64;
            while !done.load(Ordering::Acquire) {
                max = max.max(kernel.metrics_snapshot().mailbox.queued_max);
                std::thread::sleep(Duration::from_millis(5));
            }
            max
        })
    };
    for d in drivers {
        let (s, stats) = d.join().expect("driver thread");
        sent += s;
        ok_on_time += stats.ok_on_time;
        ok_late += stats.ok_late;
        shed += stats.shed;
        timed_out += stats.timed_out;
        other_errors += stats.other_errors;
        ok_latencies_ms.extend(stats.ok_latencies_ms);
    }
    done.store(true, Ordering::Release);
    queue_depth_max = queue_depth_max.max(sampler.join().expect("gauge sampler"));
    stop.store(true, Ordering::Release);
    let (follower_lines, follower_retries) = follower
        .map(|f| f.join().expect("follower thread"))
        .unwrap_or((0, 0));

    // Kernel-side latency from the obs histograms for the bottleneck op.
    let summaries = kernel.stage_summaries();
    let stage = summaries
        .iter()
        .find(|s| s.target == target && s.op.as_str() == op);
    let (q50, q99, s50, s99) = stage
        .map(|s| {
            (
                s.queue.p50_ns() as f64 / 1_000.0,
                s.queue.p99_ns() as f64 / 1_000.0,
                s.service.p50_ns() as f64 / 1_000.0,
                s.service.p99_ns() as f64 / 1_000.0,
            )
        })
        .unwrap_or((0.0, 0.0, 0.0, 0.0));
    let snap = kernel.metrics_snapshot();
    let fanout_delivered = handles
        .delivered
        .map(|delivered| delivered.load(Ordering::Relaxed))
        .unwrap_or(0);
    kernel.shutdown();

    ok_latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latency is never NaN"));
    // Goodput over the *nominal* window: under Park the run takes longer
    // than scheduled, and that slippage is precisely what must show up
    // as lost goodput rather than be normalised away.
    let window = period.mul_f64(total as f64).as_secs_f64().max(f64::EPSILON);
    PointRow {
        offered_multiple: multiple,
        offered_rps: rate,
        sent,
        ok_on_time,
        ok_late,
        shed,
        timed_out,
        other_errors,
        goodput_rps: ok_on_time as f64 / window,
        driver_ok_p50_ms: quantile(&ok_latencies_ms, 0.50),
        driver_ok_p99_ms: quantile(&ok_latencies_ms, 0.99),
        obs_queue_p50_us: q50,
        obs_queue_p99_us: q99,
        obs_service_p50_us: s50,
        obs_service_p99_us: s99,
        sheds_newest: snap.metrics.sheds_newest,
        sheds_oldest: snap.metrics.sheds_oldest,
        sheds_expired: snap.metrics.sheds_expired,
        sheds_park_timeout: snap.metrics.sheds_park_timeout,
        queue_depth_max,
        fanout_delivered,
        follower_lines,
        follower_retries,
    }
}

/// The rendered report plus the two curves the graceful-knee guard
/// judges.
#[derive(Debug)]
pub struct OverloadReport {
    /// The `BENCH_overload.json` body.
    pub json: String,
    /// `(offered_multiple, goodput_rps)` for chat under `RejectNewest`.
    pub chat_reject_newest: Vec<(f64, f64)>,
    /// `(offered_multiple, goodput_rps)` for chat under `Park`.
    pub chat_park: Vec<(f64, f64)>,
}

/// Run both scenarios across the policy × offered-load grid and render
/// `BENCH_overload.json`.
pub fn overload_report(cfg: &OverloadConfig, smoke: bool) -> OverloadReport {
    // The chat sweep runs every policy (it is the headline curve); the
    // tail-f sweep contrasts the legacy Park discipline with shedding.
    let grid: [(Scenario, &[ShedPolicy]); 2] = [
        (
            Scenario::Chat,
            &[
                ShedPolicy::Park,
                ShedPolicy::RejectNewest,
                ShedPolicy::RejectOldest,
                ShedPolicy::DeadlineDrop,
            ],
        ),
        (Scenario::TailF, &[ShedPolicy::Park, ShedPolicy::RejectNewest]),
    ];

    let mut chat_reject_newest = Vec::new();
    let mut chat_park = Vec::new();
    let mut scenario_blocks = Vec::new();
    for (scenario, policies) in grid {
        let saturation = calibrate(scenario, cfg);
        let mut policy_blocks = Vec::new();
        for &policy in policies {
            let mut point_rows = Vec::new();
            for &multiple in &cfg.offered_multiples {
                let rate = saturation * multiple;
                let row = run_point(scenario, policy, multiple, rate, cfg);
                if scenario == Scenario::Chat {
                    match policy {
                        ShedPolicy::RejectNewest => {
                            chat_reject_newest.push((multiple, row.goodput_rps))
                        }
                        ShedPolicy::Park => chat_park.push((multiple, row.goodput_rps)),
                        _ => {}
                    }
                }
                point_rows.push(format!("          {}", row.json(scenario)));
            }
            policy_blocks.push(format!(
                concat!(
                    "      {{\n",
                    "        \"policy\": \"{}\",\n",
                    "        \"points\": [\n{}\n        ]\n",
                    "      }}"
                ),
                policy_label(policy),
                point_rows.join(",\n"),
            ));
        }
        scenario_blocks.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"saturation_rps\": {:.1},\n",
                "      \"policies\": [\n{}\n      ]\n",
                "    }}"
            ),
            scenario.name(),
            saturation,
            policy_blocks.join(",\n"),
        ));
    }

    let peak = |curve: &[(f64, f64)]| {
        curve
            .iter()
            .map(|&(_, g)| g)
            .fold(0.0f64, f64::max)
    };
    let at_max_multiple = |curve: &[(f64, f64)]| {
        curve
            .iter()
            .cloned()
            .max_by(|a, b| a.0.partial_cmp(&b.0).expect("multiple is never NaN"))
            .map(|(_, g)| g)
            .unwrap_or(0.0)
    };
    let rn_peak = peak(&chat_reject_newest);
    let rn_at_2x = at_max_multiple(&chat_reject_newest);
    let park_at_2x = at_max_multiple(&chat_park);
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"mode\": \"{}\",\n",
            "  \"sla_ms\": {},\n",
            "  \"mailbox_capacity\": {},\n",
            "  \"requests_per_point\": {},\n",
            "  \"scenarios\": [\n{}\n  ],\n",
            "  \"knee\": {{\n",
            "    \"chat_reject_newest_peak_goodput_rps\": {:.1},\n",
            "    \"chat_reject_newest_at_max_offered_goodput_rps\": {:.1},\n",
            "    \"chat_reject_newest_retention\": {:.3},\n",
            "    \"chat_park_at_max_offered_goodput_rps\": {:.1},\n",
            "    \"park_collapse_ratio\": {:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        cfg.sla.as_millis(),
        cfg.mailbox_capacity,
        cfg.requests_per_point,
        scenario_blocks.join(",\n"),
        rn_peak,
        rn_at_2x,
        rn_at_2x / rn_peak.max(f64::EPSILON),
        park_at_2x,
        park_at_2x / rn_peak.max(f64::EPSILON),
    );
    OverloadReport {
        json,
        chat_reject_newest,
        chat_park,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.50), 2.0);
        assert_eq!(quantile(&v, 0.99), 4.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn one_point_produces_a_sane_row() {
        // A single cheap point, well under saturation: everything admits,
        // nothing sheds, goodput ≈ the offered rate.
        let cfg = OverloadConfig {
            requests_per_point: 60,
            calibration_requests: 20,
            calibration_clients: 2,
            service_spin: Duration::from_micros(50),
            subscribers: 2,
            mailbox_capacity: 64,
            sla: Duration::from_millis(500),
            offered_multiples: vec![0.2],
            driver_threads: 2,
            drain_cap: Duration::from_secs(10),
        };
        let row = run_point(Scenario::Chat, ShedPolicy::RejectNewest, 0.2, 400.0, &cfg);
        assert_eq!(row.sent, 60);
        assert_eq!(
            row.ok_on_time + row.ok_late + row.shed + row.timed_out + row.other_errors,
            60
        );
        assert!(row.ok_on_time > 0, "underload point completed nothing");
        assert!(row.fanout_delivered > 0, "chat fan-out never delivered");
        let text = row.json(Scenario::Chat);
        assert!(text.contains("\"goodput_rps\""));
        assert!(text.contains("\"fanout_delivered\""));
    }

    #[test]
    fn tail_f_point_reports_the_follower() {
        let cfg = OverloadConfig {
            requests_per_point: 40,
            calibration_requests: 20,
            calibration_clients: 2,
            service_spin: Duration::from_micros(50),
            subscribers: 0,
            mailbox_capacity: 64,
            sla: Duration::from_millis(500),
            offered_multiples: vec![0.2],
            driver_threads: 2,
            drain_cap: Duration::from_secs(10),
        };
        let row = run_point(Scenario::TailF, ShedPolicy::Park, 0.2, 300.0, &cfg);
        assert_eq!(row.sent, 40);
        assert!(row.follower_lines > 0, "follower observed no lines");
        let text = row.json(Scenario::TailF);
        assert!(text.contains("\"follower_lines\""));
    }
}
