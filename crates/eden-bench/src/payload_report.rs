//! The payload-plane benchmark — the `--json` mode's second report,
//! `BENCH_payload.json`.
//!
//! The invocation-plane report ([`crate::json_report`]) tracks the paper's
//! *control* cost (invocations per datum); this one tracks the *data* cost
//! (payload bytes physically moved per datum). Two workloads, each run in
//! two arms:
//!
//! * `pipeline`: a linear write-only pipeline of large records. The
//!   `shared` arm is the zero-copy plane as shipped; the `deep_copy` arm
//!   re-imposes the pre-refactor cost model by deep-copying every record
//!   at every stage, exactly where `Value::clone` used to.
//! * `fanout`: one push source fanning a large-record stream out to
//!   `width` acceptor sinks. The `shared` arm hands every consumer a
//!   reference bump of one batch allocation; the `deep_copy` arm
//!   materialises a private copy per consumer, which is what the old
//!   per-branch `items.clone()` did.
//!
//! The headline invariants: `payload_copies` in the shared arm stays
//! **constant** as fan-out width grows (asserted here), and the shared arm
//! is at least ~2x faster once payloads are large enough that moving bytes
//! dominates moving control (recorded in the JSON, checked across PRs).

use std::time::Instant;

use eden_core::op::ops;
use eden_core::{payload, EdenError, PayloadSnapshot, Value};
use eden_kernel::{EjectBehavior, EjectContext, Invocation, Kernel, ReplyHandle};
use eden_transput::protocol::OUTPUT_NAME;
use eden_transput::source::VecSource;
use eden_transput::transform::{map_fn, Identity};
use eden_transput::write_only::{OutputPort, OutputWiring, PushFilterEject, PushSourceEject};
use eden_transput::{Collector, Discipline, PipelineSpec, WriteRequest};

use crate::runner::DEADLINE;

/// Workload dimensions; `smoke()` keeps CI runs to well under a second.
#[derive(Clone, Copy)]
#[derive(Debug)]
pub struct PayloadConfig {
    /// Payload bytes per record body.
    pub record_bytes: usize,
    /// Records per run.
    pub records: usize,
    /// Stages in the linear pipeline section.
    pub depth: usize,
    /// Fan-out widths measured, ascending.
    pub widths: [usize; 4],
    /// Records per batch on every hop.
    pub batch: usize,
}

impl PayloadConfig {
    /// The full-size configuration: payloads large enough that moving
    /// bytes dominates moving control.
    pub fn full() -> PayloadConfig {
        PayloadConfig {
            record_bytes: 1 << 20,
            records: 32,
            depth: 3,
            widths: [1, 2, 4, 8],
            batch: 4,
        }
    }

    /// The smoke configuration: same shape, small enough for CI.
    pub fn smoke() -> PayloadConfig {
        PayloadConfig {
            record_bytes: 16 << 10,
            records: 8,
            depth: 3,
            widths: [1, 2, 4, 8],
            batch: 4,
        }
    }
}

/// One measured arm: wall time plus the payload counters it moved.
struct ArmStats {
    wall_seconds: f64,
    delta: PayloadSnapshot,
}

impl ArmStats {
    fn measure<F: FnOnce()>(run: F) -> ArmStats {
        let before = payload::snapshot();
        let t0 = Instant::now();
        run();
        let wall_seconds = t0.elapsed().as_secs_f64();
        ArmStats {
            wall_seconds,
            delta: payload::snapshot().since(&before),
        }
    }
}

/// A passive sink for the fan-out arms. In `deep_copy` mode it privately
/// copies every record on arrival — reproducing the bytes-moved profile of
/// the pre-refactor fan-out, where every branch received its own deep copy
/// of the batch — while keeping the invocation count identical to the
/// shared arm, so the two arms differ *only* in payload movement.
struct PayloadSinkEject {
    collector: Collector,
    deep_copy: bool,
    ended: bool,
}

impl PayloadSinkEject {
    fn new(collector: Collector, deep_copy: bool) -> PayloadSinkEject {
        PayloadSinkEject {
            collector,
            deep_copy,
            ended: false,
        }
    }
}

impl EjectBehavior for PayloadSinkEject {
    fn type_name(&self) -> &'static str {
        "PayloadSink"
    }

    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            ops::WRITE => match WriteRequest::from_value(inv.arg) {
                Ok(w) => {
                    if !w.items.is_empty() {
                        let items = if self.deep_copy {
                            w.items.iter().map(Value::deep_copy).collect()
                        } else {
                            w.items
                        };
                        self.collector.append(items);
                    }
                    if w.end && !self.ended {
                        self.ended = true;
                        self.collector.finish();
                    }
                    reply.reply(Ok(Value::Unit));
                }
                Err(e) => reply.reply(Err(e)),
            },
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// One large record: a `body` of `bytes` payload plus a sequence number.
fn large_record(seq: i64, bytes: usize) -> Value {
    Value::record([
        ("seq", Value::Int(seq)),
        ("body", Value::str("x".repeat(bytes))),
    ])
}

fn workload(cfg: &PayloadConfig) -> Vec<Value> {
    (0..cfg.records as i64)
        .map(|i| large_record(i, cfg.record_bytes))
        .collect()
}

/// The linear-pipeline arms: `depth` stages of either `Identity` (shared)
/// or an explicit per-stage deep copy (the pre-refactor cost model).
fn pipeline_arm(cfg: &PayloadConfig, deep_copy: bool) -> ArmStats {
    let kernel = Kernel::new();
    let mut builder = PipelineSpec::new(Discipline::WriteOnly { push_ahead: 4 })
        .source_vec(workload(cfg))
        .batch(cfg.batch);
    for _ in 0..cfg.depth {
        builder = if deep_copy {
            builder.stage(Box::new(map_fn("deep-copy", |v| v.deep_copy())))
        } else {
            builder.stage(Box::new(Identity))
        };
    }
    let pipeline = builder.build(&kernel).expect("pipeline builds");
    let records = cfg.records as u64;
    let stats = ArmStats::measure(|| {
        let run = pipeline.run(DEADLINE).expect("pipeline completes");
        assert_eq!(run.records_out, records, "pipeline lost records");
    });
    kernel.shutdown();
    stats
}

/// The fan-out arms: source → identity filter → `width` acceptor sinks.
fn fanout_arm(cfg: &PayloadConfig, width: usize, deep_copy: bool) -> ArmStats {
    let kernel = Kernel::new();
    let mut wiring = OutputWiring::default();
    let mut collectors = Vec::with_capacity(width);
    for _ in 0..width {
        let collector = Collector::new();
        let sink = kernel
            .spawn(Box::new(PayloadSinkEject::new(collector.clone(), deep_copy)))
            .expect("sink spawns");
        wiring.add(OUTPUT_NAME, OutputPort::primary(sink));
        collectors.push(collector);
    }
    let filter = kernel
        .spawn(Box::new(PushFilterEject::new(Box::new(Identity), wiring)))
        .expect("filter spawns");
    let source = kernel
        .spawn(Box::new(PushSourceEject::new(
            Box::new(VecSource::new(workload(cfg))),
            OutputWiring::primary_to(OutputPort::primary(filter)),
            cfg.batch,
        )))
        .expect("source spawns");
    let records = cfg.records;
    let stats = ArmStats::measure(|| {
        kernel
            .invoke(source, "Start", Value::Unit).wait()
            .expect("fan-out completes");
        for c in &collectors {
            let got = c.wait_done(DEADLINE).expect("branch completes");
            assert_eq!(got.len(), records, "fan-out branch lost records");
        }
    });
    kernel.shutdown();
    stats
}

fn json_arm(arm: &ArmStats) -> String {
    format!(
        concat!(
            "{{ \"wall_seconds\": {:.6}, \"payload_bytes_moved\": {}, ",
            "\"payload_copies\": {}, \"cow_breaks\": {}, \"payload_shares\": {} }}"
        ),
        arm.wall_seconds,
        arm.delta.payload_bytes_moved,
        arm.delta.payload_copies,
        arm.delta.cow_breaks,
        arm.delta.payload_shares,
    )
}

/// Run the payload-plane measurements and render `BENCH_payload.json`.
///
/// Panics if the structural invariant fails: the shared arm's
/// `payload_copies` must not grow with fan-out width.
pub fn payload_report(cfg: &PayloadConfig) -> String {
    let pipe_shared = pipeline_arm(cfg, false);
    let pipe_deep = pipeline_arm(cfg, true);

    let mut fan_rows = Vec::new();
    let mut shared_copies = Vec::new();
    for &width in &cfg.widths {
        let shared = fanout_arm(cfg, width, false);
        let deep = fanout_arm(cfg, width, true);
        shared_copies.push(shared.delta.payload_copies);
        fan_rows.push(format!(
            concat!(
                "    {{\n",
                "      \"width\": {},\n",
                "      \"shared\": {},\n",
                "      \"deep_copy\": {},\n",
                "      \"speedup\": {:.2}\n",
                "    }}"
            ),
            width,
            json_arm(&shared),
            json_arm(&deep),
            deep.wall_seconds / shared.wall_seconds.max(f64::EPSILON),
        ));
    }
    // The tentpole invariant: sharing makes the copy count independent of
    // the number of consumers. (The deep-copy arm's own copies land in
    // *its* delta, so the shared deltas must all agree exactly.)
    let first = shared_copies[0];
    assert!(
        shared_copies.iter().all(|&c| c == first),
        "shared-arm payload_copies varies with fan-out width: {shared_copies:?}"
    );

    let widest = fan_rows.len() - 1;
    let wide_shared = fanout_arm(cfg, cfg.widths[widest], false);
    let wide_deep = fanout_arm(cfg, cfg.widths[widest], true);
    format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"record_bytes\": {rb},\n",
            "  \"records\": {rc},\n",
            "  \"batch\": {batch},\n",
            "  \"pipeline\": {{\n",
            "    \"depth\": {depth},\n",
            "    \"shared\": {ps},\n",
            "    \"deep_copy\": {pd},\n",
            "    \"speedup\": {psp:.2}\n",
            "  }},\n",
            "  \"fanout\": [\n{fans}\n  ],\n",
            "  \"fanout_at_width_{ww}\": {{\n",
            "    \"shared\": {ws},\n",
            "    \"deep_copy\": {wd},\n",
            "    \"speedup\": {wsp:.2}\n",
            "  }},\n",
            "  \"shared_copies_constant_across_widths\": true\n",
            "}}\n"
        ),
        rb = cfg.record_bytes,
        rc = cfg.records,
        batch = cfg.batch,
        depth = cfg.depth,
        ps = json_arm(&pipe_shared),
        pd = json_arm(&pipe_deep),
        psp = pipe_deep.wall_seconds / pipe_shared.wall_seconds.max(f64::EPSILON),
        fans = fan_rows.join(",\n"),
        ww = cfg.widths[widest],
        ws = json_arm(&wide_shared),
        wd = json_arm(&wide_deep),
        wsp = wide_deep.wall_seconds / wide_shared.wall_seconds.max(f64::EPSILON),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The payload counters are process-wide; serialise the tests that
    /// assert on snapshot deltas so they don't see each other's copies.
    static PAYLOAD_METER: Mutex<()> = Mutex::new(());

    #[test]
    fn smoke_report_renders_and_upholds_invariants() {
        let _guard = PAYLOAD_METER.lock().unwrap();
        let cfg = PayloadConfig {
            record_bytes: 2048,
            records: 6,
            depth: 2,
            widths: [1, 2, 3, 4],
            batch: 2,
        };
        let report = payload_report(&cfg);
        assert!(report.contains("\"shared_copies_constant_across_widths\": true"));
        assert!(report.contains("\"fanout\""));
    }

    #[test]
    fn deep_copy_arm_moves_bytes_shared_arm_does_not() {
        let _guard = PAYLOAD_METER.lock().unwrap();
        let cfg = PayloadConfig {
            record_bytes: 4096,
            records: 4,
            depth: 1,
            widths: [1, 2, 3, 4],
            batch: 2,
        };
        let shared = fanout_arm(&cfg, 3, false);
        let deep = fanout_arm(&cfg, 3, true);
        // Each of the 3 branches copies each of the 4 records privately.
        assert!(
            deep.delta.payload_copies >= 12,
            "deep arm copied only {} times",
            deep.delta.payload_copies
        );
        assert!(
            deep.delta.payload_bytes_moved >= 3 * 4 * 4096,
            "deep arm moved only {} bytes",
            deep.delta.payload_bytes_moved
        );
        assert_eq!(
            shared.delta.payload_copies, 0,
            "shared fan-out must not copy payloads"
        );
    }
}
