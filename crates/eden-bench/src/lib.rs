//! The experiment harness: regenerates every figure and analytic claim of
//! the paper's evaluation. See `EXPERIMENTS.md` at the workspace root for
//! the experiment index and the recorded results.
//!
//! Run the deterministic tables with
//! `cargo run -p eden-bench --bin experiments [--release] [e1..e10|all]`,
//! and the wall-clock microbenchmarks with `cargo bench`.


pub mod chaos_report;
pub mod density_report;
pub mod durability_report;
pub mod exp_duality;
pub mod exp_durability;
pub mod exp_pipeline;
pub mod json_report;
pub mod obs_report;
pub mod overload_report;
pub mod payload_report;
pub mod runner;
pub mod table;
pub mod workloads;

use table::Table;

/// Run one experiment by id (`"e1"`..`"e10"`).
pub fn run_experiment(id: &str) -> Option<Vec<Table>> {
    match id {
        "e1" => Some(exp_pipeline::e1()),
        "e2" => Some(exp_pipeline::e2()),
        "e3" => Some(exp_pipeline::e3()),
        "e4" => Some(exp_duality::e4()),
        "e5" => Some(exp_duality::e5()),
        "e6" => Some(exp_duality::e6()),
        "e7" => Some(exp_pipeline::e7()),
        "e8" => Some(exp_pipeline::e8()),
        "e9" => Some(exp_durability::e9()),
        "e10" => Some(exp_durability::e10()),
        _ => None,
    }
}

/// All experiment ids, in order.
pub const ALL_EXPERIMENTS: [&str; 10] =
    ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("e99").is_none());
    }

    #[test]
    fn quick_experiments_produce_tables() {
        // Exercise the cheapest experiments as a smoke test; the full set
        // runs via the binary and benches.
        for id in ["e6", "e9"] {
            let tables = run_experiment(id).expect("known experiment");
            assert!(!tables.is_empty());
            for t in tables {
                assert!(!t.rows.is_empty(), "{id} produced an empty table");
            }
        }
    }
}
