//! Experiments E9 and E10: checkpoint durability and directory service.

use std::time::{Duration, Instant};

use eden_core::op::ops;
use eden_core::Value;
use eden_fs::{add_entry, lookup, register_fs_types, DirConcatenatorEject, DirectoryEject, FileEject};
use eden_kernel::Kernel;
use eden_transput::collector::Collector;
use eden_transput::sink::SinkEject;

use crate::runner::fmt_f;
use crate::table::Table;
use crate::workloads;

const WAIT: Duration = Duration::from_secs(60);

/// E9 — checkpoint / crash / reactivate-on-invocation (§1, §2, §7).
pub fn e9() -> Vec<Table> {
    let mut t = Table::new(
        "E9: checkpoint and recovery vs file size",
        &[
            "records",
            "stable bytes",
            "checkpoint ms",
            "crash+reactivate ms",
            "contents intact",
        ],
    );
    let kernel = Kernel::new();
    register_fs_types(&kernel);
    for records in [100usize, 1_000, 10_000] {
        let lines: Vec<String> = workloads::sized_lines(records, 32)
            .into_iter()
            .map(|v| v.as_str().expect("line").to_owned())
            .collect();
        let file = kernel
            .spawn(Box::new(FileEject::from_lines(lines)))
            .expect("spawn file");
        let t0 = Instant::now();
        kernel
            .invoke(file, ops::CHECKPOINT, Value::Unit).wait()
            .expect("checkpoint");
        let checkpoint_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let stable_bytes = kernel
            .stable_store()
            .load(file)
            .expect("stable record")
            .bytes
            .len();
        let t1 = Instant::now();
        kernel.crash(file).expect("crash");
        // First invocation reactivates.
        let len = kernel
            .invoke(file, "Length", Value::Unit).wait()
            .expect("reactivate");
        let recover_ms = t1.elapsed().as_secs_f64() * 1000.0;
        t.row([
            records.to_string(),
            stable_bytes.to_string(),
            fmt_f(checkpoint_ms),
            fmt_f(recover_ms),
            (len == Value::Int(records as i64)).to_string(),
        ]);
    }
    kernel.shutdown();
    t.note("post-checkpoint mutations roll back on crash (see kernel tests); checkpoint cost scales with state size.");
    vec![t]
}

/// E10 — directories as Ejects: operations, listing-as-stream, and the
/// PATH-style concatenator (§2).
pub fn e10() -> Vec<Table> {
    let kernel = Kernel::new();
    register_fs_types(&kernel);

    let mut t = Table::new(
        "E10a: directory operations vs size",
        &["entries", "AddEntry total ms", "Lookup avg us", "List stream krec/s"],
    );
    for size in [10usize, 100, 1000] {
        let dir = kernel
            .spawn(Box::new(DirectoryEject::new()))
            .expect("spawn dir");
        let t0 = Instant::now();
        for i in 0..size {
            add_entry(&kernel, dir, &format!("entry-{i:05}"), eden_core::Uid::fresh())
                .expect("add");
        }
        let add_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let probes = 100.min(size);
        let t1 = Instant::now();
        for i in 0..probes {
            lookup(&kernel, dir, &format!("entry-{:05}", i * size / probes.max(1)))
                .expect("lookup");
        }
        let lookup_us = t1.elapsed().as_secs_f64() * 1e6 / probes as f64;
        kernel
            .invoke(dir, ops::LIST, Value::Unit).wait()
            .expect("list");
        let c = Collector::new();
        let t2 = Instant::now();
        kernel
            .spawn(Box::new(SinkEject::new(dir, 64, c.clone())))
            .expect("sink");
        let listed = c.wait_done(WAIT).expect("listing").len();
        let stream_krate = listed as f64 / t2.elapsed().as_secs_f64() / 1000.0;
        assert_eq!(listed, size);
        t.row([
            size.to_string(),
            fmt_f(add_ms),
            fmt_f(lookup_us),
            fmt_f(stream_krate),
        ]);
    }

    let mut c = Table::new(
        "E10b: PATH-style concatenator — lookup cost vs position of hit",
        &["directories", "hit in dir #", "invocations per lookup"],
    );
    for m in [1usize, 2, 4, 8] {
        let dirs: Vec<eden_core::Uid> = (0..m)
            .map(|_| kernel.spawn(Box::new(DirectoryEject::new())).expect("dir"))
            .collect();
        // The target lives in the last directory: worst case.
        let target = eden_core::Uid::fresh();
        add_entry(&kernel, dirs[m - 1], "needle", target).expect("add");
        let path = kernel
            .spawn(Box::new(DirConcatenatorEject::new(dirs)))
            .expect("concat");
        let before = kernel.metrics().snapshot();
        let found = lookup(&kernel, path, "needle").expect("lookup");
        let delta = kernel.metrics().snapshot().since(&before);
        assert_eq!(found, target);
        c.row([
            m.to_string(),
            m.to_string(),
            // One invocation on the concatenator + one per directory probed.
            delta.invocations.to_string(),
        ]);
    }
    c.note("measured invocations = 1 (concatenator) + m (probes) — the paper's 'multiple lookups' implementation.");
    kernel.shutdown();
    vec![t, c]
}
