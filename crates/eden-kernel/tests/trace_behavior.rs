//! Tracing: the kernel's event log observed end to end.

use eden_core::{EdenError, Value};
use eden_kernel::{
    EjectBehavior, EjectContext, Invocation, Kernel, KernelConfig, NodeId, ReplyHandle,
    TraceEvent,
};

struct Echo;

impl EjectBehavior for Echo {
    fn type_name(&self) -> &'static str {
        "Echo"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Echo" => reply.reply(Ok(inv.arg)),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

fn traced_kernel() -> Kernel {
    Kernel::with_config(KernelConfig {
        trace_capacity: 128,
        ..Default::default()
    })
}

#[test]
fn invocations_appear_in_the_trace() {
    let kernel = traced_kernel();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    for _ in 0..3 {
        kernel.invoke(echo, "Echo", Value::Unit).wait().unwrap();
    }
    let events = kernel.trace_events();
    let invokes = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Invoke { target, .. } if *target == echo))
        .count();
    assert_eq!(invokes, 3);
    // Activation is traced too.
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Activate { uid, .. } if *uid == echo)));
    kernel.shutdown();
}

#[test]
fn per_target_tallies() {
    let kernel = traced_kernel();
    let busy = kernel.spawn(Box::new(Echo)).unwrap();
    let quiet = kernel.spawn(Box::new(Echo)).unwrap();
    for _ in 0..5 {
        kernel.invoke(busy, "Echo", Value::Unit).wait().unwrap();
    }
    kernel.invoke(quiet, "Echo", Value::Unit).wait().unwrap();
    let tallies = kernel.invocations_by_target();
    assert_eq!(tallies[0], (busy, 5));
    assert_eq!(tallies[1], (quiet, 1));
    kernel.shutdown();
}

#[test]
fn crash_is_traced_as_stop() {
    let kernel = traced_kernel();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    kernel.crash(echo).unwrap();
    assert!(kernel
        .trace_events()
        .iter()
        .any(|e| matches!(e, TraceEvent::Stop { uid, crashed: true, .. } if *uid == echo)));
    kernel.shutdown();
}

#[test]
fn remote_invocations_render_remote() {
    let kernel = traced_kernel();
    let far = kernel.spawn_on(NodeId(2), Box::new(Echo)).unwrap();
    kernel.invoke(far, "Echo", Value::Unit).wait().unwrap();
    let rendered: Vec<String> = kernel.trace_events().iter().map(|e| e.to_string()).collect();
    assert!(
        rendered.iter().any(|l| l.contains("remote")),
        "trace: {rendered:?}"
    );
    kernel.shutdown();
}

#[test]
fn tracing_disabled_by_default() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    kernel.invoke(echo, "Echo", Value::Unit).wait().unwrap();
    assert!(kernel.trace_events().is_empty());
    assert!(kernel.invocations_by_target().is_empty());
    kernel.shutdown();
}
