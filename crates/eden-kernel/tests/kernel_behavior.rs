//! Behavioural tests for the kernel: invocation semantics, deferred
//! replies (passive output), activation/deactivation, checkpointing,
//! crash recovery, worker processes, and shutdown hygiene.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use eden_core::op::ops;
use eden_core::{EdenError, Value};
use eden_kernel::{
    EjectBehavior, EjectContext, EjectState, Invocation, Kernel, KernelConfig, NodeId,
    ReplyHandle, StableStore,
};

/// Replies to `Echo` with its argument and to `Fail` with an error.
struct Echo;

impl EjectBehavior for Echo {
    fn type_name(&self) -> &'static str {
        "Echo"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Echo" => reply.reply(Ok(inv.arg)),
            "Fail" => reply.reply(Err(EdenError::Application("requested".into()))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// A counter whose state survives checkpoints: the paper's minimal
/// "consistent state after reactivation" story.
struct Counter {
    count: i64,
}

impl Counter {
    fn from_passive(rep: Option<Value>) -> eden_core::Result<Box<dyn EjectBehavior>> {
        let count = match rep {
            Some(v) => v.field("count")?.as_int()?,
            None => 0,
        };
        Ok(Box::new(Counter { count }))
    }
}

impl EjectBehavior for Counter {
    fn type_name(&self) -> &'static str {
        "Counter"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Increment" => {
                self.count += 1;
                reply.reply(Ok(Value::Int(self.count)));
            }
            "Get" => reply.reply(Ok(Value::Int(self.count))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
    fn passive_representation(&self) -> Option<Value> {
        Some(Value::record([("count", Value::Int(self.count))]))
    }
}

/// Parks `Take` replies until `Put` supplies data: passive output in
/// miniature (a one-slot source).
#[derive(Default)]
struct Cell {
    data: Vec<Value>,
    waiting: Vec<ReplyHandle>,
}

impl EjectBehavior for Cell {
    fn type_name(&self) -> &'static str {
        "Cell"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Put" => {
                self.data.push(inv.arg);
                reply.reply(Ok(Value::Unit));
                while !self.waiting.is_empty() && !self.data.is_empty() {
                    let waiter = self.waiting.remove(0);
                    waiter.reply(Ok(self.data.remove(0)));
                }
            }
            "Take" => {
                if self.data.is_empty() {
                    reply.mark_deferred();
                    self.waiting.push(reply);
                } else {
                    reply.reply(Ok(self.data.remove(0)));
                }
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

#[test]
fn echo_roundtrip() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let got = kernel.invoke(echo, "Echo", Value::str("hi")).wait().unwrap();
    assert_eq!(got.as_str().unwrap(), "hi");
    kernel.shutdown();
}

#[test]
fn application_errors_propagate() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let err = kernel.invoke(echo, "Fail", Value::Unit).wait().unwrap_err();
    assert_eq!(err, EdenError::Application("requested".into()));
    kernel.shutdown();
}

#[test]
fn unknown_operation_is_rejected() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let err = kernel.invoke(echo, "Bogus", Value::Unit).wait().unwrap_err();
    assert!(matches!(err, EdenError::NoSuchOperation { .. }));
    kernel.shutdown();
}

#[test]
fn unknown_uid_is_rejected() {
    let kernel = Kernel::new();
    let err = kernel
        .invoke(eden_core::Uid::fresh(), "Echo", Value::Unit).wait()
        .unwrap_err();
    assert!(matches!(err, EdenError::NoSuchEject(_)));
    kernel.shutdown();
}

#[test]
fn async_invocation_does_not_suspend_sender() {
    // "The sending of an invocation does not suspend the execution of the
    // sending Eject" — send many invocations before collecting any reply.
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let pendings: Vec<_> = (0..64)
        .map(|i| kernel.invoke(echo, "Echo", Value::Int(i)))
        .collect();
    for (i, p) in pendings.into_iter().enumerate() {
        assert_eq!(p.wait().unwrap(), Value::Int(i as i64));
    }
    kernel.shutdown();
}

#[test]
fn describe_reports_type_name() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let name = kernel.invoke(echo, ops::DESCRIBE, Value::Unit).wait().unwrap();
    assert_eq!(name.as_str().unwrap(), "Echo");
    kernel.shutdown();
}

#[test]
fn deferred_reply_is_passive_output() {
    let kernel = Kernel::new();
    let cell = kernel.spawn(Box::new(Cell::default())).unwrap();
    // Take first: the reply is parked (a "partial vacuum").
    let pending = kernel.invoke(cell, "Take", Value::Unit);
    std::thread::sleep(Duration::from_millis(20));
    kernel.invoke(cell, "Put", Value::str("datum")).wait().unwrap();
    assert_eq!(pending.wait().unwrap().as_str().unwrap(), "datum");
    assert!(kernel.metrics().snapshot().deferred_replies >= 1);
    kernel.shutdown();
}

#[test]
fn multiple_parked_takes_serve_in_order() {
    let kernel = Kernel::new();
    let cell = kernel.spawn(Box::new(Cell::default())).unwrap();
    let p1 = kernel.invoke(cell, "Take", Value::Unit);
    let p2 = kernel.invoke(cell, "Take", Value::Unit);
    kernel.invoke(cell, "Put", Value::Int(1)).wait().unwrap();
    kernel.invoke(cell, "Put", Value::Int(2)).wait().unwrap();
    assert_eq!(p1.wait().unwrap(), Value::Int(1));
    assert_eq!(p2.wait().unwrap(), Value::Int(2));
    kernel.shutdown();
}

#[test]
fn deactivate_without_checkpoint_disappears() {
    // §7: the UnixFile Eject "deactivates itself and, since it has never
    // Checkpointed, disappears".
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    kernel.invoke(echo, ops::DEACTIVATE, Value::Unit).wait().unwrap();
    // The coordinator exits asynchronously; poll for disappearance.
    for _ in 0..100 {
        if kernel.eject_state(echo).is_none() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(kernel.eject_state(echo), None);
    let err = kernel.invoke(echo, "Echo", Value::Unit).wait().unwrap_err();
    assert!(matches!(err, EdenError::NoSuchEject(_)));
    kernel.shutdown();
}

fn register_counter(kernel: &Kernel) {
    kernel.register_type("Counter", Counter::from_passive);
}

#[test]
fn checkpoint_then_deactivate_then_reactivate_on_invocation() {
    let kernel = Kernel::new();
    register_counter(&kernel);
    let counter = kernel.spawn(Box::new(Counter { count: 0 })).unwrap();
    for _ in 0..3 {
        kernel.invoke(counter, "Increment", Value::Unit).wait().unwrap();
    }
    kernel.invoke(counter, ops::CHECKPOINT, Value::Unit).wait().unwrap();
    kernel.invoke(counter, ops::DEACTIVATE, Value::Unit).wait().unwrap();
    for _ in 0..100 {
        if kernel.eject_state(counter) == Some(EjectState::Passive) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(kernel.eject_state(counter), Some(EjectState::Passive));
    assert_eq!(kernel.passive_type_name(counter).as_deref(), Some("Counter"));
    // Invocation reactivates it with the checkpointed state.
    let got = kernel.invoke(counter, "Get", Value::Unit).wait().unwrap();
    assert_eq!(got, Value::Int(3));
    assert_eq!(kernel.eject_state(counter), Some(EjectState::Active));
    kernel.shutdown();
}

#[test]
fn crash_loses_post_checkpoint_state() {
    let kernel = Kernel::new();
    register_counter(&kernel);
    let counter = kernel.spawn(Box::new(Counter { count: 0 })).unwrap();
    kernel.invoke(counter, "Increment", Value::Unit).wait().unwrap();
    kernel.invoke(counter, "Increment", Value::Unit).wait().unwrap();
    kernel.invoke(counter, ops::CHECKPOINT, Value::Unit).wait().unwrap();
    // Post-checkpoint work is volatile.
    kernel.invoke(counter, "Increment", Value::Unit).wait().unwrap();
    kernel.crash(counter).unwrap();
    let got = kernel.invoke(counter, "Get", Value::Unit).wait().unwrap();
    assert_eq!(got, Value::Int(2), "state must roll back to the checkpoint");
    kernel.shutdown();
}

#[test]
fn crash_without_checkpoint_destroys() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    kernel.crash(echo).unwrap();
    assert_eq!(kernel.eject_state(echo), None);
    kernel.shutdown();
}

#[test]
fn crash_drops_parked_replies() {
    let kernel = Kernel::new();
    let cell = kernel.spawn(Box::new(Cell::default())).unwrap();
    let pending = kernel.invoke(cell, "Take", Value::Unit);
    std::thread::sleep(Duration::from_millis(20));
    kernel.crash(cell).unwrap();
    assert_eq!(pending.wait().unwrap_err(), EdenError::EjectCrashed(cell));
    kernel.shutdown();
}

#[test]
fn checkpoint_on_non_checkpointing_type_fails() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let err = kernel
        .invoke(echo, ops::CHECKPOINT, Value::Unit).wait()
        .unwrap_err();
    assert!(matches!(err, EdenError::Application(_)));
    kernel.shutdown();
}

#[test]
fn whole_system_restart_from_stable_store() {
    // Simulate a machine crash: the kernel object is discarded; a new one
    // is built over the surviving stable store.
    let store = StableStore::new();
    let counter;
    {
        let kernel = Kernel::with_stable_store(KernelConfig::default(), store.clone());
        register_counter(&kernel);
        counter = kernel.spawn(Box::new(Counter { count: 0 })).unwrap();
        for _ in 0..5 {
            kernel.invoke(counter, "Increment", Value::Unit).wait().unwrap();
        }
        kernel.invoke(counter, ops::CHECKPOINT, Value::Unit).wait().unwrap();
        kernel.shutdown();
    }
    let kernel2 = Kernel::with_stable_store(KernelConfig::default(), store);
    register_counter(&kernel2);
    let got = kernel2.invoke(counter, "Get", Value::Unit).wait().unwrap();
    assert_eq!(got, Value::Int(5));
    kernel2.shutdown();
}

#[test]
fn corrupt_checkpoint_surfaces_cleanly() {
    // Bit-rot on stable storage must surface as CorruptCheckpoint at the
    // reactivating invocation, not a panic or a hang.
    let kernel = Kernel::new();
    register_counter(&kernel);
    let counter = kernel.spawn(Box::new(Counter { count: 3 })).unwrap();
    kernel.invoke(counter, ops::CHECKPOINT, Value::Unit).wait().unwrap();
    kernel.crash(counter).unwrap();
    // Corrupt the passive representation in place.
    kernel
        .stable_store()
        .store(counter, "Counter", vec![0xff, 0x13, 0x37].into())
        .unwrap();
    let err = kernel.invoke(counter, "Get", Value::Unit).wait().unwrap_err();
    assert!(
        matches!(err, EdenError::CorruptCheckpoint(_)),
        "got: {err}"
    );
    kernel.shutdown();
}

#[test]
fn checkpoint_with_wrong_shape_fails_reconstruction() {
    // A decodable value of the wrong shape is the factory's problem and
    // must also fail cleanly.
    let kernel = Kernel::new();
    register_counter(&kernel);
    let counter = kernel.spawn(Box::new(Counter { count: 1 })).unwrap();
    kernel.invoke(counter, ops::CHECKPOINT, Value::Unit).wait().unwrap();
    kernel.crash(counter).unwrap();
    kernel.stable_store().store(
        counter,
        "Counter",
        eden_core::wire::encode(&Value::str("not a counter record")).into(),
    )
    .unwrap();
    let err = kernel.invoke(counter, "Get", Value::Unit).wait().unwrap_err();
    assert!(matches!(err, EdenError::BadParameter(_)), "got: {err}");
    kernel.shutdown();
}

#[test]
fn reactivation_without_registered_type_fails() {
    let store = StableStore::new();
    let counter;
    {
        let kernel = Kernel::with_stable_store(KernelConfig::default(), store.clone());
        register_counter(&kernel);
        counter = kernel.spawn(Box::new(Counter { count: 0 })).unwrap();
        kernel.invoke(counter, ops::CHECKPOINT, Value::Unit).wait().unwrap();
        kernel.shutdown();
    }
    let kernel2 = Kernel::with_stable_store(KernelConfig::default(), store);
    // No register_type: the constructor is missing.
    let err = kernel2.invoke(counter, "Get", Value::Unit).wait().unwrap_err();
    assert!(matches!(err, EdenError::Application(_)));
    kernel2.shutdown();
}

/// An Eject whose worker process does the computation and posts the result
/// back as an internal event — the coordinator/worker organisation of §4.
struct Delegator {
    parked: Option<ReplyHandle>,
}

impl EjectBehavior for Delegator {
    fn type_name(&self) -> &'static str {
        "Delegator"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Compute" => {
                let n = inv.arg.as_int().unwrap_or(0);
                reply.mark_deferred();
                self.parked = Some(reply);
                ctx.spawn_process("worker", move |pctx| {
                    let result = Value::Int(n * n);
                    let _ = pctx.post_internal(result);
                });
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
    fn internal(&mut self, _ctx: &EjectContext, event: Value) {
        if let Some(reply) = self.parked.take() {
            reply.reply(Ok(event));
        }
    }
}

#[test]
fn worker_process_posts_internal_event() {
    let kernel = Kernel::new();
    let d = kernel.spawn(Box::new(Delegator { parked: None })).unwrap();
    let got = kernel.invoke(d, "Compute", Value::Int(9)).wait().unwrap();
    assert_eq!(got, Value::Int(81));
    assert!(kernel.metrics().snapshot().internal_messages >= 1);
    kernel.shutdown();
}

#[test]
fn invocations_after_shutdown_fail_fast() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    kernel.shutdown();
    let err = kernel.invoke(echo, "Echo", Value::Unit).wait().unwrap_err();
    assert_eq!(err, EdenError::KernelShutdown);
}

#[test]
fn shutdown_is_idempotent() {
    let kernel = Kernel::new();
    kernel.spawn(Box::new(Echo)).unwrap();
    kernel.shutdown();
    kernel.shutdown();
}

#[test]
fn spawn_after_shutdown_fails() {
    let kernel = Kernel::new();
    kernel.shutdown();
    assert!(kernel.spawn(Box::new(Echo)).is_err());
}

#[test]
fn drop_shuts_down_cleanly() {
    // No explicit shutdown: dropping the last handle must not hang and
    // must stop the coordinators.
    let kernel = Kernel::new();
    let _ = kernel.spawn(Box::new(Echo)).unwrap();
    let _ = kernel.spawn(Box::new(Cell::default())).unwrap();
    drop(kernel);
}

#[test]
fn metrics_count_invocations_and_replies() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let before = kernel.metrics().snapshot();
    for _ in 0..10 {
        kernel.invoke(echo, "Echo", Value::str("x")).wait().unwrap();
    }
    let delta = kernel.metrics().snapshot().since(&before);
    assert_eq!(delta.invocations, 10);
    assert_eq!(delta.replies, 10);
    assert_eq!(delta.bytes_invoked, 10);
    assert_eq!(delta.bytes_replied, 10);
    kernel.shutdown();
}

#[test]
fn cross_node_invocations_are_counted_remote() {
    let kernel = Kernel::new();
    let local = kernel.spawn_on(NodeId(0), Box::new(Echo)).unwrap();
    let remote = kernel.spawn_on(NodeId(1), Box::new(Echo)).unwrap();
    let before = kernel.metrics().snapshot();
    kernel.invoke(local, "Echo", Value::Unit).wait().unwrap();
    kernel.invoke(remote, "Echo", Value::Unit).wait().unwrap();
    let delta = kernel.metrics().snapshot().since(&before);
    assert_eq!(delta.invocations, 2);
    assert_eq!(delta.remote_invocations, 1);
    assert_eq!(kernel.node_of(remote), NodeId(1));
    kernel.shutdown();
}

#[test]
fn eject_to_eject_invocation() {
    // A forwards to B: service composition via invocation, the Eden norm.
    struct Forwarder {
        next: eden_core::Uid,
    }
    impl EjectBehavior for Forwarder {
        fn type_name(&self) -> &'static str {
            "Forwarder"
        }
        fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
            let result = ctx.invoke(self.next, inv.op, inv.arg).wait();
            reply.reply(result);
        }
    }
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let fwd = kernel.spawn(Box::new(Forwarder { next: echo })).unwrap();
    let got = kernel.invoke(fwd, "Echo", Value::str("via")).wait().unwrap();
    assert_eq!(got.as_str().unwrap(), "via");
    kernel.shutdown();
}

#[test]
fn concurrent_clients_are_serialized_per_eject() {
    let kernel = Kernel::new();
    register_counter(&kernel);
    let counter = kernel.spawn(Box::new(Counter { count: 0 })).unwrap();
    let done = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let k = kernel.clone();
        let done = Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                k.invoke(counter, "Increment", Value::Unit).wait().unwrap();
            }
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let got = kernel.invoke(counter, "Get", Value::Unit).wait().unwrap();
    assert_eq!(got, Value::Int(400));
    kernel.shutdown();
}

#[test]
fn injected_latency_slows_invocations() {
    let kernel = Kernel::with_config(KernelConfig {
        invocation_latency: Some(Duration::from_millis(5)),
        ..Default::default()
    });
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let start = std::time::Instant::now();
    for _ in 0..4 {
        kernel.invoke(echo, "Echo", Value::Unit).wait().unwrap();
    }
    assert!(start.elapsed() >= Duration::from_millis(20));
    kernel.shutdown();
}
