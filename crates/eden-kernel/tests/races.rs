//! Race hammering: the registry paths that are easy to get wrong —
//! concurrent reactivation, crash-vs-invoke, shutdown-vs-traffic.

use std::sync::Arc;
use std::time::Duration;

use eden_core::op::ops;
use eden_core::{EdenError, Value};
use eden_kernel::{
    EjectBehavior, EjectContext, EjectState, Invocation, Kernel, ReplyHandle,
};

struct Counter {
    count: i64,
}

impl Counter {
    fn from_passive(rep: Option<Value>) -> eden_core::Result<Box<dyn EjectBehavior>> {
        let count = match rep {
            Some(v) => v.field("count")?.as_int()?,
            None => 0,
        };
        Ok(Box::new(Counter { count }))
    }
}

impl EjectBehavior for Counter {
    fn type_name(&self) -> &'static str {
        "Counter"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Increment" => {
                self.count += 1;
                reply.reply(Ok(Value::Int(self.count)));
            }
            "Get" => reply.reply(Ok(Value::Int(self.count))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
    fn passive_representation(&self) -> Option<Value> {
        Some(Value::record([("count", Value::Int(self.count))]))
    }
}

#[test]
fn concurrent_invocations_reactivate_exactly_once() {
    let kernel = Kernel::new();
    kernel.register_type("Counter", Counter::from_passive);
    let counter = kernel.spawn(Box::new(Counter { count: 0 })).unwrap();
    kernel.invoke(counter, ops::CHECKPOINT, Value::Unit).wait().unwrap();
    kernel.invoke(counter, ops::DEACTIVATE, Value::Unit).wait().unwrap();
    for _ in 0..200 {
        if kernel.eject_state(counter) == Some(EjectState::Passive) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(kernel.eject_state(counter), Some(EjectState::Passive));

    let before = kernel.metrics().snapshot();
    let barrier = Arc::new(std::sync::Barrier::new(16));
    let handles: Vec<_> = (0..16)
        .map(|_| {
            let kernel = kernel.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                kernel.invoke(counter, "Increment", Value::Unit).wait().unwrap()
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let delta = kernel.metrics().snapshot().since(&before);
    assert_eq!(
        delta.activations, 1,
        "exactly one reactivation despite 16 racing invokers"
    );
    let got = kernel.invoke(counter, "Get", Value::Unit).wait().unwrap();
    assert_eq!(got, Value::Int(16), "no increment lost or duplicated");
    kernel.shutdown();
}

#[test]
fn crash_reactivate_cycles_under_load() {
    // Clients hammer a counter while it is repeatedly crashed; every
    // reply must be either a correct reply or a clean fault — and the
    // counter must keep recovering to its checkpoint.
    let kernel = Kernel::new();
    kernel.register_type("Counter", Counter::from_passive);
    let counter = kernel.spawn(Box::new(Counter { count: 0 })).unwrap();
    kernel.invoke(counter, ops::CHECKPOINT, Value::Unit).wait().unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let kernel = kernel.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut faults = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match kernel.invoke(counter, "Increment", Value::Unit).wait() {
                        Ok(_) => ok += 1,
                        Err(
                            EdenError::EjectCrashed(_)
                            | EdenError::NoSuchEject(_)
                            | EdenError::KernelShutdown,
                        ) => faults += 1,
                        Err(other) => panic!("unexpected error class: {other}"),
                    }
                }
                (ok, faults)
            })
        })
        .collect();
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(5));
        let _ = kernel.crash(counter);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut total_ok = 0;
    for c in clients {
        let (ok, _faults) = c.join().unwrap();
        total_ok += ok;
    }
    assert!(total_ok > 0, "some increments must have landed");
    // The counter still answers and its state is a valid roll-back point
    // (>= 0, <= total successful increments).
    let got = kernel
        .invoke(counter, "Get", Value::Unit).wait()
        .unwrap()
        .as_int()
        .unwrap();
    assert!(got >= 0 && got as u64 <= total_ok);
    kernel.shutdown();
}

#[test]
fn eject_lifecycle_soak() {
    // 5000 spawn/use/deactivate cycles: the registry, node table and
    // stable store must end exactly where they started.
    let kernel = Kernel::new();
    for i in 0..5_000i64 {
        let c = kernel.spawn(Box::new(Counter { count: i })).unwrap();
        let got = kernel.invoke(c, "Get", Value::Unit).wait().unwrap();
        assert_eq!(got, Value::Int(i));
        kernel
            .invoke(c, ops::DEACTIVATE, Value::Unit).wait()
            .unwrap();
    }
    for _ in 0..500 {
        if kernel.eject_count() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(kernel.eject_count(), 0, "no registry leaks");
    assert!(kernel.stable_store().is_empty(), "no stray checkpoints");
    kernel.shutdown();
}

#[test]
fn shutdown_under_traffic_terminates() {
    // Shutdown while clients are mid-invocation must converge promptly
    // and leave clients with clean errors.
    let kernel = Kernel::new();
    let echo = kernel
        .spawn(Box::new({
            struct Echo;
            impl EjectBehavior for Echo {
                fn type_name(&self) -> &'static str {
                    "Echo"
                }
                fn handle(&mut self, _: &EjectContext, inv: Invocation, reply: ReplyHandle) {
                    reply.reply(Ok(inv.arg));
                }
            }
            Echo
        }))
        .unwrap();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let kernel = kernel.clone();
            std::thread::spawn(move || {
                let mut results = 0u64;
                for i in 0..10_000 {
                    match kernel.invoke(echo, "Echo", Value::Int(i)).wait() {
                        Ok(_) => results += 1,
                        Err(EdenError::KernelShutdown | EdenError::EjectCrashed(_)) => break,
                        Err(other) => panic!("unexpected: {other}"),
                    }
                }
                results
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    let t0 = std::time::Instant::now();
    kernel.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown must not stall behind traffic"
    );
    for c in clients {
        c.join().unwrap();
    }
}
