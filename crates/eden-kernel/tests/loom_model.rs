//! Interleaving models for the invocation plane, compiled only under
//! `RUSTFLAGS="--cfg loom"` (see `vendor/loom` for what `model` means in
//! this offline build).
//!
//! These tests do not drive the real [`Kernel`]: loom-style checking
//! works on a distilled copy of the algorithm whose state space is small
//! enough to explore. The distilled object here is the one-shot reply
//! cell behind `PendingReply::Retrying` (`crates/eden-kernel/src/
//! invocation.rs` / `options.rs`), whose contract under concurrency is:
//!
//! 1. the caller observes exactly one terminal outcome — a reply or a
//!    deadline error, never both, never neither;
//! 2. a reply landing after the deadline was consumed is discarded, not
//!    delivered twice or panicked on;
//! 3. no re-send is issued once expiry has been observed, and the
//!    attempt count never exceeds the policy budget.
#![cfg(loom)]

use loom::sync::atomic::{AtomicU32, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// The distilled reply cell. `Waiting` can move to exactly one of the
/// terminal states; `Retryable` hands the caller a re-send decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Waiting,
    Retryable,
    Replied(u32),
    Expired,
}

struct ReplyCell {
    slot: Mutex<Slot>,
    discarded: AtomicU32,
}

impl ReplyCell {
    fn new() -> Self {
        ReplyCell {
            slot: Mutex::new(Slot::Waiting),
            discarded: AtomicU32::new(0),
        }
    }

    /// Responder side: deliver `outcome`. A delivery that loses the race
    /// with expiry is counted as discarded — mirroring `ReplyHandle`
    /// sending into a channel nobody will drain — never double-stored.
    fn complete(&self, outcome: Slot) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if *slot == Slot::Waiting {
            *slot = outcome;
            true
        } else {
            self.discarded.fetch_add(1, Ordering::SeqCst);
            false
        }
    }

    /// Caller side: give up on the deadline. Only a still-waiting cell
    /// can expire; a reply that already landed wins.
    fn expire(&self) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if *slot == Slot::Waiting {
            *slot = Slot::Expired;
            true
        } else {
            false
        }
    }

    /// Caller side: observe a retryable failure and atomically re-arm
    /// for the next attempt. In `RetryState::resend` the re-send happens
    /// on the caller's own thread *after* the deadline check, under the
    /// same observation that saw the failure — so re-arming must be
    /// atomic with the deadline-not-expired check.
    fn rearm_if_retryable(&self, expired_observed: bool) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if *slot == Slot::Retryable && !expired_observed {
            *slot = Slot::Waiting;
            true
        } else {
            false
        }
    }

    fn read(&self) -> Slot {
        *self.slot.lock().unwrap()
    }
}

#[test]
fn reply_and_deadline_race_yields_exactly_one_terminal() {
    loom::model(|| {
        let cell = Arc::new(ReplyCell::new());

        let responder = {
            let cell = cell.clone();
            thread::spawn(move || cell.complete(Slot::Replied(7)))
        };
        let deadline = {
            let cell = cell.clone();
            thread::spawn(move || cell.expire())
        };

        let replied = responder.join().unwrap();
        let expired = deadline.join().unwrap();

        // Exactly one side won, and the cell holds that side's terminal.
        assert!(replied ^ expired, "both or neither terminal won");
        match cell.read() {
            Slot::Replied(v) => {
                assert!(replied);
                assert_eq!(v, 7);
            }
            Slot::Expired => assert!(expired),
            other => panic!("non-terminal final state {other:?}"),
        }
        // A losing reply is discarded exactly once, never redelivered.
        let discarded = cell.discarded.load(Ordering::SeqCst);
        assert_eq!(discarded, u32::from(expired));
    });
}

#[test]
fn late_reply_after_expiry_is_discarded_not_redelivered() {
    loom::model(|| {
        let cell = Arc::new(ReplyCell::new());
        assert!(cell.expire());

        let late = {
            let cell = cell.clone();
            thread::spawn(move || cell.complete(Slot::Replied(9)))
        };
        assert!(!late.join().unwrap());
        assert_eq!(cell.read(), Slot::Expired);
        assert_eq!(cell.discarded.load(Ordering::SeqCst), 1);
    });
}

#[test]
fn no_resend_after_expiry_and_attempts_stay_bounded() {
    const MAX_ATTEMPTS: u32 = 3;
    loom::model(|| {
        let cell = Arc::new(ReplyCell::new());

        // The responder fails retryably once, then (if re-armed in time)
        // replies for real. The deadline races the whole affair.
        let responder = {
            let cell = cell.clone();
            thread::spawn(move || {
                cell.complete(Slot::Retryable);
                // Wait for the caller's re-arm or a terminal verdict.
                loop {
                    match cell.read() {
                        Slot::Waiting => {
                            cell.complete(Slot::Replied(1));
                            break;
                        }
                        Slot::Retryable => thread::yield_now(),
                        Slot::Replied(_) | Slot::Expired => break,
                    }
                }
            })
        };
        let deadline = {
            let cell = cell.clone();
            thread::spawn(move || cell.expire())
        };

        // Caller loop: poll; on a retryable failure, check the deadline
        // and re-send; stop on any terminal.
        let mut attempts = 0u32;
        let outcome = loop {
            match cell.read() {
                Slot::Retryable => {
                    if attempts + 1 >= MAX_ATTEMPTS {
                        break Slot::Expired;
                    }
                    // `expired_observed` stands for deadline_remaining()
                    // == 0 having been seen by this caller.
                    if cell.rearm_if_retryable(false) {
                        attempts += 1;
                    }
                }
                Slot::Waiting => thread::yield_now(),
                terminal => break terminal,
            }
        };

        responder.join().unwrap();
        let expired = deadline.join().unwrap();

        assert!(attempts < MAX_ATTEMPTS, "attempt budget exceeded");
        match outcome {
            Slot::Replied(_) => {
                // The reply beat the deadline; expiry must have lost.
                assert!(!expired, "caller saw a reply after expiry won");
            }
            Slot::Expired => {
                // Once expiry is terminal, the cell can never leave it:
                // re-arming checks state under the same lock.
                assert!(!cell.rearm_if_retryable(false));
                assert_eq!(cell.read(), Slot::Expired);
            }
            other => panic!("caller stopped on non-terminal {other:?}"),
        }
    });
}
