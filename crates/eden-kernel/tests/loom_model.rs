//! Interleaving models for the invocation plane, compiled only under
//! `RUSTFLAGS="--cfg loom"` (see `vendor/loom` for what `model` means in
//! this offline build).
//!
//! These tests do not drive the real [`Kernel`]: loom-style checking
//! works on a distilled copy of the algorithm whose state space is small
//! enough to explore. The distilled object here is the one-shot reply
//! cell behind `PendingReply::Retrying` (`crates/eden-kernel/src/
//! invocation.rs` / `options.rs`), whose contract under concurrency is:
//!
//! 1. the caller observes exactly one terminal outcome — a reply or a
//!    deadline error, never both, never neither;
//! 2. a reply landing after the deadline was consumed is discarded, not
//!    delivered twice or panicked on;
//! 3. no re-send is issued once expiry has been observed, and the
//!    attempt count never exceeds the policy budget.
#![cfg(loom)]

use loom::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// The distilled reply cell. `Waiting` can move to exactly one of the
/// terminal states; `Retryable` hands the caller a re-send decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Waiting,
    Retryable,
    Replied(u32),
    Expired,
}

struct ReplyCell {
    slot: Mutex<Slot>,
    discarded: AtomicU32,
}

impl ReplyCell {
    fn new() -> Self {
        ReplyCell {
            slot: Mutex::new(Slot::Waiting),
            discarded: AtomicU32::new(0),
        }
    }

    /// Responder side: deliver `outcome`. A delivery that loses the race
    /// with expiry is counted as discarded — mirroring `ReplyHandle`
    /// sending into a channel nobody will drain — never double-stored.
    fn complete(&self, outcome: Slot) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if *slot == Slot::Waiting {
            *slot = outcome;
            true
        } else {
            self.discarded.fetch_add(1, Ordering::SeqCst);
            false
        }
    }

    /// Caller side: give up on the deadline. Only a still-waiting cell
    /// can expire; a reply that already landed wins.
    fn expire(&self) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if *slot == Slot::Waiting {
            *slot = Slot::Expired;
            true
        } else {
            false
        }
    }

    /// Caller side: observe a retryable failure and atomically re-arm
    /// for the next attempt. In `RetryState::resend` the re-send happens
    /// on the caller's own thread *after* the deadline check, under the
    /// same observation that saw the failure — so re-arming must be
    /// atomic with the deadline-not-expired check.
    fn rearm_if_retryable(&self, expired_observed: bool) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if *slot == Slot::Retryable && !expired_observed {
            *slot = Slot::Waiting;
            true
        } else {
            false
        }
    }

    fn read(&self) -> Slot {
        *self.slot.lock().unwrap()
    }
}

#[test]
fn reply_and_deadline_race_yields_exactly_one_terminal() {
    loom::model(|| {
        let cell = Arc::new(ReplyCell::new());

        let responder = {
            let cell = cell.clone();
            thread::spawn(move || cell.complete(Slot::Replied(7)))
        };
        let deadline = {
            let cell = cell.clone();
            thread::spawn(move || cell.expire())
        };

        let replied = responder.join().unwrap();
        let expired = deadline.join().unwrap();

        // Exactly one side won, and the cell holds that side's terminal.
        assert!(replied ^ expired, "both or neither terminal won");
        match cell.read() {
            Slot::Replied(v) => {
                assert!(replied);
                assert_eq!(v, 7);
            }
            Slot::Expired => assert!(expired),
            other => panic!("non-terminal final state {other:?}"),
        }
        // A losing reply is discarded exactly once, never redelivered.
        let discarded = cell.discarded.load(Ordering::SeqCst);
        assert_eq!(discarded, u32::from(expired));
    });
}

#[test]
fn late_reply_after_expiry_is_discarded_not_redelivered() {
    loom::model(|| {
        let cell = Arc::new(ReplyCell::new());
        assert!(cell.expire());

        let late = {
            let cell = cell.clone();
            thread::spawn(move || cell.complete(Slot::Replied(9)))
        };
        assert!(!late.join().unwrap());
        assert_eq!(cell.read(), Slot::Expired);
        assert_eq!(cell.discarded.load(Ordering::SeqCst), 1);
    });
}

#[test]
fn no_resend_after_expiry_and_attempts_stay_bounded() {
    const MAX_ATTEMPTS: u32 = 3;
    loom::model(|| {
        let cell = Arc::new(ReplyCell::new());

        // The responder fails retryably once, then (if re-armed in time)
        // replies for real. The deadline races the whole affair.
        let responder = {
            let cell = cell.clone();
            thread::spawn(move || {
                cell.complete(Slot::Retryable);
                // Wait for the caller's re-arm or a terminal verdict.
                loop {
                    match cell.read() {
                        Slot::Waiting => {
                            cell.complete(Slot::Replied(1));
                            break;
                        }
                        Slot::Retryable => thread::yield_now(),
                        Slot::Replied(_) | Slot::Expired => break,
                    }
                }
            })
        };
        let deadline = {
            let cell = cell.clone();
            thread::spawn(move || cell.expire())
        };

        // Caller loop: poll; on a retryable failure, check the deadline
        // and re-send; stop on any terminal.
        let mut attempts = 0u32;
        let outcome = loop {
            match cell.read() {
                Slot::Retryable => {
                    if attempts + 1 >= MAX_ATTEMPTS {
                        break Slot::Expired;
                    }
                    // `expired_observed` stands for deadline_remaining()
                    // == 0 having been seen by this caller.
                    if cell.rearm_if_retryable(false) {
                        attempts += 1;
                    }
                }
                Slot::Waiting => thread::yield_now(),
                terminal => break terminal,
            }
        };

        responder.join().unwrap();
        let expired = deadline.join().unwrap();

        assert!(attempts < MAX_ATTEMPTS, "attempt budget exceeded");
        match outcome {
            Slot::Replied(_) => {
                // The reply beat the deadline; expiry must have lost.
                assert!(!expired, "caller saw a reply after expiry won");
            }
            Slot::Expired => {
                // Once expiry is terminal, the cell can never leave it:
                // re-arming checks state under the same lock.
                assert!(!cell.rearm_if_retryable(false));
                assert_eq!(cell.read(), Slot::Expired);
            }
            other => panic!("caller stopped on non-terminal {other:?}"),
        }
    });
}

// ---------------------------------------------------------------------
// Park-vs-deliver: the mailbox parking bit behind the N-worker scheduler
// (`crates/eden-kernel/src/mailbox.rs::wake_after_push` /
// `sched.rs::resume`). The distilled contract:
//
// 1. every delivered message is eventually processed — a sender racing
//    the consumer's park transition can never strand mail behind a
//    PARKED bit with no run-queue entry (the lost-wakeup);
// 2. whenever a run-queue entry is claimed, the behaviour body is in its
//    slot — the consumer publishes the body *before* advertising PARKED,
//    so a racing wake always finds something to resume;
// 3. the bit ends PARKED with the mailbox and run queue both empty;
// 4. every bit transition the model performs is an edge of
//    `mailbox::spec::TRANSITIONS` — the same declarative table
//    `eden-lint --protocol` checks the real code against. Stores learn
//    their from-state via `swap`, so an off-spec edge (a pickup from
//    PARKED, a reclaim from RUNNING) panics here instead of hiding.

use eden_kernel::mailbox::park as pk;
use eden_kernel::mailbox::spec;

struct ParkModel {
    bit: loom::sync::atomic::AtomicU8,
    /// Pending mail (the ring, reduced to a count).
    mailq: Mutex<u32>,
    /// The behaviour body: present iff the task is parked or queued.
    body: Mutex<Option<()>>,
    /// Run-queue entries naming this task.
    runq: Mutex<u32>,
    processed: AtomicU32,
}

impl ParkModel {
    fn new() -> Self {
        ParkModel {
            bit: loom::sync::atomic::AtomicU8::new(pk::PARKED),
            mailq: Mutex::new(0),
            body: Mutex::new(Some(())),
            runq: Mutex::new(0),
            processed: AtomicU32::new(0),
        }
    }

    /// Sender side: push, then run the wake protocol exactly as
    /// `wake_after_push` does.
    fn send(&self) {
        *self.mailq.lock().unwrap() += 1;
        loop {
            match self.bit.load(Ordering::Acquire) {
                pk::PARKED => {
                    if self
                        .bit
                        .compare_exchange(
                            pk::PARKED,
                            pk::QUEUED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        spec::assert_transition(pk::PARKED, pk::QUEUED);
                        *self.runq.lock().unwrap() += 1;
                        return;
                    }
                }
                pk::RUNNING => {
                    if self
                        .bit
                        .compare_exchange(
                            pk::RUNNING,
                            pk::DIRTY,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        spec::assert_transition(pk::RUNNING, pk::DIRTY);
                        return;
                    }
                }
                _ => return, // QUEUED or DIRTY: someone else's wake covers us.
            }
        }
    }

    /// Worker side: claim one run-queue entry and resume, exactly as
    /// `Scheduler::resume` orders its park attempt. Returns false when
    /// no entry was claimable.
    fn try_resume(&self) -> bool {
        {
            let mut q = self.runq.lock().unwrap();
            if *q == 0 {
                return false;
            }
            *q -= 1;
        }
        let prev = self.bit.swap(pk::RUNNING, Ordering::AcqRel);
        spec::assert_transition(prev, pk::RUNNING);
        // Invariant 2: a claimed entry always finds the body in place.
        let body = self
            .body
            .lock()
            .unwrap()
            .take()
            .expect("run-queue entry with no body: park published too early");
        let mut held = body;
        loop {
            let popped = {
                let mut m = self.mailq.lock().unwrap();
                if *m > 0 {
                    *m -= 1;
                    true
                } else {
                    false
                }
            };
            if popped {
                self.processed.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            // Publish the body BEFORE the CAS advertises PARKED; the
            // swapped order is the lost-wakeup this model exists to rule
            // out.
            *self.body.lock().unwrap() = Some(held);
            match self.bit.compare_exchange(
                pk::RUNNING,
                pk::PARKED,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    spec::assert_transition(pk::RUNNING, pk::PARKED);
                    return true;
                }
                Err(_) => {
                    // A sender dirtied us: reclaim the body and drain on.
                    let prev = self.bit.swap(pk::RUNNING, Ordering::AcqRel);
                    spec::assert_transition(prev, pk::RUNNING);
                    held = self.body.lock().unwrap().take().expect(
                        "body stolen while RUNNING: task leaked into a run queue",
                    );
                }
            }
        }
    }
}

#[test]
fn park_vs_deliver_loses_no_wakeups() {
    const SENDERS: u32 = 2;
    const PER_SENDER: u32 = 2;
    loom::model(|| {
        let model = Arc::new(ParkModel::new());

        let senders: Vec<_> = (0..SENDERS)
            .map(|_| {
                let model = model.clone();
                thread::spawn(move || {
                    for _ in 0..PER_SENDER {
                        model.send();
                    }
                })
            })
            .collect();
        let worker = {
            let model = model.clone();
            thread::spawn(move || {
                // A single worker drains until the protocol says quiet;
                // the spin bound converts a lost wakeup into a visible
                // assertion instead of a hang.
                let mut spins = 0u32;
                while model.processed.load(Ordering::SeqCst) < SENDERS * PER_SENDER {
                    if !model.try_resume() {
                        spins += 1;
                        assert!(spins < 100_000, "mail stranded: wakeup lost");
                        thread::yield_now();
                    }
                }
            })
        };

        for s in senders {
            s.join().unwrap();
        }
        worker.join().unwrap();

        // A sender whose wake lost the race to the worker's drain may
        // leave one stale run-queue entry (bit QUEUED, mailbox empty);
        // the real scheduler resumes it into an immediate re-park, so
        // the model does the same before judging quiescence.
        while model.try_resume() {}

        // Invariants 1 and 3: everything delivered, everything quiet.
        assert_eq!(
            model.processed.load(Ordering::SeqCst),
            SENDERS * PER_SENDER
        );
        assert_eq!(*model.mailq.lock().unwrap(), 0);
        assert_eq!(*model.runq.lock().unwrap(), 0);
        assert_eq!(model.bit.load(Ordering::Acquire), pk::PARKED);
        assert!(model.body.lock().unwrap().is_some());
    });
}

// ---------------------------------------------------------------------
// Dispatch fast path: the two lock-free structures the N-worker
// scheduler now runs on (`crates/eden-kernel/src/deque.rs` /
// `sched.rs::LifoSlot`). Neither can be driven through the real
// `Scheduler` under loom — the distilled copies below preserve exactly
// the orderings the real code uses, shrunk to a checkable state space.
//
// The vendored loom exposes no `AtomicIsize`, so the deque model keeps
// `top`/`bottom` in `AtomicUsize` starting from a base offset large
// enough that the owner's transient `bottom - 1` during `pop` never
// wraps. Indices are monotonic in the real deque too; only the
// representation differs.

/// Distilled Chase–Lev deque: same field roles, same fences, same
/// last-element CAS as `WorkDeque`. Cells hold plain task ids instead
/// of `Arc` pointers (no `AtomicPtr` in the shim) — ownership transfer
/// is modelled by the claim ledger in the test.
mod dq {
    use loom::sync::atomic::{fence, AtomicUsize, Ordering};

    pub const CAP: usize = 4;
    /// Start offset for `top`/`bottom`: keeps `bottom - 1` meaningful
    /// even when the owner probes an empty deque.
    pub const BASE: usize = 8;

    pub struct DequeModel {
        top: AtomicUsize,
        bottom: AtomicUsize,
        cells: [AtomicUsize; CAP],
    }

    impl DequeModel {
        pub fn new() -> Self {
            DequeModel {
                top: AtomicUsize::new(BASE),
                bottom: AtomicUsize::new(BASE),
                cells: [const { AtomicUsize::new(0) }; CAP],
            }
        }

        /// Owner-only push; `false` = full (the real caller spills to
        /// the injector).
        pub fn push(&self, task: usize) -> bool {
            let b = self.bottom.load(Ordering::Relaxed);
            let t = self.top.load(Ordering::Acquire);
            if b - t >= CAP {
                return false;
            }
            self.cells[b % CAP].store(task, Ordering::Relaxed);
            fence(Ordering::Release);
            self.bottom.store(b + 1, Ordering::Relaxed);
            true
        }

        /// Owner-only pop, including the last-element race arbitration.
        pub fn pop(&self) -> Option<usize> {
            let b = self.bottom.load(Ordering::Relaxed) - 1;
            self.bottom.store(b, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let t = self.top.load(Ordering::Relaxed);
            if t <= b {
                let task = self.cells[b % CAP].load(Ordering::Relaxed);
                if t == b {
                    let won = self
                        .top
                        .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok();
                    self.bottom.store(b + 1, Ordering::Relaxed);
                    return won.then_some(task);
                }
                Some(task)
            } else {
                self.bottom.store(b + 1, Ordering::Relaxed);
                None
            }
        }

        /// Any thread: claim the top element. Read before CAS,
        /// materialised only on success — as in `WorkDeque::steal`.
        pub fn steal(&self) -> Option<usize> {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            let task = self.cells[t % CAP].load(Ordering::Relaxed);
            self.top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .ok()
                .map(|_| task)
        }
    }
}

/// Owner interleaving pushes and pops against two thieves: every task
/// is claimed by exactly one side — the last-element race between the
/// owner's unguarded bottom pop and a thief's top CAS must never
/// double-run or strand a task. This is the interleaving that makes a
/// range-CAS batch steal unsound; the model documents why steals claim
/// one element per CAS.
#[test]
fn chase_lev_owner_pop_vs_steal_claims_exactly_once() {
    const TASKS: usize = 4;
    const THIEVES: usize = 2;
    loom::model(|| {
        let deque = Arc::new(dq::DequeModel::new());
        let claims: Arc<Vec<AtomicU32>> =
            Arc::new((0..TASKS).map(|_| AtomicU32::new(0)).collect());
        let claimed = Arc::new(AtomicU32::new(0));

        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let claims = Arc::clone(&claims);
                let claimed = Arc::clone(&claimed);
                thread::spawn(move || {
                    while claimed.load(Ordering::SeqCst) < TASKS as u32 {
                        if let Some(task) = deque.steal() {
                            claims[task - 1].fetch_add(1, Ordering::SeqCst);
                            claimed.fetch_add(1, Ordering::SeqCst);
                        } else {
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        // Owner: push task ids 1..=TASKS, popping every other push so
        // the transient bottom decrement overlaps in-flight steals.
        for id in 1..=TASKS {
            assert!(deque.push(id), "model deque never fills at CAP=4");
            if id % 2 == 0 {
                if let Some(task) = deque.pop() {
                    claims[task - 1].fetch_add(1, Ordering::SeqCst);
                    claimed.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        while let Some(task) = deque.pop() {
            claims[task - 1].fetch_add(1, Ordering::SeqCst);
            claimed.fetch_add(1, Ordering::SeqCst);
        }
        // The owner may drain first; thieves exit on the shared count.
        for t in thieves {
            t.join().unwrap();
        }

        assert_eq!(claimed.load(Ordering::SeqCst), TASKS as u32);
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "task {} claimed wrong number of times",
                i + 1
            );
        }
    });
}

// ---------------------------------------------------------------------
// LIFO slot vs park/wake: the per-worker one-task slot
// (`sched.rs::LifoSlot`) is filled by worker-context wakes with *no*
// sibling notify — sound only because (a) handoff out of the slot is a
// single swap, so the owner's take and a stale-slot thief's take can
// never both win, and (b) the owner's sleep protocol re-checks the slot
// *after* announcing idleness (the same Dekker handshake the injector
// uses), so a slot task can never be stranded behind a sleeping owner.

/// Distilled slot + sleep-intent pair. Task ids are non-zero; 0 = empty.
struct SlotModel {
    slot: AtomicUsize,
    /// The owner's idle announcement (`idle_count` in the real pool).
    idle: AtomicBool,
    /// Per-task run ledger, indexed by id - 1.
    ran: [AtomicU32; 2],
    /// Set when the owner reached the "actually sleep" branch.
    slept: AtomicBool,
}

impl SlotModel {
    fn new() -> Self {
        SlotModel {
            slot: AtomicUsize::new(0),
            idle: AtomicBool::new(false),
            ran: [const { AtomicU32::new(0) }; 2],
            slept: AtomicBool::new(false),
        }
    }

    fn run(&self, task: usize) {
        self.ran[task - 1].fetch_add(1, Ordering::SeqCst);
    }

    /// Worker-context wake: swap the task in; a displaced occupant goes
    /// to the owner's deque — modelled as the owner claiming it, which
    /// is what `Scheduler::enqueue` does via `push_local_deque`.
    fn put(&self, task: usize) -> Option<usize> {
        let old = self.slot.swap(task, Ordering::AcqRel);
        (old != 0).then_some(old)
    }

    /// Single-swap handoff, shared by the owner's fast path and a
    /// thief's stale-slot pass.
    fn take(&self) -> Option<usize> {
        let old = self.slot.swap(0, Ordering::AcqRel);
        (old != 0).then_some(old)
    }
}

#[test]
fn lifo_slot_handoff_is_exactly_once_and_never_stranded() {
    loom::model(|| {
        let m = Arc::new(SlotModel::new());
        // Task 1 sits in the slot from an earlier wake and has gone
        // stale (its owner stalled), making it fair game for a thief.
        m.put(1);

        // The thief's stale-slot pass races everything below.
        let thief = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                if let Some(task) = m.take() {
                    m.run(task);
                }
            })
        };

        // The owner comes back, gets task 2 woken onto its slot
        // (displacing task 1 to its deque if still present), then heads
        // into the sleep protocol.
        let owner = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                if let Some(displaced) = m.put(2) {
                    m.run(displaced);
                }
                // Sleep protocol: announce idleness FIRST, then fence,
                // then re-check the slot. Swapping these two steps is
                // the lost-wakeup bug this model exists to rule out.
                m.idle.store(true, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if let Some(task) = m.take() {
                    m.run(task);
                } else {
                    m.slept.store(true, Ordering::SeqCst);
                }
            })
        };

        thief.join().unwrap();
        owner.join().unwrap();

        // Exactly-once: both tasks ran, neither twice — the swap
        // handoff admits no double-claim interleaving.
        assert_eq!(m.ran[0].load(Ordering::SeqCst), 1, "task 1 run count");
        assert_eq!(m.ran[1].load(Ordering::SeqCst), 1, "task 2 run count");
        // Never stranded: if the owner slept, the slot is empty — any
        // occupant was claimed by the thief, not left behind a parked
        // worker that will never be notified.
        if m.slept.load(Ordering::SeqCst) {
            assert_eq!(m.slot.load(Ordering::SeqCst), 0, "task stranded behind sleep");
        }
    });
}

// ---------------------------------------------------------------------
// Group-commit leader election: the `DurableLog` commit queue
// (`crates/eden-kernel/src/stable/committer.rs::submit`/`lead`). The
// first submitter to find no leader becomes the leader and drives
// batches until the queue drains; later submitters enqueue a ticket and
// wait for `complete` to cover it. The distilled contract:
//
// 1. at most one leader drives `commit_batch` at any moment — the
//    leader flag admits no interleaving where two threads append;
// 2. every submitted ticket completes (no waiter is stranded when the
//    leader drains the queue and steps down);
// 3. append order is ticket order, and per-UID versions assigned under
//    the brief index lock (the blessed stable-committer < stable-index
//    nesting) are gapless and monotone — concurrent stores to the same
//    UID can never allocate duplicate or out-of-order versions.

struct CommitQueueModel {
    pending: Vec<(u64, u32)>,
    leader: bool,
    next_ticket: u64,
    complete: u64,
}

struct CommitModel {
    q: Mutex<CommitQueueModel>,
    done: loom::sync::Condvar,
    /// The index: per-UID latest version, read under its own lock while
    /// the leader assigns versions (committer lock already held in the
    /// real code's `lead`; the model keeps the same nesting direction).
    index: Mutex<std::collections::HashMap<u32, u64>>,
    /// The appended log: (ticket, uid, version) in append order.
    log: Mutex<Vec<(u64, u32, u64)>>,
    /// Concurrent `commit_batch` drivers; must never exceed one.
    driving: AtomicU32,
}

impl CommitModel {
    fn new() -> Self {
        CommitModel {
            q: Mutex::new(CommitQueueModel {
                pending: Vec::new(),
                leader: false,
                next_ticket: 0,
                complete: 0,
            }),
            done: loom::sync::Condvar::new(),
            index: Mutex::new(std::collections::HashMap::new()),
            log: Mutex::new(Vec::new()),
            driving: AtomicU32::new(0),
        }
    }

    /// Mirror of `LogInner::submit`: enqueue, then ride or lead.
    fn submit(&self, uid: u32) {
        let ticket;
        {
            let mut q = self.q.lock().unwrap();
            ticket = q.next_ticket;
            q.next_ticket += 1;
            q.pending.push((ticket, uid));
            if q.leader {
                // Invariant 2's waiter side: `complete` must eventually
                // cover our ticket. `complete` starts at 0 and tickets
                // at 0, so the guard is `<=` where the real code (whose
                // tickets start later) uses `<`.
                while q.complete <= ticket {
                    q = self.done.wait(q).unwrap();
                }
                return;
            }
            q.leader = true;
        }
        self.lead();
    }

    /// Mirror of `LogInner::lead`: drive batches until the queue drains.
    fn lead(&self) {
        loop {
            let batch = {
                let mut q = self.q.lock().unwrap();
                if q.pending.is_empty() {
                    q.leader = false;
                    self.done.notify_all();
                    return;
                }
                std::mem::take(&mut q.pending)
            };

            // Invariant 1: we are the only driver.
            assert_eq!(
                self.driving.fetch_add(1, Ordering::SeqCst),
                0,
                "two leaders driving commit_batch concurrently"
            );
            {
                // Mirror of `commit_batch`'s version assignment: the
                // blessed stable-committer < stable-index nesting, held
                // briefly, single leader being the only appender.
                let mut index = self.index.lock().unwrap();
                let mut log = self.log.lock().unwrap();
                for (ticket, uid) in &batch {
                    let version = index.get(uid).copied().unwrap_or(0) + 1;
                    index.insert(*uid, version);
                    log.push((*ticket, *uid, version));
                }
            }
            self.driving.fetch_sub(1, Ordering::SeqCst);

            let mut q = self.q.lock().unwrap();
            let last = batch.last().map_or(q.complete, |(t, _)| t + 1);
            if q.complete < last {
                q.complete = last;
            }
            self.done.notify_all();
        }
    }
}

#[test]
fn group_commit_elects_one_leader_and_strands_no_ticket() {
    const SUBMITTERS: u32 = 3;
    const PER_SUBMITTER: u32 = 2;
    loom::model(|| {
        let model = Arc::new(CommitModel::new());

        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|s| {
                let model = model.clone();
                thread::spawn(move || {
                    for _ in 0..PER_SUBMITTER {
                        // Two submitters share UID 0 (the racing-stores
                        // case); the third writes its own.
                        model.submit(if s < 2 { 0 } else { s });
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }

        let q = model.q.lock().unwrap();
        let log = model.log.lock().unwrap();
        let index = model.index.lock().unwrap();
        let total = (SUBMITTERS * PER_SUBMITTER) as u64;

        // Invariant 2: every ticket completed, nobody left leading.
        assert_eq!(q.next_ticket, total);
        assert_eq!(q.complete, total);
        assert!(!q.leader);
        assert!(q.pending.is_empty());

        // Invariant 3: append order is ticket order (each ticket exactly
        // once), and per-UID versions are gapless and monotone.
        let tickets: Vec<u64> = log.iter().map(|(t, _, _)| *t).collect();
        assert_eq!(tickets, (0..total).collect::<Vec<_>>());
        let mut seen: std::collections::HashMap<u32, u64> = Default::default();
        for (_, uid, version) in log.iter() {
            let prev = seen.insert(*uid, *version).unwrap_or(0);
            assert_eq!(*version, prev + 1, "uid {uid} version gap or reorder");
        }
        for (uid, version) in seen {
            assert_eq!(index.get(&uid), Some(&version), "index behind the log");
        }
    });
}

// ---------------------------------------------------------------------
// Park-vs-crash: a bounded mailbox's Park admission
// (`crates/eden-kernel/src/mailbox.rs::push`/`admit`/`close`). A sender
// parked on the `not_full` condvar races the consumer Eject crashing,
// which closes the mailbox. The distilled contract:
//
// 1. a parked sender always terminates — `close()` sets `closed` under
//    the ring lock *before* `notify_all`, and the parked sender re-checks
//    `closed` under the same lock on every wake, so no interleaving
//    strands the sender on the condvar (the park-forever bug);
// 2. envelopes are conserved: everything delivered is either popped by
//    the consumer or drained by `close()` — a send that raced the close
//    and lost gets its envelope back (`SendError`), never half-queued;
// 3. after `close()`, no send ever succeeds.
//
// The deadline-aware arm (`wait_for(ring, admit_by - now)`) cannot be
// modelled here — the vendored loom has no timed condvar wait — so its
// wall-clock behaviour is covered by the real-ring tests in `mailbox.rs`
// (`park_with_deadline_sheds_on_timeout`). What loom adds is the
// untimed arm: the only way out of a plain park is a notify, so the
// close ordering above is load-bearing.

/// Distilled bounded ring: occupancy count + closed flag under one lock,
/// the same `not_full` condvar discipline as `MailboxCore`.
struct BoundedModel {
    ring: Mutex<(u32, bool)>,
    not_full: loom::sync::Condvar,
    cap: u32,
}

impl BoundedModel {
    fn new(cap: u32) -> Self {
        BoundedModel {
            ring: Mutex::new((0, false)),
            not_full: loom::sync::Condvar::new(),
            cap,
        }
    }

    /// Mirror of `push` under `ShedPolicy::Park` with no deadline:
    /// re-check closed, park while full, deliver once space frees.
    /// `Err` hands the envelope back, as `SendError` does.
    fn send(&self) -> Result<(), ()> {
        let mut ring = self.ring.lock().unwrap();
        loop {
            if ring.1 {
                return Err(());
            }
            if ring.0 >= self.cap {
                ring = self.not_full.wait(ring).unwrap();
                continue;
            }
            ring.0 += 1;
            return Ok(());
        }
    }

    /// Mirror of `pop`: drain one, then notify a parked sender.
    fn pop(&self) -> bool {
        let popped = {
            let mut ring = self.ring.lock().unwrap();
            if ring.0 == 0 {
                false
            } else {
                ring.0 -= 1;
                true
            }
        };
        if popped {
            self.not_full.notify_one();
        }
        popped
    }

    /// Mirror of `close`: mark closed and drain under the lock, then
    /// wake every parked sender so they observe the close.
    fn close(&self) -> u32 {
        let drained = {
            let mut ring = self.ring.lock().unwrap();
            ring.1 = true;
            std::mem::replace(&mut ring.0, 0)
        };
        self.not_full.notify_all();
        drained
    }
}

#[test]
fn parked_sender_observes_consumer_crash() {
    loom::model(|| {
        let m = Arc::new(BoundedModel::new(1));
        // Fill the ring so the racing sender must park.
        assert!(m.send().is_ok());

        let sender = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.send())
        };
        let crasher = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.close())
        };

        // Invariant 1 is the joins themselves: loom flags any
        // interleaving where the parked sender never wakes.
        let sent = sender.join().unwrap();
        let drained = crasher.join().unwrap();

        // The ring was full for the whole race, so the parked sender can
        // only ever observe the close (invariant 3).
        assert!(sent.is_err(), "send succeeded past a full, closing ring");
        assert_eq!(drained, 1, "close drained the wrong occupancy");
        let ring = m.ring.lock().unwrap();
        assert!(ring.1);
        assert_eq!(ring.0, 0);
    });
}

#[test]
fn park_drain_crash_race_conserves_envelopes() {
    loom::model(|| {
        let m = Arc::new(BoundedModel::new(1));
        assert!(m.send().is_ok());

        // The parked sender races a consumer that drains once and then
        // crashes — the sender may slip its envelope in through the
        // freed slot, or lose to the close and get it back.
        let sender = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.send())
        };
        let consumer = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                let popped = u32::from(m.pop());
                (popped, m.close())
            })
        };

        let sent = sender.join().unwrap();
        let (popped, drained) = consumer.join().unwrap();

        // Invariant 2: every delivery is popped or drained, exactly once.
        let delivered = 1 + u32::from(sent.is_ok());
        assert_eq!(
            popped + drained,
            delivered,
            "envelope lost or duplicated across the crash"
        );
        let ring = m.ring.lock().unwrap();
        assert!(ring.1);
        assert_eq!(ring.0, 0, "close left mail behind");
    });
}
