//! Overload-plane behavioural tests: exactly-once accounting when
//! admission control sheds queued work, span-tree integrity when a shed
//! lands mid-pipeline, and counter consistency when the span ring wraps
//! under load.

use std::time::Duration;

use eden_core::{EdenError, Value};
use eden_kernel::{
    EjectBehavior, EjectContext, Invocation, Kernel, ObsConfig, ReplyHandle, ShedPolicy,
    StableStore,
};

/// A counter that checkpoints after every applied increment, so the
/// stable store always reflects exactly the set of invocations that were
/// *handled* — the ground truth the exactly-once claim is judged
/// against.
struct Ledger {
    count: i64,
}

impl Ledger {
    fn from_passive(rep: Option<Value>) -> eden_core::Result<Box<dyn EjectBehavior>> {
        let count = match rep {
            Some(v) => v.field("count")?.as_int()?,
            None => 0,
        };
        Ok(Box::new(Ledger { count }))
    }
}

impl EjectBehavior for Ledger {
    fn type_name(&self) -> &'static str {
        "Ledger"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Increment" => {
                // Slow enough that a fast open-loop sender overruns the
                // bounded mailbox and forces evictions.
                std::thread::sleep(Duration::from_millis(1));
                self.count += 1;
                ctx.checkpoint(&Value::record([("count", Value::Int(self.count))]))
                    .expect("checkpoint applied increment");
                reply.reply(Ok(Value::Int(self.count)));
            }
            "Get" => reply.reply(Ok(Value::Int(self.count))),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
    fn passive_representation(&self) -> Option<Value> {
        Some(Value::record([("count", Value::Int(self.count))]))
    }
}

/// RejectOldest evicts queued invocations to admit fresh ones. The
/// ledger must account for every request exactly once: an `Ok` reply
/// means the increment was applied (and checkpointed), an `Overloaded`
/// error means it never was — and recovery replay from the stable store
/// must agree with that split to the record: 0 lost, 0 duplicated
/// non-shed records.
#[test]
fn exactly_once_under_reject_oldest_with_recovery_replay() {
    const TOTAL: usize = 300;
    let store = StableStore::new();
    let kernel = Kernel::builder()
        .mailbox_capacity(4)
        .shed_policy(ShedPolicy::RejectOldest)
        .stable_store(store.clone())
        .build();
    kernel.register_type("Ledger", Ledger::from_passive);
    let ledger = kernel.spawn(Box::new(Ledger { count: 0 })).unwrap();

    // Open-loop flood: sends never block under RejectOldest, so the
    // queue overruns and evicts.
    let pendings: Vec<_> = (0..TOTAL)
        .map(|_| kernel.invoke(ledger, "Increment", Value::Unit))
        .collect();
    let mut applied = 0u64;
    let mut shed = 0u64;
    for p in pendings {
        match p.wait_timeout(Duration::from_secs(30)) {
            Ok(Value::Int(_)) => applied += 1,
            Ok(other) => panic!("unexpected increment reply {other:?}"),
            Err(EdenError::Overloaded { target, policy }) => {
                assert_eq!(target, ledger);
                assert_eq!(policy, "reject-oldest");
                shed += 1;
            }
            Err(other) => panic!("unexpected increment error {other:?}"),
        }
    }
    assert_eq!(applied + shed, TOTAL as u64, "a request vanished");
    assert!(shed > 0, "flood never overran the bounded mailbox");
    assert!(applied > 0, "admission control starved the ledger entirely");
    let snap = kernel.metrics_snapshot();
    assert_eq!(
        snap.metrics.sheds_oldest, shed,
        "kernel shed counter disagrees with client-observed sheds"
    );

    // Live state counts each applied increment exactly once.
    let live = kernel.invoke(ledger, "Get", Value::Unit).wait().unwrap();
    assert_eq!(live, Value::Int(applied as i64));

    // Crash and replay from the stable store: the checkpoint stream must
    // reproduce the same count — sheds were never applied (0 duplicated)
    // and every Ok was checkpointed (0 lost).
    kernel.crash(ledger).unwrap();
    let replayed = kernel.invoke(ledger, "Get", Value::Unit).wait().unwrap();
    assert_eq!(
        replayed,
        Value::Int(applied as i64),
        "recovery replay lost or duplicated a non-shed record"
    );
    kernel.shutdown();
}

/// Replies to `Work` slowly — the pipeline's bottleneck stage.
struct Slow;

impl EjectBehavior for Slow {
    fn type_name(&self) -> &'static str {
        "Slow"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Work" => {
                std::thread::sleep(Duration::from_millis(100));
                reply.reply(Ok(inv.arg));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// Forwards `Ping` to the bottleneck and propagates the outcome — the
/// minimal two-stage pipeline.
struct Relay {
    downstream: eden_core::Uid,
}

impl EjectBehavior for Relay {
    fn type_name(&self) -> &'static str {
        "Relay"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Ping" => reply.reply(ctx.invoke(self.downstream, "Work", inv.arg).wait()),
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// A shed in the middle of a pipeline must leave the span tree well
/// formed: the shed hop still records a span (marked failed), its parent
/// pointer resolves to the upstream stage's span, and hop depths stay
/// consistent — an observer walking the trace sees exactly where the
/// overload cut the pipeline.
#[test]
fn span_tree_stays_well_formed_when_a_shed_lands_mid_pipeline() {
    let kernel = Kernel::builder()
        .mailbox_capacity(2)
        .shed_policy(ShedPolicy::RejectNewest)
        .observability(ObsConfig::full())
        .build();
    let slow = kernel.spawn(Box::new(Slow)).unwrap();
    let relay = kernel.spawn(Box::new(Relay { downstream: slow })).unwrap();

    // Fill the bottleneck: one Work in service, two more at capacity. The
    // first send gets a head start so it is dequeued (in service) before
    // the queue-filling pair arrives — otherwise the third filler itself
    // takes the shed the test wants to land on the pipelined request.
    let mut fillers = vec![kernel.invoke(slow, "Work", Value::Int(0))];
    std::thread::sleep(Duration::from_millis(30));
    fillers.extend((1..3).map(|i| kernel.invoke(slow, "Work", Value::Int(i))));
    std::thread::sleep(Duration::from_millis(10));

    // The pipelined request arrives at a full stage and sheds mid-path.
    let err = kernel
        .invoke(relay, "Ping", Value::Int(99))
        .wait_timeout(Duration::from_secs(10))
        .unwrap_err();
    assert!(
        matches!(err, EdenError::Overloaded { target, .. } if target == slow),
        "pipeline did not propagate the mid-path shed: {err:?}"
    );
    for f in fillers {
        f.wait_timeout(Duration::from_secs(10)).unwrap();
    }
    let snap = kernel.metrics_snapshot();
    assert!(snap.metrics.sheds_newest >= 1);

    let spans = kernel.spans();
    let by_id: std::collections::HashMap<u64, _> =
        spans.iter().map(|s| (s.span, s)).collect();
    for s in &spans {
        if let Some(parent) = s.parent {
            let p = by_id
                .get(&parent)
                .unwrap_or_else(|| panic!("span {} has dangling parent {parent}", s.span));
            assert_eq!(p.trace, s.trace, "parent in a different trace");
            assert_eq!(p.hop + 1, s.hop, "hop depth skipped a level");
        }
    }
    // The shed hop itself: a failed Work span whose parent is the relay's
    // Ping span.
    let ping = spans
        .iter()
        .find(|s| s.op.as_str() == "Ping")
        .expect("pipeline root span missing");
    let shed_hop = spans
        .iter()
        .find(|s| s.op.as_str() == "Work" && !s.ok)
        .expect("shed hop recorded no span");
    assert_eq!(shed_hop.parent, Some(ping.span));
    assert_eq!(shed_hop.trace, ping.trace);
    kernel.shutdown();
}

/// Replies to `Echo` after a short delay — slow enough that an open-loop
/// flood overruns the mailbox.
struct SlowEcho;

impl EjectBehavior for SlowEcho {
    fn type_name(&self) -> &'static str {
        "SlowEcho"
    }
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        match inv.op.as_str() {
            "Echo" => {
                std::thread::sleep(Duration::from_micros(500));
                reply.reply(Ok(inv.arg));
            }
            _ => reply.reply(Err(EdenError::NoSuchOperation {
                target: ctx.uid(),
                op: inv.op,
            })),
        }
    }
}

/// When the span ring wraps under an overload storm, the books must
/// still balance: every request (delivered or shed) records exactly one
/// span, `spans_dropped` accounts for every eviction, and the shed
/// counters match the client-observed `Overloaded` count bit for bit —
/// losing telemetry capacity must never mean losing count integrity.
#[test]
fn shed_counters_stay_exact_when_the_span_ring_wraps() {
    const TOTAL: usize = 400;
    const SPAN_CAP: usize = 64;
    let kernel = Kernel::builder()
        .mailbox_capacity(2)
        .shed_policy(ShedPolicy::RejectNewest)
        .observability(ObsConfig {
            spans: true,
            histograms: true,
            span_capacity: SPAN_CAP,
        })
        .build();
    let echo = kernel.spawn(Box::new(SlowEcho)).unwrap();

    let pendings: Vec<_> = (0..TOTAL)
        .map(|i| kernel.invoke(echo, "Echo", Value::Int(i as i64)))
        .collect();
    let mut ok = 0u64;
    let mut shed = 0u64;
    for p in pendings {
        match p.wait_timeout(Duration::from_secs(30)) {
            Ok(_) => ok += 1,
            Err(EdenError::Overloaded { .. }) => shed += 1,
            Err(other) => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(ok + shed, TOTAL as u64);
    assert!(shed > 0, "flood never overran the mailbox");

    let snap = kernel.metrics_snapshot();
    assert_eq!(
        snap.metrics.sheds_newest, shed,
        "shed counter lost count under span-ring pressure"
    );
    let held = kernel.spans().len() as u64;
    let dropped = kernel.spans_dropped();
    assert!(held <= SPAN_CAP as u64);
    assert!(dropped > 0, "the span ring never wrapped");
    assert_eq!(snap.spans_recorded, held);
    assert_eq!(
        held + dropped,
        TOTAL as u64,
        "a request completed without recording exactly one span"
    );
    kernel.shutdown();
}
