//! The deprecated invocation shims must keep compiling and keep meaning
//! exactly what they meant: `invoke_sync` is `invoke(..).wait()`,
//! `invoke_with_cache` is `invoke_with(.., route_cache(..))`. This file is
//! the only place in the repository allowed to call them.
#![allow(deprecated)]

use eden_core::Value;
use eden_kernel::{
    EjectBehavior, EjectContext, Invocation, Kernel, ReplyHandle, RouteCache,
};

struct Echo;

impl EjectBehavior for Echo {
    fn type_name(&self) -> &'static str {
        "Echo"
    }
    fn handle(&mut self, _ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
        reply.reply(Ok(inv.arg));
    }
}

#[test]
fn invoke_sync_shim_matches_invoke_wait() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let via_shim = kernel.invoke_sync(echo, "Echo", Value::Int(7)).unwrap();
    let via_new = kernel.invoke(echo, "Echo", Value::Int(7)).wait().unwrap();
    assert_eq!(via_shim, via_new);
    kernel.shutdown();
}

#[test]
fn invoke_with_cache_shim_matches_invoke_with() {
    let kernel = Kernel::new();
    let echo = kernel.spawn(Box::new(Echo)).unwrap();
    let mut cache = RouteCache::new();
    let first = kernel
        .invoke_with_cache(&mut cache, echo, "Echo", Value::Int(1))
        .wait()
        .unwrap();
    // A second call through the same cache takes the cached-route path.
    let second = kernel
        .invoke_with_cache(&mut cache, echo, "Echo", Value::Int(2))
        .wait()
        .unwrap();
    assert_eq!(first, Value::Int(1));
    assert_eq!(second, Value::Int(2));
    kernel.shutdown();
}
