//! A fixed-capacity Chase–Lev work-stealing deque of scheduler tasks.
//!
//! One of these belongs to each scheduler worker: the **owner** pushes
//! and pops at the *bottom* (LIFO — the task it just woke is the task
//! whose cache lines are still hot), while **thieves** claim from the
//! *top* with a compare-and-swap (FIFO — a thief gets the victim's
//! coldest work, which is the work least likely to be mid-flight). The
//! orderings follow Lê, Pop, Cocchini & Nardelli, *Correct and Efficient
//! Work-Stealing for Weak Memory Models* (PPoPP '13); the capacity is
//! fixed so the implementation needs no buffer reclamation scheme:
//!
//! * `push` refuses once `bottom - top == capacity`, so a cell is never
//!   rewritten while a thief holding the old `top` could still CAS it —
//!   overwriting index `t & mask` requires `top > t`, which makes that
//!   thief's CAS fail. The caller overflows into the scheduler's
//!   injector instead (see [`Scheduler`](crate::sched::Scheduler)).
//! * `top` is monotonically increasing, so the CAS has no ABA window.
//!
//! **Batched stealing is a loop of single-element claims**, not one CAS
//! over a range. A range CAS (`top: t -> t+n`) is unsound against the
//! owner's bottom pops: the owner takes elements *unguarded* whenever it
//! observes `top < bottom - 1`, so a thief that read `top == t` before
//! the owner's pops could retroactively claim `[t, t+n)` and double-run
//! every element the owner already took. The per-element CAS keeps each
//! claim atomic; what batching must buy — fewer steal *sessions*, and
//! half the victim's backlog moving in one go — survives intact because
//! the thief parks the extra claims in its own deque (see
//! `Scheduler::steal_from`).
//!
//! Tasks are stored as raw `Arc` pointers (`Arc::into_raw`) because the
//! cells must be plain atomics that thieves may read racily; a cell read
//! is only materialised back into an `Arc` after the CAS that proves
//! ownership of that index.

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Arc;

/// Per-worker deque capacity. Bounded so full deques spill half into the
/// injector instead of growing (growth would need buffer reclamation);
/// 256 comfortably holds a fairness-budget burst of wakeups.
pub(crate) const DEQUE_CAP: usize = 256;

/// The deque. Owner-side calls (`push`, `pop`) must come from one thread
/// at a time; `steal` may come from anywhere, including the owner
/// spilling its own overflow. Generic so the unit tests can stress it
/// with plain payloads; the scheduler instantiates it at
/// [`Task`](crate::sched::Task).
pub(crate) struct WorkDeque<T> {
    /// Next index a thief claims. Monotonic.
    top: AtomicIsize,
    /// Next index the owner pushes. Only the owner writes it (pop's
    /// transient decrement included).
    bottom: AtomicIsize,
    /// The ring. Cells are meaningful only in `[top, bottom)`.
    cells: Box<[AtomicPtr<T>]>,
    mask: usize,
}

impl<T> WorkDeque<T> {
    pub(crate) fn new() -> WorkDeque<T> {
        WorkDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            cells: (0..DEQUE_CAP)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            mask: DEQUE_CAP - 1,
        }
    }

    /// Entries currently claimable, as a relaxed hint for idle re-checks
    /// and the stall monitor. Exact at rest.
    pub(crate) fn len_hint(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    pub(crate) fn is_empty_hint(&self) -> bool {
        self.len_hint() == 0
    }

    /// Owner-only: push at the bottom. `Err` hands the task back when the
    /// deque is full; the caller spills to the injector.
    pub(crate) fn push(&self, task: Arc<T>) -> Result<(), Arc<T>> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.cells.len() as isize {
            return Err(task);
        }
        let ptr = Arc::into_raw(task).cast_mut();
        self.cells[b as usize & self.mask].store(ptr, Ordering::Relaxed);
        // Publish the cell before the bottom that advertises it.
        // eden-lint: ordering(chase-lev-publish)
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Owner-only: pop at the bottom (the most recently pushed task).
    pub(crate) fn pop(&self) -> Option<Arc<T>> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The store must be visible to thieves before top is read, and
        // symmetrically for the thief's CAS: the SeqCst pair is what
        // arbitrates the last-element race.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let ptr = self.cells[b as usize & self.mask].load(Ordering::Relaxed);
            if t == b {
                // Last element: a thief may be claiming it right now.
                // eden-lint: ordering(chase-lev-claim)
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then(|| unsafe { Arc::from_raw(ptr) });
            }
            Some(unsafe { Arc::from_raw(ptr) })
        } else {
            // Empty: restore the canonical bottom == top.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: claim the element at the top. The cell is read
    /// *before* the CAS and materialised only after it succeeds — a
    /// failed CAS means the read value was never ours to run.
    pub(crate) fn steal(&self) -> Option<Arc<T>> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let ptr = self.cells[t as usize & self.mask].load(Ordering::Relaxed);
        // eden-lint: ordering(chase-lev-claim)
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Some(unsafe { Arc::from_raw(ptr) })
        } else {
            None
        }
    }
}

impl<T> Drop for WorkDeque<T> {
    fn drop(&mut self) {
        // Exclusive access: release whatever the workers left behind.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        for i in t..b {
            let ptr = *self.cells[i as usize & self.mask].get_mut();
            if !ptr.is_null() {
                drop(unsafe { Arc::from_raw(ptr) });
            }
        }
    }
}

impl<T> std::fmt::Debug for WorkDeque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkDeque")
            .field("len_hint", &self.len_hint())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d: WorkDeque<u64> = WorkDeque::new();
        for i in 0..4u64 {
            d.push(Arc::new(i)).unwrap();
        }
        assert_eq!(d.len_hint(), 4);
        // Thief drains from the top: oldest first.
        assert_eq!(*d.steal().unwrap(), 0);
        // Owner drains from the bottom: newest first.
        assert_eq!(*d.pop().unwrap(), 3);
        assert_eq!(*d.pop().unwrap(), 2);
        assert_eq!(*d.pop().unwrap(), 1);
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
        assert!(d.is_empty_hint());
    }

    #[test]
    fn push_refuses_at_capacity() {
        let d: WorkDeque<usize> = WorkDeque::new();
        for i in 0..DEQUE_CAP {
            d.push(Arc::new(i)).unwrap();
        }
        let bounced = d.push(Arc::new(usize::MAX)).unwrap_err();
        assert_eq!(*bounced, usize::MAX);
        // Stealing one frees a slot (the owner's overflow-spill path).
        assert_eq!(*d.steal().unwrap(), 0);
        d.push(Arc::new(usize::MAX)).unwrap();
    }

    #[test]
    fn drop_releases_leftovers() {
        let d: WorkDeque<String> = WorkDeque::new();
        let probe = Arc::new("leftover".to_string());
        d.push(Arc::clone(&probe)).unwrap();
        drop(d);
        // The deque's strong count is gone.
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    /// One owner interleaving pushes and pops with three thieves: every
    /// item is claimed by exactly one side, none twice, none lost. The
    /// claim ledger is an array of per-item counters checked at the end.
    #[test]
    fn concurrent_owner_and_thieves_claim_each_item_once() {
        const ITEMS: usize = 100_000;
        const THIEVES: usize = 3;
        let deque: Arc<WorkDeque<usize>> = Arc::new(WorkDeque::new());
        let claims: Arc<Vec<AtomicUsize>> =
            Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect());
        let produced = Arc::new(AtomicUsize::new(0));
        let claimed = Arc::new(AtomicUsize::new(0));

        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let claims = Arc::clone(&claims);
                let claimed = Arc::clone(&claimed);
                let produced = Arc::clone(&produced);
                std::thread::spawn(move || loop {
                    if let Some(item) = deque.steal() {
                        claims[*item].fetch_add(1, Ordering::SeqCst);
                        claimed.fetch_add(1, Ordering::SeqCst);
                    } else if produced.load(Ordering::SeqCst) == ITEMS
                        && claimed.load(Ordering::SeqCst) == ITEMS
                    {
                        return;
                    } else {
                        std::thread::yield_now();
                    }
                })
            })
            .collect();

        // Owner: push everything, popping a burst every few pushes so the
        // bottom race with thieves is exercised constantly.
        for i in 0..ITEMS {
            let mut item = Arc::new(i);
            loop {
                match deque.push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            }
            produced.fetch_add(1, Ordering::SeqCst);
            if i % 3 == 0 {
                if let Some(popped) = deque.pop() {
                    claims[*popped].fetch_add(1, Ordering::SeqCst);
                    claimed.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        while let Some(popped) = deque.pop() {
            claims[*popped].fetch_add(1, Ordering::SeqCst);
            claimed.fetch_add(1, Ordering::SeqCst);
        }
        for t in thieves {
            t.join().unwrap();
        }
        assert_eq!(claimed.load(Ordering::SeqCst), ITEMS);
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i} claimed wrong number of times");
        }
    }
}
