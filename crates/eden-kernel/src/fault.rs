//! Deterministic fault injection on the invocation path.
//!
//! Eden's transput protocol was designed for a world where "either of the
//! Ejects at the ends of a stream may crash" (§6) and where the kernel
//! reactivates a crashed Eject from its passive representation. To exercise
//! that machinery systematically, the kernel carries a [`FaultInjector`]
//! that can fail invocations on purpose: drop them, delay them, fail them
//! with an error, or crash their target mid-flight.
//!
//! Everything is deterministic. Probabilistic rules draw from a seeded
//! splitmix64 generator and counted rules (`nth`, `every`) keep per-rule
//! match counters, all behind one lock — given the same seed and the same
//! sequence of matching invocations, a schedule replays byte-for-byte.
//! (Under concurrency the interleaving of *independent* callers can vary;
//! tests that need exact replay use counted rules on a single caller.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use eden_core::{OpName, Uid};
use parking_lot::Mutex;

/// What happens to an invocation selected by a fault rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The invocation is lost. Modelled as an *immediate* timeout: the
    /// caller observes exactly what a lost message followed by an expired
    /// reply deadline would produce ([`EdenError::Timeout`]), without the
    /// tests having to wait out a real deadline.
    ///
    /// [`EdenError::Timeout`]: eden_core::EdenError::Timeout
    Drop,
    /// The invocation is delivered after an extra delay.
    Delay(Duration),
    /// The invocation fails with [`EdenError::FaultInjected`].
    ///
    /// [`EdenError::FaultInjected`]: eden_core::EdenError::FaultInjected
    Error,
    /// The target Eject suffers a fail-stop crash and the invocation fails
    /// with [`EdenError::EjectCrashed`]. If the target ever checkpointed,
    /// a retry reactivates it from its passive representation — this is
    /// the fault that exercises checkpoint-driven recovery end to end.
    ///
    /// [`EdenError::EjectCrashed`]: eden_core::EdenError::EjectCrashed
    CrashTarget,
}

/// When a matching rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire on every matching invocation.
    Always,
    /// Fire exactly once, on the n-th matching invocation (1-based).
    Nth(u64),
    /// Fire on every k-th matching invocation (the k-th, 2k-th, ...).
    Every(u64),
    /// Fire with probability `p` per matching invocation, drawn from the
    /// plan's seeded generator.
    Prob(f64),
}

/// One fault rule: a target/op filter, a trigger schedule, and a fault
/// kind. Built fluently:
///
/// ```
/// use eden_kernel::{FaultKind, FaultRule};
/// let rule = FaultRule::new(FaultKind::Error).on_op("Transfer").nth(3);
/// ```
#[derive(Debug, Clone)]
pub struct FaultRule {
    kind: FaultKind,
    target: Option<Uid>,
    op: Option<OpName>,
    trigger: Trigger,
    label: String,
}

impl FaultRule {
    /// A rule that fires on every invocation (narrow it with the builder
    /// methods).
    pub fn new(kind: FaultKind) -> FaultRule {
        FaultRule {
            kind,
            target: None,
            op: None,
            trigger: Trigger::Always,
            label: String::new(),
        }
    }

    /// Only match invocations of this target Eject.
    pub fn on_target(mut self, target: Uid) -> FaultRule {
        self.target = Some(target);
        self
    }

    /// Only match invocations of this operation.
    pub fn on_op(mut self, op: impl Into<OpName>) -> FaultRule {
        self.op = Some(op.into());
        self
    }

    /// Fire exactly once, on the `n`-th matching invocation (1-based).
    pub fn nth(mut self, n: u64) -> FaultRule {
        self.trigger = Trigger::Nth(n.max(1));
        self
    }

    /// Fire on every `k`-th matching invocation.
    pub fn every(mut self, k: u64) -> FaultRule {
        self.trigger = Trigger::Every(k.max(1));
        self
    }

    /// Fire with probability `p` (clamped to [0, 1]) per matching
    /// invocation, drawn deterministically from the plan's seed.
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.trigger = Trigger::Prob(p.clamp(0.0, 1.0));
        self
    }

    /// Attach a label, reported in [`EdenError::FaultInjected`] so chaos
    /// tests can tell which rule fired.
    ///
    /// [`EdenError::FaultInjected`]: eden_core::EdenError::FaultInjected
    pub fn labeled(mut self, label: impl Into<String>) -> FaultRule {
        self.label = label.into();
        self
    }

    fn matches(&self, target: Uid, op: &OpName) -> bool {
        self.target.is_none_or(|t| t == target) && self.op.as_ref().is_none_or(|o| o == op)
    }
}

/// A seeded schedule of fault rules, installed with
/// [`Kernel::install_faults`].
///
/// [`Kernel::install_faults`]: crate::Kernel::install_faults
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan drawing probabilistic decisions from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add a rule. Rules are consulted in insertion order; the first rule
    /// that fires decides the invocation's fate.
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Number of rules in the plan.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// splitmix64: tiny, seedable, and good enough for fault schedules. Using
/// a hand-rolled generator (rather than a random-from-entropy one) is the
/// point — the whole schedule replays from the seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A unit-interval draw from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

struct RuleState {
    rule: FaultRule,
    matched: u64,
    exhausted: bool,
}

struct InjectorState {
    rng: u64,
    rules: Vec<RuleState>,
}

/// The decision the injector hands back to the invocation path: the kind
/// to apply and the label of the rule that fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FaultDecision {
    pub kind: FaultKind,
    pub label: String,
}

/// The kernel-resident injector. Holds the installed [`FaultPlan`] (if
/// any) and its per-rule counters. The `armed` flag keeps the fault-free
/// hot path to one relaxed atomic load.
#[derive(Default)]
pub(crate) struct FaultInjector {
    armed: AtomicBool,
    state: Mutex<Option<InjectorState>>,
}

impl FaultInjector {
    /// Install a plan, replacing any previous one and resetting all
    /// counters and the generator.
    pub fn install(&self, plan: FaultPlan) {
        let state = InjectorState {
            rng: plan.seed,
            rules: plan
                .rules
                .into_iter()
                .map(|rule| RuleState {
                    rule,
                    matched: 0,
                    exhausted: false,
                })
                .collect(),
        };
        let mut guard = self.state.lock();
        *guard = (!state.rules.is_empty()).then_some(state);
        self.armed.store(guard.is_some(), Ordering::Release);
    }

    /// Remove the installed plan; invocations flow unharmed again.
    pub fn clear(&self) {
        let mut guard = self.state.lock();
        *guard = None;
        self.armed.store(false, Ordering::Release);
    }

    /// Whether a plan is installed (cheap pre-check for the hot path).
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Decide the fate of one invocation. `None` means deliver normally.
    pub fn decide(&self, target: Uid, op: &OpName) -> Option<FaultDecision> {
        let mut guard = self.state.lock();
        let state = guard.as_mut()?;
        for i in 0..state.rules.len() {
            if state.rules[i].exhausted || !state.rules[i].rule.matches(target, op) {
                continue;
            }
            state.rules[i].matched += 1;
            let matched = state.rules[i].matched;
            let fired = match state.rules[i].rule.trigger {
                Trigger::Always => true,
                Trigger::Nth(n) => {
                    if matched == n {
                        state.rules[i].exhausted = true;
                        true
                    } else {
                        false
                    }
                }
                Trigger::Every(k) => matched % k == 0,
                Trigger::Prob(p) => unit_f64(splitmix64(&mut state.rng)) < p,
            };
            if fired {
                let rule = &state.rules[i].rule;
                return Some(FaultDecision {
                    kind: rule.kind.clone(),
                    label: if rule.label.is_empty() {
                        format!("{:?} on {op}", rule.kind)
                    } else {
                        rule.label.clone()
                    },
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(injector: &FaultInjector, target: Uid, op: &OpName, n: usize) -> Vec<bool> {
        (0..n)
            .map(|_| injector.decide(target, op).is_some())
            .collect()
    }

    #[test]
    fn empty_injector_never_fires() {
        let inj = FaultInjector::default();
        assert!(!inj.armed());
        assert!(inj.decide(Uid::fresh(), &OpName::from("Transfer")).is_none());
    }

    #[test]
    fn nth_fires_exactly_once() {
        let inj = FaultInjector::default();
        inj.install(FaultPlan::new(1).rule(FaultRule::new(FaultKind::Error).nth(3)));
        let got = decisions(&inj, Uid::fresh(), &OpName::from("Transfer"), 6);
        assert_eq!(got, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn every_fires_periodically() {
        let inj = FaultInjector::default();
        inj.install(FaultPlan::new(1).rule(FaultRule::new(FaultKind::Drop).every(2)));
        let got = decisions(&inj, Uid::fresh(), &OpName::from("Write"), 5);
        assert_eq!(got, vec![false, true, false, true, false]);
    }

    #[test]
    fn filters_restrict_matching() {
        let inj = FaultInjector::default();
        let victim = Uid::fresh();
        inj.install(FaultPlan::new(1).rule(
            FaultRule::new(FaultKind::Error)
                .on_target(victim)
                .on_op("Transfer"),
        ));
        assert!(inj.decide(Uid::fresh(), &OpName::from("Transfer")).is_none());
        assert!(inj.decide(victim, &OpName::from("Write")).is_none());
        assert!(inj.decide(victim, &OpName::from("Transfer")).is_some());
    }

    #[test]
    fn probabilistic_schedule_replays_from_seed() {
        let run = |seed: u64| {
            let inj = FaultInjector::default();
            inj.install(
                FaultPlan::new(seed)
                    .rule(FaultRule::new(FaultKind::Error).with_probability(0.3)),
            );
            decisions(&inj, Uid::fresh(), &OpName::from("Transfer"), 64)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
        let fired = run(42).iter().filter(|b| **b).count();
        assert!(fired > 5 && fired < 35, "p=0.3 over 64 draws, got {fired}");
    }

    #[test]
    fn first_firing_rule_wins() {
        let inj = FaultInjector::default();
        inj.install(
            FaultPlan::new(1)
                .rule(FaultRule::new(FaultKind::Drop).labeled("first").nth(1))
                .rule(FaultRule::new(FaultKind::Error).labeled("second")),
        );
        let op = OpName::from("Transfer");
        let first = inj.decide(Uid::fresh(), &op).unwrap();
        assert_eq!(first.kind, FaultKind::Drop);
        assert_eq!(first.label, "first");
        // The nth(1) rule is exhausted; the catch-all takes over.
        let second = inj.decide(Uid::fresh(), &op).unwrap();
        assert_eq!(second.kind, FaultKind::Error);
    }

    #[test]
    fn clear_disarms() {
        let inj = FaultInjector::default();
        inj.install(FaultPlan::new(1).rule(FaultRule::new(FaultKind::Error)));
        assert!(inj.armed());
        inj.clear();
        assert!(!inj.armed());
        assert!(inj.decide(Uid::fresh(), &OpName::from("X")).is_none());
    }

    #[test]
    fn plan_reports_shape() {
        assert!(FaultPlan::new(0).is_empty());
        let plan = FaultPlan::new(0).rule(FaultRule::new(FaultKind::Error));
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
    }
}
