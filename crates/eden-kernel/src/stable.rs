//! The stable store: where passive representations live.
//!
//! "The effect of Checkpointing is to create a *Passive Representation*, a
//! data structure designed to be durable across system crashes" (§1). The
//! store survives simulated crashes of individual Ejects and of the kernel
//! object itself (it can be detached and re-attached to a new kernel, which
//! is how the tests simulate whole-system restart).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use eden_core::{wire, EdenError, Result, Uid, Value};
use parking_lot::Mutex;

/// One checkpointed passive representation.
#[derive(Clone, Debug)]
pub struct PassiveRecord {
    /// The Eden type name, used to find the reactivation constructor.
    pub type_name: String,
    /// The wire-encoded state, behind a shared buffer: reactivation
    /// decodes it zero-copy, and cloning the record (the store hands out
    /// clones) bumps a reference instead of copying the checkpoint.
    pub bytes: Bytes,
    /// How many times this Eject has checkpointed (diagnostics).
    pub version: u64,
}

/// A durable map from UID to passive representation.
///
/// Cheap to clone; clones share the underlying storage, so a store created
/// before a kernel can outlive it.
#[derive(Clone, Default)]
#[derive(Debug)]
pub struct StableStore {
    inner: Arc<Mutex<HashMap<Uid, PassiveRecord>>>,
    /// When set, every record is written through to one file per Eject in
    /// this directory, and read back by [`StableStore::persistent`].
    persist_dir: Option<Arc<PathBuf>>,
}

/// Encode one record (with its UID) for the on-disk format.
fn encode_record(uid: Uid, record: &PassiveRecord) -> Vec<u8> {
    wire::encode(&Value::record([
        ("uid", Value::Uid(uid)),
        ("type", Value::str(record.type_name.clone())),
        ("version", Value::Int(record.version as i64)),
        ("bytes", Value::bytes(record.bytes.clone())),
    ]))
}

fn decode_record(data: &[u8]) -> Result<(Uid, PassiveRecord)> {
    let v = wire::decode(data)?;
    Ok((
        v.field("uid")?.as_uid()?,
        PassiveRecord {
            type_name: v.field("type")?.as_str()?.to_owned(),
            // Aliases the decoded buffer — the one copy was the file read.
            bytes: v.field("bytes")?.as_bytes()?.clone(),
            version: v.field("version")?.as_int()?.max(0) as u64,
        },
    ))
}

impl StableStore {
    /// An empty, purely in-memory store.
    pub fn new() -> Self {
        StableStore::default()
    }

    /// A store persisted in `dir` (created if missing): existing records
    /// are loaded now, and every later store/remove writes through. This
    /// gives checkpoints genuine durability across *process* restarts, not
    /// just kernel-object restarts.
    pub fn persistent(dir: impl Into<PathBuf>) -> Result<StableStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| EdenError::HostFs(format!("create {}: {e}", dir.display())))?;
        let mut map = HashMap::new();
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| EdenError::HostFs(format!("read {}: {e}", dir.display())))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("rep") {
                continue;
            }
            let data = std::fs::read(&path)
                .map_err(|e| EdenError::HostFs(format!("read {}: {e}", path.display())))?;
            let (uid, record) = decode_record(&data)?;
            map.insert(uid, record);
        }
        Ok(StableStore {
            inner: Arc::new(Mutex::new(map)),
            persist_dir: Some(Arc::new(dir)),
        })
    }

    fn file_for(&self, uid: Uid) -> Option<PathBuf> {
        self.persist_dir.as_ref().map(|d| d.join(format!("{uid}.rep")))
    }

    /// Write (or overwrite) the passive representation for `uid`.
    ///
    /// `Err` means the checkpoint is **not durable** and the previous
    /// passive representation (if any) is still in force: a persistent
    /// store that fails the disk write rolls back the in-memory record
    /// too, so a failed Checkpoint can never be observed as having
    /// succeeded by a later load.
    pub fn store(&self, uid: Uid, type_name: &str, bytes: Vec<u8>) -> Result<()> {
        // Hold the lock across the write-through so a concurrent store
        // cannot interleave between the map update and the file update
        // (the rollback below restores exactly what this call displaced).
        let mut map = self.inner.lock();
        let prior = map.get(&uid).cloned();
        let version = prior.as_ref().map_or(1, |r| r.version + 1);
        let record = PassiveRecord {
            type_name: type_name.to_owned(),
            bytes: Bytes::from(bytes),
            version,
        };
        map.insert(uid, record.clone());
        if let Some(path) = self.file_for(uid) {
            // Durable write-through: write to a temp file, then rename.
            let tmp = path.with_extension("tmp");
            let encoded = encode_record(uid, &record);
            if let Err(e) =
                std::fs::write(&tmp, encoded).and_then(|()| std::fs::rename(&tmp, &path))
            {
                match prior {
                    Some(prev) => {
                        map.insert(uid, prev);
                    }
                    None => {
                        map.remove(&uid);
                    }
                }
                return Err(EdenError::HostFs(format!(
                    "checkpoint {}: {e}",
                    path.display()
                )));
            }
        }
        Ok(())
    }

    /// Read the passive representation for `uid`.
    pub fn load(&self, uid: Uid) -> Result<PassiveRecord> {
        self.inner
            .lock()
            .get(&uid)
            .cloned()
            .ok_or(EdenError::NoSuchEject(uid))
    }

    /// Whether `uid` has a passive representation.
    pub fn contains(&self, uid: Uid) -> bool {
        self.inner.lock().contains_key(&uid)
    }

    /// Remove the passive representation for `uid` (the Eject is being
    /// destroyed, not merely deactivated).
    pub fn remove(&self, uid: Uid) {
        self.inner.lock().remove(&uid);
        if let Some(path) = self.file_for(uid) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Number of checkpointed Ejects.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no Eject has checkpointed.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// All UIDs with a passive representation, in unspecified order.
    pub fn uids(&self) -> Vec<Uid> {
        self.inner.lock().keys().copied().collect()
    }

    /// Total bytes of checkpointed state (diagnostics).
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().values().map(|r| r.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let s = StableStore::new();
        let uid = Uid::fresh();
        s.store(uid, "File", vec![1, 2, 3]).unwrap();
        let rec = s.load(uid).unwrap();
        assert_eq!(rec.type_name, "File");
        assert_eq!(rec.bytes, vec![1, 2, 3]);
        assert_eq!(rec.version, 1);
    }

    #[test]
    fn versions_increment() {
        let s = StableStore::new();
        let uid = Uid::fresh();
        s.store(uid, "File", vec![1]).unwrap();
        s.store(uid, "File", vec![2]).unwrap();
        assert_eq!(s.load(uid).unwrap().version, 2);
        assert_eq!(s.load(uid).unwrap().bytes, vec![2]);
    }

    #[test]
    fn missing_uid_is_error() {
        let s = StableStore::new();
        assert!(matches!(
            s.load(Uid::fresh()),
            Err(EdenError::NoSuchEject(_))
        ));
    }

    #[test]
    fn clones_share_storage() {
        let s = StableStore::new();
        let s2 = s.clone();
        let uid = Uid::fresh();
        s.store(uid, "Dir", vec![9]).unwrap();
        assert!(s2.contains(uid));
        s2.remove(uid);
        assert!(!s.contains(uid));
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "eden-stable-{}-{}",
            std::process::id(),
            Uid::fresh().seq()
        ));
        let uid = Uid::fresh();
        {
            let s = StableStore::persistent(&dir).unwrap();
            s.store(uid, "Counter", vec![1, 2, 3]).unwrap();
            s.store(uid, "Counter", vec![4, 5]).unwrap();
        }
        {
            let s = StableStore::persistent(&dir).unwrap();
            let rec = s.load(uid).unwrap();
            assert_eq!(rec.type_name, "Counter");
            assert_eq!(rec.bytes, vec![4, 5]);
            assert_eq!(rec.version, 2);
            s.remove(uid);
        }
        let s = StableStore::persistent(&dir).unwrap();
        assert!(!s.contains(uid));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_through_is_not_reported_durable() {
        let dir = std::env::temp_dir().join(format!(
            "eden-stable-gone-{}-{}",
            std::process::id(),
            Uid::fresh().seq()
        ));
        let s = StableStore::persistent(&dir).unwrap();
        let uid = Uid::fresh();
        s.store(uid, "Counter", vec![1]).unwrap();
        // Yank the directory out from under the store: the next disk
        // write fails, and the store must report the failure AND keep
        // serving the last durable record, not the phantom new one.
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(s.store(uid, "Counter", vec![2]).is_err());
        assert_eq!(s.load(uid).unwrap().bytes, vec![1]);
        assert_eq!(s.load(uid).unwrap().version, 1);
        // A never-checkpointed Eject whose first store fails stays absent.
        let fresh = Uid::fresh();
        assert!(s.store(fresh, "Counter", vec![3]).is_err());
        assert!(!s.contains(fresh));
    }

    #[test]
    fn record_codec_roundtrip() {
        let uid = Uid::fresh();
        let rec = PassiveRecord {
            type_name: "X".into(),
            bytes: Bytes::from(vec![9, 8, 7]),
            version: 3,
        };
        let (got_uid, got) = decode_record(&encode_record(uid, &rec)).unwrap();
        assert_eq!(got_uid, uid);
        assert_eq!(got.type_name, rec.type_name);
        assert_eq!(got.bytes, rec.bytes);
        assert_eq!(got.version, rec.version);
    }

    #[test]
    fn accounting() {
        let s = StableStore::new();
        assert!(s.is_empty());
        let a = Uid::fresh();
        let b = Uid::fresh();
        s.store(a, "X", vec![0; 10]).unwrap();
        s.store(b, "Y", vec![0; 5]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bytes(), 15);
        assert_eq!(s.uids().len(), 2);
    }
}
