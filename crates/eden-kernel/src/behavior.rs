//! The Eject behaviour trait: "a fixed piece of code that defines the set
//! of invocations to which the Eject will respond" (§1).

use eden_core::Value;

use crate::context::EjectContext;
use crate::invocation::{Invocation, ReplyHandle};

/// The type-code of an Eject.
///
/// An implementation defines the abstract machine of §2: "the inputs are the
/// invocations it receives, and the outputs are the replies to those
/// invocations". The kernel runs each behaviour on a dedicated coordinator
/// thread and dispatches one envelope at a time, so `&mut self` methods need
/// no internal locking.
///
/// Three invocations are handled by the runtime itself and never reach
/// [`handle`](EjectBehavior::handle): `Checkpoint` (serialises
/// [`passive_representation`](EjectBehavior::passive_representation) to the
/// stable store), `Deactivate` (stops the coordinator; the Eject survives as
/// its passive representation if it ever checkpointed, and otherwise
/// disappears — exactly the fate of the paper's bootstrap `UnixFile`
/// Ejects), and `Describe` (replies with
/// [`type_name`](EjectBehavior::type_name)).
pub trait EjectBehavior: Send + 'static {
    /// The Eden type name of this behaviour. Used by `Describe` and by the
    /// type registry for reactivation.
    fn type_name(&self) -> &'static str;

    /// Called once when the Eject starts running — both on first spawn and
    /// on reactivation from a passive representation. "When an Eject is
    /// activated by the kernel it will normally attempt to put its internal
    /// data structures into a consistent state" (§1).
    fn activate(&mut self, ctx: &EjectContext) {
        let _ = ctx;
    }

    /// Handle one invocation. Reply inline via `reply.reply(..)`, or park
    /// the handle for a deferred reply (passive output).
    fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle);

    /// Handle an internal event posted by one of this Eject's worker
    /// processes (or by the coordinator to itself). Internal events model
    /// the paper's language-level interprocess communication within an
    /// Eject.
    fn internal(&mut self, ctx: &EjectContext, event: Value) {
        let _ = (ctx, event);
    }

    /// The state to write to stable storage on `Checkpoint`. Returning
    /// `None` means this Eject does not checkpoint (and therefore vanishes
    /// on crash or deactivation).
    fn passive_representation(&self) -> Option<Value> {
        None
    }

    /// Called when the coordinator is about to stop (deactivation, crash
    /// envelope, or kernel shutdown). Behaviours that own worker processes
    /// should unblock them here; the coordinator joins workers afterwards.
    fn deactivating(&mut self, ctx: &EjectContext) {
        let _ = ctx;
    }
}

impl std::fmt::Debug for dyn EjectBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EjectBehavior({})", self.type_name())
    }
}
