//! An in-process reproduction of the Eden kernel, the substrate beneath the
//! asymmetric stream system of Black's SOSP 1983 paper.
//!
//! Eden's world contains exactly two kinds of thing: **Ejects** (active
//! objects with unforgeable UIDs) and **invocations** (location-independent
//! request/reply messages). This crate provides both, plus the kernel
//! services the paper's transput design leans on:
//!
//! * [`Kernel`] — registry, routing, activation-on-invocation, simulated
//!   nodes, fault injection, shutdown;
//! * [`EjectBehavior`] — the "type code" of an Eject, run on a dedicated
//!   coordinator thread;
//! * [`EjectContext`] / [`ProcessContext`] — invocation sending, worker
//!   processes, internal (language-level) messaging, checkpointing;
//! * [`ReplyHandle`] / [`PendingReply`] — first-class replies. Parking a
//!   `ReplyHandle` *is* the paper's passive output;
//! * [`StableStore`] — where passive representations live between lives.
//!
//! # Example
//!
//! ```
//! use eden_core::Value;
//! use eden_kernel::{EjectBehavior, EjectContext, Invocation, Kernel, ReplyHandle};
//!
//! /// An Eject that replies to `Add` with a running total.
//! struct Accumulator { total: i64 }
//!
//! impl EjectBehavior for Accumulator {
//!     fn type_name(&self) -> &'static str { "Accumulator" }
//!     fn handle(&mut self, ctx: &EjectContext, inv: Invocation, reply: ReplyHandle) {
//!         match inv.op.as_str() {
//!             "Add" => {
//!                 self.total += inv.arg.as_int().unwrap_or(0);
//!                 reply.reply(Ok(Value::Int(self.total)));
//!             }
//!             _ => reply.reply(Err(eden_core::EdenError::NoSuchOperation {
//!                 target: ctx.uid(), op: inv.op.clone(),
//!             })),
//!         }
//!     }
//! }
//!
//! let kernel = Kernel::new();
//! let acc = kernel.spawn(Box::new(Accumulator { total: 0 })).unwrap();
//! assert_eq!(kernel.invoke(acc, "Add", Value::Int(2)).wait().unwrap(), Value::Int(2));
//! assert_eq!(kernel.invoke(acc, "Add", Value::Int(3)).wait().unwrap(), Value::Int(5));
//! kernel.shutdown();
//! ```


mod behavior;
mod context;
mod deque;
mod fault;
mod invocation;
mod kernel;
pub mod mailbox;
mod obs;
mod options;
mod routes;
mod runtime;
mod sched;
mod stable;
mod trace;

pub use behavior::EjectBehavior;
pub use context::{EjectContext, InternalSender, ProcessContext};
pub use fault::{FaultKind, FaultPlan, FaultRule};
pub use invocation::{
    reply_pair, Invocation, PendingReply, ReplyHandle, DEFAULT_REPLY_TIMEOUT,
};
pub use kernel::{
    EjectInfo, EjectState, ExecMode, Kernel, KernelBuilder, KernelConfig, NodeId, TypeFactory,
    WeakKernel, DEFAULT_REGISTRY_SHARDS,
};
pub use mailbox::{ShedCause, ShedPolicy};
pub use obs::{
    chrome_trace_json, json_text, prometheus_text, Histogram, KernelSnapshot, MailboxSnapshot,
    ObsConfig, SpanRecord, StageSummary,
};
pub use options::{FaultExposure, InvokeOptions, RetryPolicy};
pub use routes::{Route, RouteCache};
pub use sched::{blocking, SchedSnapshot, SchedulerConfig};
pub use stable::{
    DurableConfig, DurableLog, FsyncPolicy, MemBacked, PassiveRecord, StableBackend, StableStats,
    StableStore,
};
pub use trace::{TraceDump, TraceEvent};
