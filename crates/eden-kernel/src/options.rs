//! Invocation options: deadlines, retry policy, route caching, fault
//! immunity — the configuration side of the single-verb invoke API.
//!
//! PR 1 grew the kernel three invocation entry points (`invoke`,
//! `invoke_sync`, `invoke_with_cache`); adding fault policy would have made
//! a fourth. Following SEND's single-verb design, everything now goes
//! through [`Kernel::invoke`] / [`Kernel::invoke_with`]: one verb, one
//! [`PendingReply`], with the knobs gathered in a builder-style
//! [`InvokeOptions`].
//!
//! [`Kernel::invoke`]: crate::Kernel::invoke
//! [`Kernel::invoke_with`]: crate::Kernel::invoke_with

use std::fmt;
use std::time::{Duration, Instant};

use eden_core::span::SpanContext;
use eden_core::{EdenError, Metrics, OpName, Result, Uid, Value};

use crate::invocation::PendingReply;
use crate::kernel::{NodeId, WeakKernel};
use crate::routes::RouteCache;

/// Bounded retries with exponential backoff.
///
/// An invocation that resolves with a *retryable* error (see
/// [`EdenError::is_retryable`]) is re-sent up to `max_retries` times,
/// sleeping `base_delay * multiplier^attempt` (capped at `max_delay`)
/// before each re-send. Fatal errors are returned immediately. The policy
/// is driven lazily by whoever waits on the [`PendingReply`] — sending
/// still never suspends the sender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of re-sends (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first re-send.
    pub base_delay: Duration,
    /// Upper bound on any single backoff pause.
    pub max_delay: Duration,
    /// Growth factor between consecutive backoffs.
    pub multiplier: f64,
}

impl RetryPolicy {
    /// Never retry (the default).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            multiplier: 2.0,
        }
    }

    /// Retry up to `n` times with the default backoff curve
    /// (1 ms doubling, capped at 50 ms).
    pub fn retries(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: n,
            ..RetryPolicy::none()
        }
    }

    /// Replace the first backoff pause.
    pub fn base_delay(mut self, d: Duration) -> RetryPolicy {
        self.base_delay = d;
        self
    }

    /// Replace the backoff cap.
    pub fn max_delay(mut self, d: Duration) -> RetryPolicy {
        self.max_delay = d;
        self
    }

    /// Replace the backoff growth factor.
    pub fn multiplier(mut self, m: f64) -> RetryPolicy {
        self.multiplier = m.max(1.0);
        self
    }

    /// The pause before re-send number `attempt + 1` (attempt counts
    /// completed sends, so the first retry sees `attempt == 0`).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let grown = self.base_delay.as_secs_f64() * self.multiplier.powi(attempt.min(64) as i32);
        Duration::from_secs_f64(grown.min(self.max_delay.as_secs_f64()))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Per-invocation configuration for [`Kernel::invoke_with`], built fluently:
///
/// ```no_run
/// use std::time::Duration;
/// use eden_kernel::{InvokeOptions, RetryPolicy};
///
/// let opts = InvokeOptions::new()
///     .deadline(Duration::from_secs(2))
///     .retry(RetryPolicy::retries(3));
/// ```
///
/// The default options reproduce the plain [`Kernel::invoke`] behaviour
/// exactly: no deadline beyond the wait call's own, no retries, no route
/// cache, subject to any installed fault plan.
///
/// [`Kernel::invoke`]: crate::Kernel::invoke
/// [`Kernel::invoke_with`]: crate::Kernel::invoke_with
#[derive(Default)]
#[derive(Debug)]
pub struct InvokeOptions<'a> {
    /// Overall per-invocation deadline, measured from the send. Waits and
    /// retries both stop when it expires, whatever the wait call's own
    /// budget says.
    pub deadline: Option<Duration>,
    /// The retry policy (default: no retries).
    pub retry: RetryPolicy,
    /// A caller-owned route cache: the first delivery attempt skips the
    /// kernel registry on a hit. Retries always re-resolve through the
    /// registry (the borrow ends when `invoke_with` returns).
    pub route_cache: Option<&'a mut RouteCache>,
    /// Whether this invocation is subject to the kernel's installed fault
    /// plan (default) or immune to it — control-plane traffic such as a
    /// chaos driver's own progress polls sets this to `false`.
    pub faults: FaultExposure,
}

/// Whether an invocation can be selected by the fault injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultExposure {
    /// The installed fault plan may select this invocation (the default).
    #[default]
    Subject,
    /// The fault plan never sees this invocation.
    Immune,
}

impl<'a> InvokeOptions<'a> {
    /// Options reproducing plain `invoke` semantics.
    pub fn new() -> InvokeOptions<'static> {
        InvokeOptions::default()
    }

    /// Set an overall per-invocation deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Route the first delivery attempt through a caller-owned cache.
    pub fn route_cache<'b>(self, cache: &'b mut RouteCache) -> InvokeOptions<'b>
    where
        'a: 'b,
    {
        InvokeOptions {
            deadline: self.deadline,
            retry: self.retry,
            route_cache: Some(cache),
            faults: self.faults,
        }
    }

    /// Exempt this invocation from the installed fault plan.
    pub fn immune(mut self) -> Self {
        self.faults = FaultExposure::Immune;
        self
    }

    pub(crate) fn subject_to_faults(&self) -> bool {
        self.faults == FaultExposure::Subject
    }

    pub(crate) fn needs_driver(&self) -> bool {
        self.deadline.is_some() || self.retry.max_retries > 0
    }
}

/// The state machine behind a retrying [`PendingReply`]: the request (for
/// re-sends), the policy, and the attempt counter. Created by
/// [`Kernel::invoke_with`] when the options ask for a deadline or retries;
/// driven lazily by the reply's wait/poll methods.
///
/// Holds only a [`WeakKernel`]: a parked retrying reply never keeps the
/// kernel alive, and a retry after shutdown resolves with
/// [`EdenError::KernelShutdown`].
///
/// [`Kernel::invoke_with`]: crate::Kernel::invoke_with
pub struct RetryState {
    kernel: WeakKernel,
    from: NodeId,
    target: Uid,
    op: OpName,
    arg: Value,
    policy: RetryPolicy,
    deadline: Option<Duration>,
    subject_to_faults: bool,
    started: Instant,
    attempt: u32,
    inner: PendingReply,
    /// For the outcome ledger: a driver-owned invocation settles
    /// `successes`/`fatal_failures` here, exactly once, at its *terminal*
    /// resolution — per-attempt replies never touch the ledger.
    metrics: Metrics,
    finished: bool,
    /// The span ambient when the invocation was first issued. Re-entered
    /// around every re-send so retries (and any reactivation they trigger)
    /// stay in the original trace.
    origin: Option<SpanContext>,
}

impl fmt::Debug for RetryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetryState")
            .field("target", &self.target)
            .field("op", &self.op)
            .field("attempt", &self.attempt)
            .field("policy", &self.policy)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl RetryState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        kernel: WeakKernel,
        from: NodeId,
        target: Uid,
        op: OpName,
        arg: Value,
        policy: RetryPolicy,
        deadline: Option<Duration>,
        subject_to_faults: bool,
        inner: PendingReply,
        metrics: Metrics,
    ) -> RetryState {
        RetryState {
            kernel,
            from,
            target,
            op,
            arg,
            policy,
            deadline,
            subject_to_faults,
            started: Instant::now(),
            attempt: 0,
            inner,
            metrics,
            finished: false,
            origin: eden_core::span::current(),
        }
    }

    /// Time left before the per-invocation deadline, if one was set.
    fn deadline_remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_sub(self.started.elapsed()))
    }

    /// Settle the outcome ledger for this logical invocation, exactly once
    /// (`poll_timeout` can report a deadline expiry more than once, and
    /// `Drop` runs after every terminal path).
    fn finish(&mut self, ok: bool) {
        if self.finished {
            return;
        }
        self.finished = true;
        if ok {
            self.metrics.record_success();
        } else {
            self.metrics.record_fatal_failure();
        }
    }

    /// Re-send the invocation through the registry. Counts one retry.
    fn resend(&mut self) -> Result<()> {
        let kernel = self.kernel.upgrade().ok_or(EdenError::KernelShutdown)?;
        kernel.metrics().record_retry();
        self.attempt += 1;
        // Re-sends happen on whatever thread is waiting on the reply;
        // restore the ambient span from issue time so the re-sent attempt
        // (and any reactivation it triggers) stays in the original trace.
        let _ambient = self.origin.map(|ctx| eden_core::span::enter(Some(ctx)));
        self.inner = kernel.invoke_inner(
            self.from,
            self.target,
            self.op.clone(),
            self.arg.clone(),
            self.subject_to_faults,
            false,
            true,
            // The re-sent attempt carries the same absolute deadline as
            // the original, so admission control (deadline-bounded parks,
            // DeadlineDrop eviction) sees the overall budget, not a fresh
            // one per attempt.
            self.deadline.map(|d| self.started + d),
        );
        Ok(())
    }

    fn attempts_left(&self) -> bool {
        self.attempt < self.policy.max_retries
    }

    /// Take the in-flight reply, leaving a placeholder that resolves as a
    /// timeout if somehow observed.
    fn take_inner(&mut self) -> PendingReply {
        std::mem::replace(&mut self.inner, PendingReply::Ready(None))
    }

    pub(crate) fn wait_timeout(mut self: Box<Self>, budget: Duration) -> Result<Value> {
        let start = Instant::now();
        let overall = match self.deadline_remaining() {
            Some(rem) => budget.min(rem),
            None => budget,
        };
        loop {
            let rem = overall.saturating_sub(start.elapsed());
            match self.take_inner().wait_timeout(rem) {
                Ok(v) => {
                    self.finish(true);
                    return Ok(v);
                }
                Err(e) => {
                    // A Timeout from budget exhaustion leaves no remaining
                    // time, so it is never retried; a fault-injected drop
                    // (an *immediate* Timeout) is.
                    let rem = overall.saturating_sub(start.elapsed());
                    if !e.is_retryable() || !self.attempts_left() || rem.is_zero() {
                        self.finish(false);
                        return Err(e);
                    }
                    let pause = self.policy.backoff(self.attempt).min(rem);
                    if !pause.is_zero() {
                        crate::sched::blocking(|| std::thread::sleep(pause));
                    }
                    self.resend()?;
                }
            }
        }
    }

    pub(crate) fn poll_timeout(&mut self, budget: Duration) -> Option<Result<Value>> {
        let budget = match self.deadline_remaining() {
            Some(rem) if rem.is_zero() => {
                self.finish(false);
                return Some(Err(EdenError::Timeout));
            }
            Some(rem) => budget.min(rem),
            None => budget,
        };
        match self.inner.poll_timeout(budget)? {
            Ok(v) => {
                self.finish(true);
                Some(Ok(v))
            }
            Err(e) => {
                let deadline_left = self.deadline_remaining().is_none_or(|rem| !rem.is_zero());
                if !e.is_retryable() || !self.attempts_left() || !deadline_left {
                    self.finish(false);
                    return Some(Err(e));
                }
                let mut pause = self.policy.backoff(self.attempt);
                if let Some(rem) = self.deadline_remaining() {
                    pause = pause.min(rem);
                }
                if !pause.is_zero() {
                    crate::sched::blocking(|| std::thread::sleep(pause));
                }
                match self.resend() {
                    Ok(()) => None,
                    Err(err) => {
                        self.finish(false);
                        Some(Err(err))
                    }
                }
            }
        }
    }

    pub(crate) fn try_wait(
        mut self: Box<Self>,
    ) -> std::result::Result<Result<Value>, Box<RetryState>> {
        match self.take_inner().try_wait() {
            Ok(Ok(v)) => {
                self.finish(true);
                Ok(Ok(v))
            }
            Ok(Err(e)) => {
                let deadline_left = self.deadline_remaining().is_none_or(|rem| !rem.is_zero());
                if e.is_retryable() && self.attempts_left() && deadline_left {
                    // Non-blocking path: the backoff pause is skipped; the
                    // caller's own polling cadence provides the spacing.
                    match self.resend() {
                        Ok(()) => Err(self),
                        Err(err) => {
                            self.finish(false);
                            Ok(Err(err))
                        }
                    }
                } else {
                    self.finish(false);
                    Ok(Err(e))
                }
            }
            Err(pending) => {
                self.inner = pending;
                Err(self)
            }
        }
    }
}

impl Drop for RetryState {
    fn drop(&mut self) {
        // Abandoned without a terminal resolution (the waiter dropped the
        // reply, or `resend` failed on a dead kernel): the logical
        // invocation terminally failed.
        self.finish(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::retries(10)
            .base_delay(Duration::from_millis(2))
            .max_delay(Duration::from_millis(10))
            .multiplier(2.0);
        assert_eq!(p.backoff(0), Duration::from_millis(2));
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(10));
        assert_eq!(p.backoff(60), Duration::from_millis(10));
    }

    #[test]
    fn default_policy_never_retries() {
        assert_eq!(RetryPolicy::default().max_retries, 0);
        assert_eq!(RetryPolicy::none(), RetryPolicy::default());
    }

    #[test]
    fn options_builder_accumulates() {
        let opts = InvokeOptions::new()
            .deadline(Duration::from_secs(1))
            .retry(RetryPolicy::retries(2))
            .immune();
        assert_eq!(opts.deadline, Some(Duration::from_secs(1)));
        assert_eq!(opts.retry.max_retries, 2);
        assert!(!opts.subject_to_faults());
        assert!(opts.needs_driver());
        assert!(!InvokeOptions::new().needs_driver());
    }

    #[test]
    fn options_route_cache_narrowing() {
        let mut cache = RouteCache::new();
        let opts = InvokeOptions::new().retry(RetryPolicy::retries(1)).route_cache(&mut cache);
        assert!(opts.route_cache.is_some());
        assert_eq!(opts.retry.max_retries, 1);
    }
}
