//! Kernel-owned Eject mailboxes.
//!
//! Until the density plane landed, every Eject owned a crossbeam channel
//! and a coordinator thread blocked on `recv()`. Both sides of that pair
//! priced an *idle* Eject like a busy one: the channel kept its buffer
//! allocated, and the thread kept a stack resident. This module replaces
//! the channel with a mailbox the kernel owns directly, designed around
//! two costs:
//!
//! * **Idle RSS.** The ring is a [`VecDeque`] that starts unallocated and
//!   is released again once a burst drains ([`SHRINK_CAPACITY`]), so a
//!   parked Eject's mailbox is a pointer-sized husk, not a buffer.
//! * **Wakeup.** The mailbox carries the Eject's *parking bit* — the
//!   [`park_state`](MailboxCore::park_state) machine the scheduler runs
//!   its state transitions on. A sender that lands mail on a `PARKED`
//!   mailbox enqueues the owning task; one that lands mail on a `RUNNING`
//!   mailbox merely marks it dirty, and the running worker re-checks
//!   before parking. The push-then-notify order (the push happens under
//!   the ring mutex, the notify after it is released) is what makes the
//!   protocol lossless — see `park_vs_deliver` in `tests/loom_model.rs`.
//!
//! In `threads` execution mode nothing parks on the bit: a dedicated
//! coordinator blocks on [`MailboxReceiver::recv`] (condvar), exactly the
//! crossbeam shape it replaces.
//!
//! # Admission control
//!
//! A bounded mailbox (`cap: Some(n)`) runs a [`ShedPolicy`] when a plain
//! `send` arrives at a full ring. The historic behaviour
//! ([`ShedPolicy::Park`]) parks the sender on the `not_full` condvar —
//! which under excess offered load turns backpressure into a distributed
//! standoff: a scheduler worker parked behind a full mailbox whose
//! consumer is itself parked behind another full mailbox never makes
//! progress, and the stall monitor cannot help because every worker is
//! *legitimately* blocked. Two escapes exist:
//!
//! * a deadline-bearing invocation ([`InvokeOptions::deadline`]) bounds
//!   its park by the deadline and sheds itself when it expires, so an
//!   `invoke_with` caller can never be wedged forever; and
//! * the load-shedding policies (`RejectNewest`, `RejectOldest`,
//!   `DeadlineDrop`) never park at all — they shed an envelope instead,
//!   and the kernel resolves the shed invocation's reply with the
//!   retryable `EdenError::Overloaded`, composing with `invoke_with`
//!   retry/backoff as client-side rate control.
//!
//! Only `Envelope::Invocation` traffic is ever shed: intra-Eject
//! `Internal` events are stream data whose loss would break exactly-once
//! accounting, so they always use the parking discipline, and kernel
//! control traffic (`force_send`) bypasses the bound entirely. A send
//! still fails with the envelope returned once the mailbox closed — the
//! staleness signal cached routes rely on.
//!
//! [`InvokeOptions::deadline`]: crate::InvokeOptions::deadline

// A failed send hands the whole envelope back (crossbeam's contract, and
// what invoke-over-a-stale-route needs to retry without a clone); boxing
// it would buy a smaller Err at the price of an allocation per bounce.
#![allow(clippy::result_large_err)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::runtime::Envelope;
use crate::sched::{Scheduler, Task};

/// What a bounded mailbox does when a plain `send` arrives at a full ring.
/// Configured kernel-wide through
/// [`KernelBuilder::shed_policy`](crate::KernelBuilder::shed_policy);
/// irrelevant for unbounded mailboxes (the default capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Park the sender until the consumer drains — the historic
    /// flow-control behaviour, and the default. Deadline-bearing
    /// invocations bound the park by their deadline and shed themselves
    /// when it expires; deadline-free sends park indefinitely.
    #[default]
    Park,
    /// Turn the arriving invocation away: the queue keeps what it has, the
    /// newcomer resolves with [`EdenError::Overloaded`](eden_core::EdenError).
    RejectNewest,
    /// Evict the oldest queued invocation to admit the arrival — freshest
    /// work wins, stale queue entries (whose callers have likely given up)
    /// are shed first.
    RejectOldest,
    /// Evict queued invocations whose admission deadlines have already
    /// expired (their callers can no longer use the reply); if nothing has
    /// expired, behave as [`ShedPolicy::RejectNewest`].
    DeadlineDrop,
}

impl ShedPolicy {
    /// The policy's stable label, used in `EdenError::Overloaded`, the
    /// Prometheus `policy` label, and bench report JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ShedPolicy::Park => "park",
            ShedPolicy::RejectNewest => "reject-newest",
            ShedPolicy::RejectOldest => "reject-oldest",
            ShedPolicy::DeadlineDrop => "deadline-drop",
        }
    }
}

/// Why admission control shed one envelope. Finer-grained than
/// [`ShedPolicy`]: one policy can shed for different reasons (`Park` sheds
/// only on deadline expiry; `DeadlineDrop` sheds expired entries *and*
/// turns newcomers away).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The arriving invocation was turned away at a full ring.
    Newest,
    /// A queued invocation was evicted to admit a newer arrival.
    Oldest,
    /// A queued (or arriving) invocation's admission deadline had expired.
    Expired,
    /// A parked sender's deadline-bounded wait for space timed out.
    ParkTimeout,
}

impl ShedCause {
    /// The policy label reported in `EdenError::Overloaded` for this shed.
    pub fn policy_label(&self) -> &'static str {
        match self {
            ShedCause::Newest => "reject-newest",
            ShedCause::Oldest => "reject-oldest",
            ShedCause::Expired => "deadline-drop",
            ShedCause::ParkTimeout => "park-timeout",
        }
    }
}

/// Ring capacities at or above this are released when the ring drains, so
/// a burst does not pin its high-water mark for the rest of an idle
/// Eject's life. Below it, the ring is kept — a hot stage reuses its
/// allocation instead of churning the allocator every batch.
const SHRINK_CAPACITY: usize = 64;

/// The parking-bit states. Stored in [`MailboxCore::park_state`]; only
/// meaningful in scheduler mode (a threads-mode mailbox stays `PARKED`
/// and wakes its coordinator through the condvar instead).
pub mod park {
    /// Not queued, not running; the next delivery must enqueue the task.
    pub const PARKED: u8 = 0;
    /// Queued for dispatch (a LIFO slot, a worker's deque, or the
    /// injector) awaiting a worker.
    pub const QUEUED: u8 = 1;
    /// A worker is draining the mailbox right now.
    pub const RUNNING: u8 = 2;
    /// Running, and mail arrived since the worker last checked the ring.
    pub const DIRTY: u8 = 3;
    /// The Eject exited; deliveries fail and wake nobody.
    pub const DEAD: u8 = 4;
}

/// The parking-bit protocol as one declarative transition table — the
/// **single source** every checker derives from:
///
/// * `eden-lint --protocol` extracts each CAS/store on the bit from
///   `mailbox.rs` and `sched.rs` (store sites carry a
///   `// eden-lint: transition(FROM -> TO)` annotation naming the states
///   the machine can be in when the store lands) and verifies the code
///   and this table describe exactly the same machine, both directions:
///   a code transition missing here fails the lint, and a table row no
///   code site implements fails it too.
/// * The `park_vs_deliver` loom model (`tests/loom_model.rs`) asserts
///   every transition it performs through [`assert_transition`], so the
///   dynamic model can never drift from the table the static pass
///   enforces.
///
/// Editing the machine therefore means editing this table, and the lint
/// points at every site that must follow.
pub mod spec {
    use super::park;

    /// Which side of the protocol performs a transition.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Actor {
        /// A thread delivering mail (`MailboxCore::wake_after_push`).
        Sender,
        /// A pool worker resuming or reaping the task (`sched.rs`).
        Worker,
        /// The spawn path queueing a task's first resume.
        Spawner,
    }

    /// The atomic shape of a transition site.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Op {
        /// A `compare_exchange` — the from-state is proven by the CAS.
        Cas,
        /// A plain `store` — legal only from the annotated from-states.
        Store,
    }

    /// One legal edge of the parking-bit state machine.
    #[derive(Debug, Clone, Copy)]
    pub struct Transition {
        /// State the bit must hold before the edge.
        pub from: u8,
        /// State the edge moves it to.
        pub to: u8,
        /// Who may perform it.
        pub actor: Actor,
        /// CAS or store.
        pub op: Op,
        /// What the edge means, stable across refactors.
        pub role: &'static str,
    }

    /// Every legal transition. Anything not in this table is a protocol
    /// violation — statically (eden-lint) and dynamically (loom).
    pub const TRANSITIONS: &[Transition] = &[
        Transition {
            from: park::PARKED,
            to: park::QUEUED,
            actor: Actor::Sender,
            op: Op::Cas,
            role: "deliver-wake",
        },
        Transition {
            from: park::RUNNING,
            to: park::DIRTY,
            actor: Actor::Sender,
            op: Op::Cas,
            role: "dirty-mark",
        },
        Transition {
            from: park::PARKED,
            to: park::QUEUED,
            actor: Actor::Spawner,
            op: Op::Store,
            role: "spawn-enqueue",
        },
        Transition {
            from: park::QUEUED,
            to: park::RUNNING,
            actor: Actor::Worker,
            op: Op::Store,
            role: "pickup",
        },
        Transition {
            from: park::RUNNING,
            to: park::QUEUED,
            actor: Actor::Worker,
            op: Op::Store,
            role: "budget-requeue",
        },
        Transition {
            from: park::DIRTY,
            to: park::QUEUED,
            actor: Actor::Worker,
            op: Op::Store,
            role: "budget-requeue",
        },
        Transition {
            from: park::RUNNING,
            to: park::PARKED,
            actor: Actor::Worker,
            op: Op::Cas,
            role: "park",
        },
        Transition {
            from: park::DIRTY,
            to: park::RUNNING,
            actor: Actor::Worker,
            op: Op::Store,
            role: "dirty-reclaim",
        },
        Transition {
            from: park::RUNNING,
            to: park::DEAD,
            actor: Actor::Worker,
            op: Op::Store,
            role: "reap",
        },
        Transition {
            from: park::DIRTY,
            to: park::DEAD,
            actor: Actor::Worker,
            op: Op::Store,
            role: "reap",
        },
    ];

    /// The display name of a park state.
    pub fn state_name(state: u8) -> &'static str {
        match state {
            park::PARKED => "PARKED",
            park::QUEUED => "QUEUED",
            park::RUNNING => "RUNNING",
            park::DIRTY => "DIRTY",
            park::DEAD => "DEAD",
            _ => "?",
        }
    }

    /// Parse a park-state name as written in `transition(..)` annotations.
    pub fn state_by_name(name: &str) -> Option<u8> {
        match name {
            "PARKED" => Some(park::PARKED),
            "QUEUED" => Some(park::QUEUED),
            "RUNNING" => Some(park::RUNNING),
            "DIRTY" => Some(park::DIRTY),
            "DEAD" => Some(park::DEAD),
            _ => None,
        }
    }

    /// Whether the table has an edge `from -> to` under `op`.
    pub fn allows_op(from: u8, to: u8, op: Op) -> bool {
        TRANSITIONS
            .iter()
            .any(|t| t.from == from && t.to == to && t.op == op)
    }

    /// Whether the table has an edge `from -> to` under any op.
    pub fn allows(from: u8, to: u8) -> bool {
        TRANSITIONS.iter().any(|t| t.from == from && t.to == to)
    }

    /// Assert an observed transition is in the table (the loom models'
    /// per-step hook; also usable by stress tests).
    ///
    /// # Panics
    /// On any edge the table does not bless.
    pub fn assert_transition(from: u8, to: u8) {
        assert!(
            allows(from, to),
            "illegal parking-bit transition {} -> {}",
            state_name(from),
            state_name(to),
        );
    }
}

/// One admission decision at a full bounded ring.
enum Admit {
    /// Re-run the capacity check (the sender parked and woke, or eviction
    /// freed space). Carries the envelope back to the retry.
    Retry(Envelope),
    /// The arriving envelope was shed with this cause.
    Shed(Envelope, ShedCause),
}

/// What a successful `send` actually did. Every envelope in the non-
/// `Delivered` arms carries a live [`ReplyHandle`](crate::ReplyHandle) the
/// caller must resolve (the kernel resolves sheds with
/// `EdenError::Overloaded` and counts them) — dropping one would
/// misreport the shed as a crash.
// Transient return value, consumed on the sender's stack immediately —
// boxing the rejected envelope would cost an allocation per shed for no
// resident-memory win.
#[allow(clippy::large_enum_variant)]
pub(crate) enum SendOutcome {
    /// Admitted; nothing was shed.
    Delivered,
    /// Admitted, but admission control evicted these queued envelopes to
    /// make room (`RejectOldest` evicts one; `DeadlineDrop` evicts every
    /// expired entry).
    DeliveredEvicting(Vec<(Envelope, ShedCause)>),
    /// The arriving envelope itself was shed and comes back to the caller.
    Rejected(Envelope, ShedCause),
}

/// What a sender must do after landing an envelope.
enum Wake {
    /// Nothing: the task is already queued, running was marked dirty, or
    /// the mailbox is threads-mode (the condvar was notified instead).
    None,
    /// The push transitioned `PARKED -> QUEUED`: enqueue the task.
    Enqueue(Arc<Scheduler>, Arc<Task>),
}

/// The scheduler-mode wiring of a mailbox, installed once when the owning
/// task is created. Weak on both ends: a parked task is kept alive by its
/// registry slot, never by its own mailbox (which the task itself owns).
struct SchedWake {
    sched: Weak<Scheduler>,
    task: Weak<Task>,
}

struct Ring {
    q: VecDeque<Envelope>,
    /// Closed mailboxes reject every send with the envelope returned —
    /// exactly a crossbeam channel whose receiver was dropped.
    closed: bool,
}

/// The shared heart of one Eject's mailbox.
pub(crate) struct MailboxCore {
    /// The ring buffer, lazily allocated. Field is named `mailq` so the
    /// lock-order audit can pattern-match acquisitions (`mailbox-queue`).
    mailq: Mutex<Ring>,
    /// Threads mode: wakes the coordinator blocked in `recv`.
    not_empty: Condvar,
    /// Bounded mode: wakes senders parked on a full ring.
    not_full: Condvar,
    /// `Some(n)` bounds the ring to `n` envelopes for plain `send`.
    cap: Option<usize>,
    /// What a full bounded ring does to arriving invocations.
    policy: ShedPolicy,
    /// Live `MailboxSender` clones; `recv` reports disconnection at zero.
    senders: AtomicUsize,
    /// The parking bit (see [`park`]).
    park_state: AtomicU8,
    /// Scheduler-mode wakeup target; empty in threads mode.
    wake: OnceLock<SchedWake>,
}

impl MailboxCore {
    fn new(cap: Option<usize>, policy: ShedPolicy) -> Arc<MailboxCore> {
        Arc::new(MailboxCore {
            mailq: Mutex::new(Ring {
                q: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::default(),
            not_full: Condvar::default(),
            cap,
            policy,
            // The initial sender handed to the caller of `mailbox()`.
            senders: AtomicUsize::new(1),
            park_state: AtomicU8::new(park::PARKED),
            wake: OnceLock::new(),
        })
    }

    /// Wire this mailbox to its scheduler task. Called once at task
    /// creation, before the task is first enqueued.
    pub(crate) fn attach_task(&self, sched: &Arc<Scheduler>, task: &Arc<Task>) {
        let _ = self.wake.set(SchedWake {
            sched: Arc::downgrade(sched),
            task: Arc::downgrade(task),
        });
    }

    /// The parking bit, for the scheduler's CAS transitions.
    pub(crate) fn park_bit(&self) -> &AtomicU8 {
        &self.park_state
    }

    /// Run the sender side of the parking protocol after a push. Must be
    /// called with the ring mutex *released*: the enqueue it may trigger
    /// lands the task on the dispatch path (LIFO slot, deque, or an
    /// injector shard plus a sleeper wake), and `mailbox-queue` stays a
    /// leaf on the delivery path.
    fn wake_after_push(&self) -> Wake {
        let Some(wake) = self.wake.get() else {
            // Threads mode: the coordinator waits on the condvar.
            self.not_empty.notify_one();
            return Wake::None;
        };
        loop {
            // eden-lint: ordering(park-state-machine)
            match self.park_state.load(Ordering::Acquire) {
                park::PARKED => {
                    // eden-lint: ordering(park-state-machine)
                    if self
                        .park_state
                        .compare_exchange(
                            park::PARKED,
                            park::QUEUED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        match (wake.sched.upgrade(), wake.task.upgrade()) {
                            (Some(sched), Some(task)) => return Wake::Enqueue(sched, task),
                            // Scheduler or task gone: teardown won the
                            // race; nobody is left to run the mail.
                            _ => return Wake::None,
                        }
                    }
                }
                park::RUNNING => {
                    // eden-lint: ordering(park-state-machine)
                    if self
                        .park_state
                        .compare_exchange(
                            park::RUNNING,
                            park::DIRTY,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return Wake::None;
                    }
                }
                // Already queued/dirty (someone else's push won), or dead.
                _ => return Wake::None,
            }
        }
    }

    fn push(&self, envelope: Envelope, respect_bound: bool) -> Result<SendOutcome, SendError> {
        let mut evicted: Vec<(Envelope, ShedCause)> = Vec::new();
        {
            let mut ring = self.mailq.lock();
            let mut envelope = envelope;
            loop {
                if ring.closed {
                    drop(ring);
                    // A closed ring was already drained by `close()`, so
                    // nothing can have been evicted on the way here.
                    debug_assert!(evicted.is_empty());
                    return Err(SendError(envelope));
                }
                if respect_bound {
                    if let Some(cap) = self.cap {
                        if ring.q.len() >= cap {
                            match self.admit(&mut ring, envelope, &mut evicted) {
                                Admit::Retry(env) => {
                                    envelope = env;
                                    continue;
                                }
                                Admit::Shed(env, cause) => {
                                    drop(ring);
                                    return Ok(SendOutcome::Rejected(env, cause));
                                }
                            }
                        }
                    }
                }
                ring.q.push_back(envelope);
                break;
            }
        }
        match self.wake_after_push() {
            Wake::None => {}
            Wake::Enqueue(sched, task) => sched.enqueue(task),
        }
        if evicted.is_empty() {
            Ok(SendOutcome::Delivered)
        } else {
            Ok(SendOutcome::DeliveredEvicting(evicted))
        }
    }

    /// One admission decision at a full ring, under the ring lock. Either
    /// tells the caller to re-check (space may have freed, or eviction made
    /// room), or sheds the arriving envelope. Evicted queue entries
    /// accumulate in `evicted` for the caller to resolve once the lock is
    /// released.
    fn admit(
        &self,
        ring: &mut parking_lot::MutexGuard<'_, Ring>,
        envelope: Envelope,
        evicted: &mut Vec<(Envelope, ShedCause)>,
    ) -> Admit {
        // Only invocations are ever shed: Internal events are stream data
        // (shedding them would silently lose records), so they keep the
        // historic parking discipline whatever the policy says.
        let sheddable = matches!(envelope, Envelope::Invocation(..));
        if !sheddable || self.policy == ShedPolicy::Park {
            return match envelope.admit_by() {
                // Deadline-aware park: bound the wait by the invocation's
                // own deadline, shedding once it expires — a sender under
                // `invoke_with` deadlines can never be wedged forever
                // behind a full mailbox.
                Some(admit_by) => {
                    let now = Instant::now();
                    if now >= admit_by {
                        return Admit::Shed(envelope, ShedCause::ParkTimeout);
                    }
                    crate::sched::blocking(|| {
                        self.not_full.wait_for(ring, admit_by - now);
                    });
                    Admit::Retry(envelope)
                }
                // Backpressure: park this sender until the receiver
                // drains. Kernel control traffic (`force_send`) never
                // reaches here, so teardown cannot wedge.
                None => {
                    crate::sched::blocking(|| {
                        self.not_full.wait(ring);
                    });
                    Admit::Retry(envelope)
                }
            };
        }
        match self.policy {
            ShedPolicy::Park => unreachable!("handled above"),
            ShedPolicy::RejectNewest => Admit::Shed(envelope, ShedCause::Newest),
            ShedPolicy::RejectOldest => {
                // Evict the oldest queued *invocation*; if the ring is all
                // Internal events (nothing evictable), turn the arrival
                // away instead.
                let oldest = ring
                    .q
                    .iter()
                    .position(|e| matches!(e, Envelope::Invocation(..)))
                    .and_then(|idx| ring.q.remove(idx));
                match oldest {
                    Some(old) => {
                        evicted.push((old, ShedCause::Oldest));
                        Admit::Retry(envelope)
                    }
                    None => Admit::Shed(envelope, ShedCause::Newest),
                }
            }
            ShedPolicy::DeadlineDrop => {
                let now = Instant::now();
                let before = ring.q.len();
                let mut expired: Vec<(Envelope, ShedCause)> = Vec::new();
                ring.q.retain_mut(|e| match e.admit_by() {
                    Some(admit_by) if now >= admit_by => {
                        expired.push((
                            std::mem::replace(e, Envelope::Shutdown),
                            ShedCause::Expired,
                        ));
                        false
                    }
                    _ => true,
                });
                if ring.q.len() < before {
                    evicted.append(&mut expired);
                    return Admit::Retry(envelope);
                }
                // Nothing queued has expired. If the arrival itself is
                // already past its deadline it sheds as expired; otherwise
                // it is simply turned away.
                match envelope.admit_by() {
                    Some(admit_by) if now >= admit_by => {
                        Admit::Shed(envelope, ShedCause::Expired)
                    }
                    _ => Admit::Shed(envelope, ShedCause::Newest),
                }
            }
        }
    }

    /// Pop one envelope (scheduler workers and the threads-mode receiver
    /// both drain through here). Shrinks an oversized ring on drain.
    pub(crate) fn pop(&self) -> Option<Envelope> {
        let mut ring = self.mailq.lock();
        let envelope = ring.q.pop_front()?;
        if ring.q.is_empty() && ring.q.capacity() >= SHRINK_CAPACITY {
            ring.q = VecDeque::new();
        }
        drop(ring);
        if self.cap.is_some() {
            self.not_full.notify_one();
        }
        Some(envelope)
    }

    /// Close the mailbox and return everything still queued. Dropping the
    /// returned envelopes resolves their replies with `EjectCrashed` —
    /// the fail-fast the old drain loop provided. Atomic under the ring
    /// mutex: no envelope can land between the drain and the close.
    pub(crate) fn close(&self) -> VecDeque<Envelope> {
        let drained = {
            let mut ring = self.mailq.lock();
            ring.closed = true;
            std::mem::take(&mut ring.q)
        };
        // Senders parked on a full ring must observe the close and fail.
        self.not_full.notify_all();
        self.not_empty.notify_all();
        drained
    }
}

impl std::fmt::Debug for MailboxCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxCore")
            .field("cap", &self.cap)
            .field("senders", &self.senders.load(Ordering::Relaxed))
            .field("park_state", &self.park_state.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// `send` failed because the mailbox closed; the envelope comes back so
/// the caller can redeliver it (the stale-route fallback).
pub(crate) struct SendError(pub(crate) Envelope);

impl std::fmt::Debug for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// The sending half of a mailbox. Clones count toward disconnection.
pub(crate) struct MailboxSender {
    core: Arc<MailboxCore>,
}

impl MailboxSender {
    /// Deliver an envelope, respecting a bounded mailbox's capacity and
    /// its [`ShedPolicy`] (under `Park`, the sender parks until space
    /// frees or its deadline expires). `Err` only once the mailbox closed;
    /// `Ok` carries what admission control did, including any shed
    /// envelopes the caller must resolve.
    pub(crate) fn send(&self, envelope: Envelope) -> Result<SendOutcome, SendError> {
        self.core.push(envelope, true)
    }

    /// Deliver an envelope past any capacity bound. Kernel control
    /// messages (crash, shutdown) use this so a full mailbox can never
    /// wedge teardown.
    pub(crate) fn force_send(&self, envelope: Envelope) -> Result<(), SendError> {
        self.core.push(envelope, false).map(|_| ())
    }

    /// How many envelopes are queued right now (the obs plane's
    /// queue-depth gauges read this through the kernel registry).
    pub(crate) fn depth(&self) -> usize {
        self.core.mailq.lock().q.len()
    }
}

impl Clone for MailboxSender {
    fn clone(&self) -> Self {
        self.core.senders.fetch_add(1, Ordering::Relaxed);
        MailboxSender {
            core: Arc::clone(&self.core),
        }
    }
}

impl Drop for MailboxSender {
    fn drop(&mut self) {
        if self.core.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: a threads-mode receiver blocked in `recv`
            // must wake up and observe the disconnection.
            self.core.not_empty.notify_all();
        }
    }
}

impl std::fmt::Debug for MailboxSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxSender").finish_non_exhaustive()
    }
}

/// The receiving half, used only by `threads`-mode coordinators (a
/// scheduler task drains its [`MailboxCore`] directly). Dropping it
/// closes the mailbox.
#[derive(Debug)]
pub(crate) struct MailboxReceiver {
    core: Arc<MailboxCore>,
}

impl MailboxReceiver {
    /// Block until an envelope arrives. `Err(())` means every sender is
    /// gone and the ring is empty — the coordinator should exit.
    pub(crate) fn recv(&self) -> Result<Envelope, ()> {
        loop {
            if let Some(envelope) = self.core.pop() {
                return Ok(envelope);
            }
            let mut ring = self.core.mailq.lock();
            if !ring.q.is_empty() {
                continue;
            }
            if self.core.senders.load(Ordering::Acquire) == 0 {
                return Err(());
            }
            // eden-lint: nonblocking(threads-mode coordinator thread, never a pool worker)
            self.core.not_empty.wait(&mut ring);
        }
    }

    /// Drain without blocking (the teardown path).
    pub(crate) fn try_recv(&self) -> Option<Envelope> {
        self.core.pop()
    }
}

impl Drop for MailboxReceiver {
    fn drop(&mut self) {
        drop(self.core.close());
    }
}

/// Create a mailbox, returning the sender and the shared core. `cap`
/// bounds plain sends (`None` keeps the historic unbounded behaviour);
/// `policy` decides what a full bounded ring does to arriving invocations.
pub(crate) fn mailbox(
    cap: Option<usize>,
    policy: ShedPolicy,
) -> (MailboxSender, Arc<MailboxCore>) {
    let core = MailboxCore::new(cap, policy);
    (
        MailboxSender {
            core: Arc::clone(&core),
        },
        core,
    )
}

/// Wrap a core in its threads-mode receiving half.
pub(crate) fn receiver(core: Arc<MailboxCore>) -> MailboxReceiver {
    MailboxReceiver { core }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Put a core in scheduler mode without a live scheduler: the wake
    /// CAS loop runs for real, the upgrade finds nobody to enqueue.
    fn sched_mode(core: &MailboxCore) {
        let _ = core.wake.set(SchedWake {
            sched: Weak::new(),
            task: Weak::new(),
        });
    }

    #[test]
    fn deliver_to_parked_queues() {
        let (tx, core) = mailbox(None, ShedPolicy::Park);
        sched_mode(&core);
        assert_eq!(core.park_state.load(Ordering::Acquire), park::PARKED);
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::QUEUED);
        // A second delivery finds QUEUED and leaves it alone.
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::QUEUED);
    }

    #[test]
    fn deliver_to_running_marks_dirty() {
        let (tx, core) = mailbox(None, ShedPolicy::Park);
        sched_mode(&core);
        core.park_state.store(park::RUNNING, Ordering::Release);
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::DIRTY);
        // Further deliveries leave DIRTY as-is.
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::DIRTY);
    }

    #[test]
    fn deliver_to_dead_wakes_nobody() {
        let (tx, core) = mailbox(None, ShedPolicy::Park);
        sched_mode(&core);
        core.park_state.store(park::DEAD, Ordering::Release);
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::DEAD);
    }

    /// Concurrent senders vs a draining worker: every observed transition
    /// must be one the spec table blesses, and no delivery may be lost
    /// (every push while PARKED flips the bit to QUEUED). Small enough to
    /// run under miri's interpreter.
    #[test]
    fn wake_protocol_transitions_follow_spec() {
        let iters = if cfg!(miri) { 20 } else { 400 };
        for _ in 0..iters {
            let (tx, core) = mailbox(None, ShedPolicy::Park);
            sched_mode(&core);
            let worker = {
                let core = Arc::clone(&core);
                std::thread::spawn(move || {
                    let mut drained = 0usize;
                    loop {
                        // While we are not RUNNING the only states are
                        // PARKED (nothing delivered since the last park)
                        // and QUEUED (a sender woke us): spin for the
                        // latter, then pick up. Senders never touch a
                        // QUEUED bit, so the swap always sees QUEUED.
                        if core.park_state.load(Ordering::Acquire) == park::PARKED {
                            if drained >= 3 {
                                return drained;
                            }
                            std::thread::yield_now();
                            continue;
                        }
                        let prev = core.park_state.swap(park::RUNNING, Ordering::AcqRel);
                        spec::assert_transition(prev, park::RUNNING);
                        while core.pop().is_some() {
                            drained += 1;
                        }
                        // Park attempt: RUNNING -> PARKED unless dirty.
                        match core.park_state.compare_exchange(
                            park::RUNNING,
                            park::PARKED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => {
                                if drained >= 3 {
                                    return drained;
                                }
                            }
                            Err(seen) => {
                                spec::assert_transition(park::RUNNING, seen);
                                // Dirty reclaim: DIRTY -> RUNNING, drain
                                // again on the next loop.
                                core.park_state.store(park::RUNNING, Ordering::Release);
                            }
                        }
                    }
                })
            };
            let senders: Vec<_> = (0..3)
                .map(|_| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        tx.send(Envelope::Shutdown).unwrap();
                    })
                })
                .collect();
            for s in senders {
                s.join().unwrap();
            }
            let drained = worker.join().unwrap();
            assert_eq!(drained, 3, "every delivery must be drained");
        }
    }

    #[test]
    fn spec_table_is_a_connected_machine() {
        // Every non-DEAD state has at least one outgoing edge, QUEUED is
        // reachable from PARKED, and no edge is self-looping.
        for s in [park::PARKED, park::QUEUED, park::RUNNING, park::DIRTY] {
            assert!(
                spec::TRANSITIONS.iter().any(|t| t.from == s),
                "state {} has no outgoing edge",
                spec::state_name(s)
            );
        }
        assert!(spec::allows(park::PARKED, park::QUEUED));
        assert!(spec::TRANSITIONS.iter().all(|t| t.from != t.to));
        assert!(!spec::allows(park::DEAD, park::RUNNING));
        assert!(!spec::allows(park::PARKED, park::RUNNING));
        assert_eq!(spec::state_by_name("DIRTY"), Some(park::DIRTY));
        assert!(spec::state_by_name("LIMBO").is_none());
        assert!(spec::allows_op(park::RUNNING, park::PARKED, spec::Op::Cas));
        assert!(!spec::allows_op(park::RUNNING, park::PARKED, spec::Op::Store));
    }

    #[test]
    #[should_panic(expected = "illegal parking-bit transition")]
    fn illegal_transition_panics() {
        spec::assert_transition(park::DEAD, park::QUEUED);
    }

    use crate::invocation::{reply_pair, Invocation, PendingReply};
    use eden_core::{Metrics, Uid, Value};
    use std::time::Duration;

    /// An invocation envelope with an optional admission deadline, plus the
    /// pending reply to observe what admission control did with it.
    fn inv_envelope(deadline: Option<Duration>) -> (Envelope, PendingReply) {
        let (mut handle, pending) = reply_pair(Uid::fresh(), Metrics::new());
        if let Some(d) = deadline {
            handle.set_admit_by(Instant::now() + d);
        }
        (
            Envelope::Invocation(
                Invocation {
                    op: "Transfer".into(),
                    arg: Value::Unit,
                },
                handle,
            ),
            pending,
        )
    }

    #[test]
    fn reject_newest_sheds_the_arrival() {
        let (tx, _core) = mailbox(Some(1), ShedPolicy::RejectNewest);
        let (first, _p1) = inv_envelope(None);
        assert!(matches!(tx.send(first), Ok(SendOutcome::Delivered)));
        let (second, _p2) = inv_envelope(None);
        match tx.send(second) {
            Ok(SendOutcome::Rejected(Envelope::Invocation(..), ShedCause::Newest)) => {}
            _ => panic!("full RejectNewest mailbox must shed the arrival"),
        }
        assert_eq!(tx.depth(), 1, "the queued envelope stays put");
    }

    #[test]
    fn reject_newest_never_sheds_internal_events() {
        // Internal events are stream data: a full RejectNewest mailbox must
        // park the sender, not drop them. Prove it by having a consumer
        // free space while the sender is parked.
        let (tx, core) = mailbox(Some(1), ShedPolicy::RejectNewest);
        tx.send(Envelope::Internal(Value::Int(1))).unwrap();
        let drainer = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                core.pop()
            })
        };
        // Blocks until the drainer pops, then delivers.
        match tx.send(Envelope::Internal(Value::Int(2))).unwrap() {
            SendOutcome::Delivered => {}
            _ => panic!("internal events must never be shed"),
        }
        assert!(drainer.join().unwrap().is_some());
        assert_eq!(tx.depth(), 1);
    }

    #[test]
    fn reject_oldest_evicts_queue_head_and_admits_arrival() {
        let (tx, _core) = mailbox(Some(1), ShedPolicy::RejectOldest);
        let (first, p1) = inv_envelope(None);
        tx.send(first).unwrap();
        let (second, _p2) = inv_envelope(None);
        match tx.send(second) {
            Ok(SendOutcome::DeliveredEvicting(evicted)) => {
                assert_eq!(evicted.len(), 1);
                assert!(matches!(evicted[0].1, ShedCause::Oldest));
            }
            _ => panic!("full RejectOldest mailbox must evict the oldest invocation"),
        }
        assert_eq!(tx.depth(), 1, "arrival took the evicted slot");
        // The kernel resolves evicted envelopes; here dropping the evicted
        // handle resolves p1 with EjectCrashed — either way the caller
        // observes *something* rather than silence.
        assert!(p1.wait_timeout(Duration::from_secs(1)).is_err());
    }

    #[test]
    fn reject_oldest_skips_internal_events() {
        let (tx, _core) = mailbox(Some(1), ShedPolicy::RejectOldest);
        tx.send(Envelope::Internal(Value::Int(7))).unwrap();
        // Queue holds only stream data: nothing evictable, arrival sheds.
        let (inv, _p) = inv_envelope(None);
        match tx.send(inv) {
            Ok(SendOutcome::Rejected(_, ShedCause::Newest)) => {}
            _ => panic!("an all-Internal queue has nothing to evict"),
        }
        assert_eq!(tx.depth(), 1);
    }

    #[test]
    fn deadline_drop_evicts_expired_entries() {
        let (tx, _core) = mailbox(Some(1), ShedPolicy::DeadlineDrop);
        // Already-expired deadline: queued now, evicted at the next full send.
        let (stale, _p1) = inv_envelope(Some(Duration::from_millis(0)));
        tx.send(stale).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let (fresh, _p2) = inv_envelope(Some(Duration::from_secs(60)));
        match tx.send(fresh) {
            Ok(SendOutcome::DeliveredEvicting(evicted)) => {
                assert_eq!(evicted.len(), 1);
                assert!(matches!(evicted[0].1, ShedCause::Expired));
            }
            _ => panic!("DeadlineDrop must evict the expired entry"),
        }
        assert_eq!(tx.depth(), 1);
    }

    #[test]
    fn deadline_drop_sheds_arrival_when_nothing_expired() {
        let (tx, _core) = mailbox(Some(1), ShedPolicy::DeadlineDrop);
        let (keep, _p1) = inv_envelope(Some(Duration::from_secs(60)));
        tx.send(keep).unwrap();
        // Nothing queued is expired and the arrival has no deadline: it is
        // turned away as Newest (DeadlineDrop degrades to RejectNewest).
        let (arrival, _p2) = inv_envelope(None);
        match tx.send(arrival) {
            Ok(SendOutcome::Rejected(_, ShedCause::Newest)) => {}
            _ => panic!("nothing expired: the arrival must shed"),
        }
        // An arrival that is itself expired sheds as Expired.
        let (dead, _p3) = inv_envelope(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(5));
        match tx.send(dead) {
            Ok(SendOutcome::Rejected(_, ShedCause::Expired)) => {}
            _ => panic!("an expired arrival sheds as Expired"),
        }
    }

    #[test]
    fn park_with_deadline_sheds_on_timeout() {
        // The park-forever bug: a bounded Park mailbox with no consumer
        // used to wedge the sender indefinitely. With an admission deadline
        // the sender now bounds its wait and sheds as ParkTimeout.
        let (tx, _core) = mailbox(Some(1), ShedPolicy::Park);
        let (first, _p1) = inv_envelope(None);
        tx.send(first).unwrap();
        let (second, _p2) = inv_envelope(Some(Duration::from_millis(30)));
        let start = Instant::now();
        match tx.send(second) {
            Ok(SendOutcome::Rejected(_, ShedCause::ParkTimeout)) => {}
            _ => panic!("a deadlined send at a full Park mailbox must time out"),
        }
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(25),
            "must actually wait out the deadline, waited {waited:?}"
        );
        assert!(
            waited < Duration::from_secs(5),
            "must not park forever, waited {waited:?}"
        );
    }

    #[test]
    fn park_without_deadline_waits_for_space() {
        let (tx, core) = mailbox(Some(1), ShedPolicy::Park);
        let (first, _p1) = inv_envelope(None);
        tx.send(first).unwrap();
        let drainer = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                core.pop()
            })
        };
        let (second, _p2) = inv_envelope(None);
        match tx.send(second).unwrap() {
            SendOutcome::Delivered => {}
            _ => panic!("plain Park must deliver once space frees"),
        }
        assert!(drainer.join().unwrap().is_some());
    }

    #[test]
    fn force_send_bypasses_the_bound() {
        let (tx, _core) = mailbox(Some(1), ShedPolicy::RejectNewest);
        let (first, _p1) = inv_envelope(None);
        tx.send(first).unwrap();
        // Kernel control traffic must never be turned away.
        tx.force_send(Envelope::Crash).unwrap();
        assert_eq!(tx.depth(), 2);
    }

    #[test]
    fn shed_labels_are_stable() {
        assert_eq!(ShedPolicy::Park.label(), "park");
        assert_eq!(ShedPolicy::RejectNewest.label(), "reject-newest");
        assert_eq!(ShedPolicy::RejectOldest.label(), "reject-oldest");
        assert_eq!(ShedPolicy::DeadlineDrop.label(), "deadline-drop");
        assert_eq!(ShedCause::Newest.policy_label(), "reject-newest");
        assert_eq!(ShedCause::Oldest.policy_label(), "reject-oldest");
        assert_eq!(ShedCause::Expired.policy_label(), "deadline-drop");
        assert_eq!(ShedCause::ParkTimeout.policy_label(), "park-timeout");
    }
}
