//! Kernel-owned Eject mailboxes.
//!
//! Until the density plane landed, every Eject owned a crossbeam channel
//! and a coordinator thread blocked on `recv()`. Both sides of that pair
//! priced an *idle* Eject like a busy one: the channel kept its buffer
//! allocated, and the thread kept a stack resident. This module replaces
//! the channel with a mailbox the kernel owns directly, designed around
//! two costs:
//!
//! * **Idle RSS.** The ring is a [`VecDeque`] that starts unallocated and
//!   is released again once a burst drains ([`SHRINK_CAPACITY`]), so a
//!   parked Eject's mailbox is a pointer-sized husk, not a buffer.
//! * **Wakeup.** The mailbox carries the Eject's *parking bit* — the
//!   [`park_state`](MailboxCore::park_state) machine the scheduler runs
//!   its state transitions on. A sender that lands mail on a `PARKED`
//!   mailbox enqueues the owning task; one that lands mail on a `RUNNING`
//!   mailbox merely marks it dirty, and the running worker re-checks
//!   before parking. The push-then-notify order (the push happens under
//!   the ring mutex, the notify after it is released) is what makes the
//!   protocol lossless — see `park_vs_deliver` in `tests/loom_model.rs`.
//!
//! In `threads` execution mode nothing parks on the bit: a dedicated
//! coordinator blocks on [`MailboxReceiver::recv`] (condvar), exactly the
//! crossbeam shape it replaces. Send-side semantics are preserved
//! verbatim: `send` parks on a full bounded mailbox, `force_send` bypasses
//! the bound (kernel control traffic), and both fail with the envelope
//! returned once the mailbox closed — the staleness signal cached routes
//! rely on.

// A failed send hands the whole envelope back (crossbeam's contract, and
// what invoke-over-a-stale-route needs to retry without a clone); boxing
// it would buy a smaller Err at the price of an allocation per bounce.
#![allow(clippy::result_large_err)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::{Condvar, Mutex};

use crate::runtime::Envelope;
use crate::sched::{Scheduler, Task};

/// Ring capacities at or above this are released when the ring drains, so
/// a burst does not pin its high-water mark for the rest of an idle
/// Eject's life. Below it, the ring is kept — a hot stage reuses its
/// allocation instead of churning the allocator every batch.
const SHRINK_CAPACITY: usize = 64;

/// The parking-bit states. Stored in [`MailboxCore::park_state`]; only
/// meaningful in scheduler mode (a threads-mode mailbox stays `PARKED`
/// and wakes its coordinator through the condvar instead).
pub mod park {
    /// Not queued, not running; the next delivery must enqueue the task.
    pub const PARKED: u8 = 0;
    /// Queued for dispatch (a LIFO slot, a worker's deque, or the
    /// injector) awaiting a worker.
    pub const QUEUED: u8 = 1;
    /// A worker is draining the mailbox right now.
    pub const RUNNING: u8 = 2;
    /// Running, and mail arrived since the worker last checked the ring.
    pub const DIRTY: u8 = 3;
    /// The Eject exited; deliveries fail and wake nobody.
    pub const DEAD: u8 = 4;
}

/// The parking-bit protocol as one declarative transition table — the
/// **single source** every checker derives from:
///
/// * `eden-lint --protocol` extracts each CAS/store on the bit from
///   `mailbox.rs` and `sched.rs` (store sites carry a
///   `// eden-lint: transition(FROM -> TO)` annotation naming the states
///   the machine can be in when the store lands) and verifies the code
///   and this table describe exactly the same machine, both directions:
///   a code transition missing here fails the lint, and a table row no
///   code site implements fails it too.
/// * The `park_vs_deliver` loom model (`tests/loom_model.rs`) asserts
///   every transition it performs through [`assert_transition`], so the
///   dynamic model can never drift from the table the static pass
///   enforces.
///
/// Editing the machine therefore means editing this table, and the lint
/// points at every site that must follow.
pub mod spec {
    use super::park;

    /// Which side of the protocol performs a transition.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Actor {
        /// A thread delivering mail (`MailboxCore::wake_after_push`).
        Sender,
        /// A pool worker resuming or reaping the task (`sched.rs`).
        Worker,
        /// The spawn path queueing a task's first resume.
        Spawner,
    }

    /// The atomic shape of a transition site.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Op {
        /// A `compare_exchange` — the from-state is proven by the CAS.
        Cas,
        /// A plain `store` — legal only from the annotated from-states.
        Store,
    }

    /// One legal edge of the parking-bit state machine.
    #[derive(Debug, Clone, Copy)]
    pub struct Transition {
        /// State the bit must hold before the edge.
        pub from: u8,
        /// State the edge moves it to.
        pub to: u8,
        /// Who may perform it.
        pub actor: Actor,
        /// CAS or store.
        pub op: Op,
        /// What the edge means, stable across refactors.
        pub role: &'static str,
    }

    /// Every legal transition. Anything not in this table is a protocol
    /// violation — statically (eden-lint) and dynamically (loom).
    pub const TRANSITIONS: &[Transition] = &[
        Transition {
            from: park::PARKED,
            to: park::QUEUED,
            actor: Actor::Sender,
            op: Op::Cas,
            role: "deliver-wake",
        },
        Transition {
            from: park::RUNNING,
            to: park::DIRTY,
            actor: Actor::Sender,
            op: Op::Cas,
            role: "dirty-mark",
        },
        Transition {
            from: park::PARKED,
            to: park::QUEUED,
            actor: Actor::Spawner,
            op: Op::Store,
            role: "spawn-enqueue",
        },
        Transition {
            from: park::QUEUED,
            to: park::RUNNING,
            actor: Actor::Worker,
            op: Op::Store,
            role: "pickup",
        },
        Transition {
            from: park::RUNNING,
            to: park::QUEUED,
            actor: Actor::Worker,
            op: Op::Store,
            role: "budget-requeue",
        },
        Transition {
            from: park::DIRTY,
            to: park::QUEUED,
            actor: Actor::Worker,
            op: Op::Store,
            role: "budget-requeue",
        },
        Transition {
            from: park::RUNNING,
            to: park::PARKED,
            actor: Actor::Worker,
            op: Op::Cas,
            role: "park",
        },
        Transition {
            from: park::DIRTY,
            to: park::RUNNING,
            actor: Actor::Worker,
            op: Op::Store,
            role: "dirty-reclaim",
        },
        Transition {
            from: park::RUNNING,
            to: park::DEAD,
            actor: Actor::Worker,
            op: Op::Store,
            role: "reap",
        },
        Transition {
            from: park::DIRTY,
            to: park::DEAD,
            actor: Actor::Worker,
            op: Op::Store,
            role: "reap",
        },
    ];

    /// The display name of a park state.
    pub fn state_name(state: u8) -> &'static str {
        match state {
            park::PARKED => "PARKED",
            park::QUEUED => "QUEUED",
            park::RUNNING => "RUNNING",
            park::DIRTY => "DIRTY",
            park::DEAD => "DEAD",
            _ => "?",
        }
    }

    /// Parse a park-state name as written in `transition(..)` annotations.
    pub fn state_by_name(name: &str) -> Option<u8> {
        match name {
            "PARKED" => Some(park::PARKED),
            "QUEUED" => Some(park::QUEUED),
            "RUNNING" => Some(park::RUNNING),
            "DIRTY" => Some(park::DIRTY),
            "DEAD" => Some(park::DEAD),
            _ => None,
        }
    }

    /// Whether the table has an edge `from -> to` under `op`.
    pub fn allows_op(from: u8, to: u8, op: Op) -> bool {
        TRANSITIONS
            .iter()
            .any(|t| t.from == from && t.to == to && t.op == op)
    }

    /// Whether the table has an edge `from -> to` under any op.
    pub fn allows(from: u8, to: u8) -> bool {
        TRANSITIONS.iter().any(|t| t.from == from && t.to == to)
    }

    /// Assert an observed transition is in the table (the loom models'
    /// per-step hook; also usable by stress tests).
    ///
    /// # Panics
    /// On any edge the table does not bless.
    pub fn assert_transition(from: u8, to: u8) {
        assert!(
            allows(from, to),
            "illegal parking-bit transition {} -> {}",
            state_name(from),
            state_name(to),
        );
    }
}

/// What a sender must do after landing an envelope.
enum Wake {
    /// Nothing: the task is already queued, running was marked dirty, or
    /// the mailbox is threads-mode (the condvar was notified instead).
    None,
    /// The push transitioned `PARKED -> QUEUED`: enqueue the task.
    Enqueue(Arc<Scheduler>, Arc<Task>),
}

/// The scheduler-mode wiring of a mailbox, installed once when the owning
/// task is created. Weak on both ends: a parked task is kept alive by its
/// registry slot, never by its own mailbox (which the task itself owns).
struct SchedWake {
    sched: Weak<Scheduler>,
    task: Weak<Task>,
}

struct Ring {
    q: VecDeque<Envelope>,
    /// Closed mailboxes reject every send with the envelope returned —
    /// exactly a crossbeam channel whose receiver was dropped.
    closed: bool,
}

/// The shared heart of one Eject's mailbox.
pub(crate) struct MailboxCore {
    /// The ring buffer, lazily allocated. Field is named `mailq` so the
    /// lock-order audit can pattern-match acquisitions (`mailbox-queue`).
    mailq: Mutex<Ring>,
    /// Threads mode: wakes the coordinator blocked in `recv`.
    not_empty: Condvar,
    /// Bounded mode: wakes senders parked on a full ring.
    not_full: Condvar,
    /// `Some(n)` bounds the ring to `n` envelopes for plain `send`.
    cap: Option<usize>,
    /// Live `MailboxSender` clones; `recv` reports disconnection at zero.
    senders: AtomicUsize,
    /// The parking bit (see [`park`]).
    park_state: AtomicU8,
    /// Scheduler-mode wakeup target; empty in threads mode.
    wake: OnceLock<SchedWake>,
}

impl MailboxCore {
    fn new(cap: Option<usize>) -> Arc<MailboxCore> {
        Arc::new(MailboxCore {
            mailq: Mutex::new(Ring {
                q: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::default(),
            not_full: Condvar::default(),
            cap,
            // The initial sender handed to the caller of `mailbox()`.
            senders: AtomicUsize::new(1),
            park_state: AtomicU8::new(park::PARKED),
            wake: OnceLock::new(),
        })
    }

    /// Wire this mailbox to its scheduler task. Called once at task
    /// creation, before the task is first enqueued.
    pub(crate) fn attach_task(&self, sched: &Arc<Scheduler>, task: &Arc<Task>) {
        let _ = self.wake.set(SchedWake {
            sched: Arc::downgrade(sched),
            task: Arc::downgrade(task),
        });
    }

    /// The parking bit, for the scheduler's CAS transitions.
    pub(crate) fn park_bit(&self) -> &AtomicU8 {
        &self.park_state
    }

    /// Run the sender side of the parking protocol after a push. Must be
    /// called with the ring mutex *released*: the enqueue it may trigger
    /// lands the task on the dispatch path (LIFO slot, deque, or an
    /// injector shard plus a sleeper wake), and `mailbox-queue` stays a
    /// leaf on the delivery path.
    fn wake_after_push(&self) -> Wake {
        let Some(wake) = self.wake.get() else {
            // Threads mode: the coordinator waits on the condvar.
            self.not_empty.notify_one();
            return Wake::None;
        };
        loop {
            // eden-lint: ordering(park-state-machine)
            match self.park_state.load(Ordering::Acquire) {
                park::PARKED => {
                    // eden-lint: ordering(park-state-machine)
                    if self
                        .park_state
                        .compare_exchange(
                            park::PARKED,
                            park::QUEUED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        match (wake.sched.upgrade(), wake.task.upgrade()) {
                            (Some(sched), Some(task)) => return Wake::Enqueue(sched, task),
                            // Scheduler or task gone: teardown won the
                            // race; nobody is left to run the mail.
                            _ => return Wake::None,
                        }
                    }
                }
                park::RUNNING => {
                    // eden-lint: ordering(park-state-machine)
                    if self
                        .park_state
                        .compare_exchange(
                            park::RUNNING,
                            park::DIRTY,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return Wake::None;
                    }
                }
                // Already queued/dirty (someone else's push won), or dead.
                _ => return Wake::None,
            }
        }
    }

    fn push(&self, envelope: Envelope, respect_bound: bool) -> Result<(), SendError> {
        {
            let mut ring = self.mailq.lock();
            loop {
                if ring.closed {
                    drop(ring);
                    return Err(SendError(envelope));
                }
                if respect_bound {
                    if let Some(cap) = self.cap {
                        if ring.q.len() >= cap {
                            // Backpressure: park this sender until the
                            // receiver drains. Kernel control traffic
                            // (`force_send`) never takes this branch.
                            crate::sched::blocking(|| self.not_full.wait(&mut ring));
                            continue;
                        }
                    }
                }
                ring.q.push_back(envelope);
                break;
            }
        }
        match self.wake_after_push() {
            Wake::None => {}
            Wake::Enqueue(sched, task) => sched.enqueue(task),
        }
        Ok(())
    }

    /// Pop one envelope (scheduler workers and the threads-mode receiver
    /// both drain through here). Shrinks an oversized ring on drain.
    pub(crate) fn pop(&self) -> Option<Envelope> {
        let mut ring = self.mailq.lock();
        let envelope = ring.q.pop_front()?;
        if ring.q.is_empty() && ring.q.capacity() >= SHRINK_CAPACITY {
            ring.q = VecDeque::new();
        }
        drop(ring);
        if self.cap.is_some() {
            self.not_full.notify_one();
        }
        Some(envelope)
    }

    /// Close the mailbox and return everything still queued. Dropping the
    /// returned envelopes resolves their replies with `EjectCrashed` —
    /// the fail-fast the old drain loop provided. Atomic under the ring
    /// mutex: no envelope can land between the drain and the close.
    pub(crate) fn close(&self) -> VecDeque<Envelope> {
        let drained = {
            let mut ring = self.mailq.lock();
            ring.closed = true;
            std::mem::take(&mut ring.q)
        };
        // Senders parked on a full ring must observe the close and fail.
        self.not_full.notify_all();
        self.not_empty.notify_all();
        drained
    }
}

impl std::fmt::Debug for MailboxCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxCore")
            .field("cap", &self.cap)
            .field("senders", &self.senders.load(Ordering::Relaxed))
            .field("park_state", &self.park_state.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// `send` failed because the mailbox closed; the envelope comes back so
/// the caller can redeliver it (the stale-route fallback).
pub(crate) struct SendError(pub(crate) Envelope);

impl std::fmt::Debug for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// The sending half of a mailbox. Clones count toward disconnection.
pub(crate) struct MailboxSender {
    core: Arc<MailboxCore>,
}

impl MailboxSender {
    /// Deliver an envelope, respecting a bounded mailbox's capacity (the
    /// sender parks until space frees). Fails only once the mailbox
    /// closed.
    pub(crate) fn send(&self, envelope: Envelope) -> Result<(), SendError> {
        self.core.push(envelope, true)
    }

    /// Deliver an envelope past any capacity bound. Kernel control
    /// messages (crash, shutdown) use this so a full mailbox can never
    /// wedge teardown.
    pub(crate) fn force_send(&self, envelope: Envelope) -> Result<(), SendError> {
        self.core.push(envelope, false)
    }
}

impl Clone for MailboxSender {
    fn clone(&self) -> Self {
        self.core.senders.fetch_add(1, Ordering::Relaxed);
        MailboxSender {
            core: Arc::clone(&self.core),
        }
    }
}

impl Drop for MailboxSender {
    fn drop(&mut self) {
        if self.core.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: a threads-mode receiver blocked in `recv`
            // must wake up and observe the disconnection.
            self.core.not_empty.notify_all();
        }
    }
}

impl std::fmt::Debug for MailboxSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxSender").finish_non_exhaustive()
    }
}

/// The receiving half, used only by `threads`-mode coordinators (a
/// scheduler task drains its [`MailboxCore`] directly). Dropping it
/// closes the mailbox.
#[derive(Debug)]
pub(crate) struct MailboxReceiver {
    core: Arc<MailboxCore>,
}

impl MailboxReceiver {
    /// Block until an envelope arrives. `Err(())` means every sender is
    /// gone and the ring is empty — the coordinator should exit.
    pub(crate) fn recv(&self) -> Result<Envelope, ()> {
        loop {
            if let Some(envelope) = self.core.pop() {
                return Ok(envelope);
            }
            let mut ring = self.core.mailq.lock();
            if !ring.q.is_empty() {
                continue;
            }
            if self.core.senders.load(Ordering::Acquire) == 0 {
                return Err(());
            }
            // eden-lint: nonblocking(threads-mode coordinator thread, never a pool worker)
            self.core.not_empty.wait(&mut ring);
        }
    }

    /// Drain without blocking (the teardown path).
    pub(crate) fn try_recv(&self) -> Option<Envelope> {
        self.core.pop()
    }
}

impl Drop for MailboxReceiver {
    fn drop(&mut self) {
        drop(self.core.close());
    }
}

/// Create a mailbox, returning the sender and the shared core. `cap`
/// bounds plain sends; `None` keeps the historic unbounded behaviour.
pub(crate) fn mailbox(cap: Option<usize>) -> (MailboxSender, Arc<MailboxCore>) {
    let core = MailboxCore::new(cap);
    (
        MailboxSender {
            core: Arc::clone(&core),
        },
        core,
    )
}

/// Wrap a core in its threads-mode receiving half.
pub(crate) fn receiver(core: Arc<MailboxCore>) -> MailboxReceiver {
    MailboxReceiver { core }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Put a core in scheduler mode without a live scheduler: the wake
    /// CAS loop runs for real, the upgrade finds nobody to enqueue.
    fn sched_mode(core: &MailboxCore) {
        let _ = core.wake.set(SchedWake {
            sched: Weak::new(),
            task: Weak::new(),
        });
    }

    #[test]
    fn deliver_to_parked_queues() {
        let (tx, core) = mailbox(None);
        sched_mode(&core);
        assert_eq!(core.park_state.load(Ordering::Acquire), park::PARKED);
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::QUEUED);
        // A second delivery finds QUEUED and leaves it alone.
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::QUEUED);
    }

    #[test]
    fn deliver_to_running_marks_dirty() {
        let (tx, core) = mailbox(None);
        sched_mode(&core);
        core.park_state.store(park::RUNNING, Ordering::Release);
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::DIRTY);
        // Further deliveries leave DIRTY as-is.
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::DIRTY);
    }

    #[test]
    fn deliver_to_dead_wakes_nobody() {
        let (tx, core) = mailbox(None);
        sched_mode(&core);
        core.park_state.store(park::DEAD, Ordering::Release);
        tx.send(Envelope::Shutdown).unwrap();
        assert_eq!(core.park_state.load(Ordering::Acquire), park::DEAD);
    }

    /// Concurrent senders vs a draining worker: every observed transition
    /// must be one the spec table blesses, and no delivery may be lost
    /// (every push while PARKED flips the bit to QUEUED). Small enough to
    /// run under miri's interpreter.
    #[test]
    fn wake_protocol_transitions_follow_spec() {
        let iters = if cfg!(miri) { 20 } else { 400 };
        for _ in 0..iters {
            let (tx, core) = mailbox(None);
            sched_mode(&core);
            let worker = {
                let core = Arc::clone(&core);
                std::thread::spawn(move || {
                    let mut drained = 0usize;
                    loop {
                        // While we are not RUNNING the only states are
                        // PARKED (nothing delivered since the last park)
                        // and QUEUED (a sender woke us): spin for the
                        // latter, then pick up. Senders never touch a
                        // QUEUED bit, so the swap always sees QUEUED.
                        if core.park_state.load(Ordering::Acquire) == park::PARKED {
                            if drained >= 3 {
                                return drained;
                            }
                            std::thread::yield_now();
                            continue;
                        }
                        let prev = core.park_state.swap(park::RUNNING, Ordering::AcqRel);
                        spec::assert_transition(prev, park::RUNNING);
                        while core.pop().is_some() {
                            drained += 1;
                        }
                        // Park attempt: RUNNING -> PARKED unless dirty.
                        match core.park_state.compare_exchange(
                            park::RUNNING,
                            park::PARKED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => {
                                if drained >= 3 {
                                    return drained;
                                }
                            }
                            Err(seen) => {
                                spec::assert_transition(park::RUNNING, seen);
                                // Dirty reclaim: DIRTY -> RUNNING, drain
                                // again on the next loop.
                                core.park_state.store(park::RUNNING, Ordering::Release);
                            }
                        }
                    }
                })
            };
            let senders: Vec<_> = (0..3)
                .map(|_| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        tx.send(Envelope::Shutdown).unwrap();
                    })
                })
                .collect();
            for s in senders {
                s.join().unwrap();
            }
            let drained = worker.join().unwrap();
            assert_eq!(drained, 3, "every delivery must be drained");
        }
    }

    #[test]
    fn spec_table_is_a_connected_machine() {
        // Every non-DEAD state has at least one outgoing edge, QUEUED is
        // reachable from PARKED, and no edge is self-looping.
        for s in [park::PARKED, park::QUEUED, park::RUNNING, park::DIRTY] {
            assert!(
                spec::TRANSITIONS.iter().any(|t| t.from == s),
                "state {} has no outgoing edge",
                spec::state_name(s)
            );
        }
        assert!(spec::allows(park::PARKED, park::QUEUED));
        assert!(spec::TRANSITIONS.iter().all(|t| t.from != t.to));
        assert!(!spec::allows(park::DEAD, park::RUNNING));
        assert!(!spec::allows(park::PARKED, park::RUNNING));
        assert_eq!(spec::state_by_name("DIRTY"), Some(park::DIRTY));
        assert!(spec::state_by_name("LIMBO").is_none());
        assert!(spec::allows_op(park::RUNNING, park::PARKED, spec::Op::Cas));
        assert!(!spec::allows_op(park::RUNNING, park::PARKED, spec::Op::Store));
    }

    #[test]
    #[should_panic(expected = "illegal parking-bit transition")]
    fn illegal_transition_panics() {
        spec::assert_transition(park::DEAD, park::QUEUED);
    }
}
