//! Invocation tracing: a bounded in-kernel event log.
//!
//! The paper's cost argument is denominated in invocations; this module
//! makes them observable one by one. Enable with
//! [`KernelConfig::trace_capacity`](crate::KernelConfig) and read back with
//! [`Kernel::trace_events`](crate::Kernel) — the experiment harness uses it
//! to show *which* Eject pairs exchange the n+1 versus 2n+2 messages.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use eden_core::{OpName, Uid};
use parking_lot::Mutex;

use crate::kernel::NodeId;

/// One traced kernel event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An invocation was routed.
    Invoke {
        /// Global sequence number (gaps mean the ring overflowed).
        seq: u64,
        /// The target Eject.
        target: Uid,
        /// The operation.
        op: OpName,
        /// Originating node.
        from: NodeId,
        /// Target's node.
        to: NodeId,
    },
    /// An Eject was (re)activated.
    Activate {
        /// Global sequence number.
        seq: u64,
        /// The Eject.
        uid: Uid,
        /// Its Eden type name.
        type_name: String,
    },
    /// An Eject stopped (deactivation, crash, or shutdown).
    Stop {
        /// Global sequence number.
        seq: u64,
        /// The Eject.
        uid: Uid,
        /// True if it stopped by fault injection.
        crashed: bool,
    },
}

impl TraceEvent {
    /// The event's global sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            TraceEvent::Invoke { seq, .. }
            | TraceEvent::Activate { seq, .. }
            | TraceEvent::Stop { seq, .. } => *seq,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Invoke {
                seq,
                target,
                op,
                from,
                to,
            } => write!(
                f,
                "[{seq:06}] invoke {op} -> {target} (node {} -> {}{})",
                from.0,
                to.0,
                if from != to { ", remote" } else { "" }
            ),
            TraceEvent::Activate {
                seq,
                uid,
                type_name,
            } => write!(f, "[{seq:06}] activate {uid} ({type_name})"),
            TraceEvent::Stop { seq, uid, crashed } => write!(
                f,
                "[{seq:06}] stop {uid}{}",
                if *crashed { " (crashed)" } else { "" }
            ),
        }
    }
}

/// The events surviving in the trace ring plus the count of events the ring
/// has evicted since the kernel started. Derefs to `[TraceEvent]`, so code
/// that only wants the events can iterate it directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDump {
    /// The surviving events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring to stay within capacity. Monotonic:
    /// `events.len() as u64 + dropped` equals the total ever recorded.
    pub dropped: u64,
}

impl std::ops::Deref for TraceDump {
    type Target = [TraceEvent];

    fn deref(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl<'a> IntoIterator for &'a TraceDump {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// A bounded ring of trace events plus per-target invocation tallies.
pub(crate) struct TraceLog {
    ring: Mutex<VecDeque<TraceEvent>>,
    per_target: Mutex<HashMap<Uid, u64>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl TraceLog {
    pub(crate) fn new(capacity: usize) -> TraceLog {
        TraceLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            per_target: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, event: TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn record_invoke(&self, target: Uid, op: &OpName, from: NodeId, to: NodeId) {
        *self.per_target.lock().entry(target).or_insert(0) += 1;
        let seq = self.next_seq();
        self.push(TraceEvent::Invoke {
            seq,
            target,
            op: op.clone(),
            from,
            to,
        });
    }

    pub(crate) fn record_activate(&self, uid: Uid, type_name: &str) {
        let seq = self.next_seq();
        self.push(TraceEvent::Activate {
            seq,
            uid,
            type_name: type_name.to_owned(),
        });
    }

    pub(crate) fn record_stop(&self, uid: Uid, crashed: bool) {
        let seq = self.next_seq();
        self.push(TraceEvent::Stop { seq, uid, crashed });
    }

    pub(crate) fn events(&self) -> TraceDump {
        TraceDump {
            events: self.ring.lock().iter().cloned().collect(),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn per_target(&self) -> Vec<(Uid, u64)> {
        let mut counts: Vec<(Uid, u64)> =
            self.per_target.lock().iter().map(|(k, v)| (*k, *v)).collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_orders() {
        let log = TraceLog::new(3);
        for i in 0..5 {
            log.record_invoke(
                Uid::fresh(),
                &OpName::from("Transfer"),
                NodeId(0),
                NodeId(i as u16),
            );
        }
        let events = log.events();
        assert_eq!(events.len(), 3, "ring must stay bounded");
        // The survivors are the latest, in order.
        assert_eq!(events[0].seq() + 1, events[1].seq());
        assert_eq!(events[2].seq(), 4);
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let log = TraceLog::new(3);
        assert_eq!(log.events().dropped, 0);
        for _ in 0..5 {
            log.record_invoke(Uid::fresh(), &OpName::from("Transfer"), NodeId(0), NodeId(0));
        }
        let dump = log.events();
        assert_eq!(dump.dropped, 2, "two events were evicted");
        assert_eq!(
            dump.events.len() as u64 + dump.dropped,
            5,
            "survivors + dropped account for every recorded event"
        );
        // The counter is monotonic across further wrap-arounds.
        log.record_invoke(Uid::fresh(), &OpName::from("Write"), NodeId(0), NodeId(0));
        assert_eq!(log.events().dropped, 3);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn per_target_tallies_sorted_desc() {
        let log = TraceLog::new(16);
        let a = Uid::fresh();
        let b = Uid::fresh();
        for _ in 0..3 {
            log.record_invoke(a, &OpName::from("Transfer"), NodeId(0), NodeId(0));
        }
        log.record_invoke(b, &OpName::from("Write"), NodeId(0), NodeId(0));
        let counts = log.per_target();
        assert_eq!(counts[0], (a, 3));
        assert_eq!(counts[1], (b, 1));
    }

    #[test]
    fn display_is_readable() {
        let log = TraceLog::new(4);
        let uid = Uid::fresh();
        log.record_invoke(uid, &OpName::from("Transfer"), NodeId(0), NodeId(1));
        log.record_activate(uid, "File");
        log.record_stop(uid, true);
        let rendered: Vec<String> = log.events().iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].contains("remote"));
        assert!(rendered[1].contains("File"));
        assert!(rendered[2].contains("crashed"));
    }
}
